"""Single-pass block ingest: full observer fan-out vs bare chain ingestion.

The ingest pipeline claim behind ``chain/delta.py``: a block ingested
into a :class:`~repro.chain.index.ChainIndex` with the *entire* serving
stack attached — incremental clustering engine (H1 unions + H2 static
labels + §4.2 watch bookkeeping), balance view, activity view, taint
view, and the differential cluster-aggregate view — must cost a small
constant factor over bare chain indexing, because the whole fan-out
shares one :class:`~repro.chain.delta.BlockDelta` per block (exactly one
transaction walk) and the aggregate view's rank/overlay maintenance is
lazily flushed and coalesced.

Two numbers are pinned:

* ``fanout_overhead_ratio`` — (fan-out ingest + one coalesced
  catch-up flush) over bare ingest, bounded by
  ``FANOUT_OVERHEAD_BOUND``.  Before the shared delta, five subscribers
  each re-walked ``block.transactions`` and re-resolved the per-tx id
  memos; the bound fails if that ever creeps back.
* ``blocks_per_second`` for both paths, reported for trend tracking in
  the published ``BENCH_ingest_throughput.json``.

GC is disabled inside the timed regions (and re-enabled after): the
collector otherwise attributes its pauses to whichever phase happens to
allocate past a threshold, which is noise, not ingest cost.

Scenario size is sweepable without code edits: set
``INGEST_BENCH_BLOCKS`` (and optionally ``INGEST_BENCH_USERS``) to
build a dedicated economy of that size instead of the shared 600-block
default world — the nightly job uses this to probe larger scales.
"""

import gc
import os
import time

import pytest

from repro.chain.index import ChainIndex
from repro.obs import MetricsRegistry
from repro.service import ForensicsService
from repro.simulation import scenarios


FANOUT_OVERHEAD_BOUND = 4.0
"""Full fan-out ingest may cost at most this factor over bare chain
ingestion (measured ~2.6× for the fan-out alone, ~3.2–3.5× including
the coalesced flush)."""


def _warm_world(world) -> None:
    """Resolve every output address once: the worlds' ``TxOut`` objects
    are shared across runs, and first-touch script extraction belongs to
    neither timed path."""
    for block in world.blocks:
        for tx in block.transactions:
            for out in tx.outputs:
                out.address


def _bare_ingest_seconds(world) -> float:
    index = ChainIndex()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for block in world.blocks:
            index.add_block(block)
        return time.perf_counter() - start
    finally:
        gc.enable()


def _fanout_ingest_seconds(world) -> tuple[float, float]:
    """(ingest seconds, coalesced flush seconds) with the full service
    attached — engine, three streaming views, differential aggregates."""
    attack = world.extras.get("attack")
    tags = attack.tags if attack is not None else None
    index = ChainIndex()
    service = ForensicsService(index, tags=tags)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for block in world.blocks:
            index.add_block(block)
        ingest = time.perf_counter() - start
        start = time.perf_counter()
        clusters = service.aggregates.cluster_count  # drains every queued block
        flush = time.perf_counter() - start
    finally:
        gc.enable()
    assert clusters > 0
    assert service.engine.height == index.height
    assert service.aggregates.height == index.height
    return ingest, flush


def _stage_breakdown(world) -> dict[str, float]:
    """One extra instrumented ingest for the published per-stage
    breakdown (index walk, delta build, per-subscriber fan-out, flush) —
    run outside the timed comparison so the ratio stays pure."""
    attack = world.extras.get("attack")
    tags = attack.tags if attack is not None else None
    metrics = MetricsRegistry()
    index = ChainIndex()
    service = ForensicsService(index, tags=tags, metrics=metrics)
    for block in world.blocks:
        index.add_block(block)
    assert service.aggregates.cluster_count > 0  # drains the flush
    snapshot = metrics.snapshot()
    return {
        name: summary["total"]
        for name, summary in snapshot["histograms"].items()
        if name.split("{", 1)[0].endswith("seconds")
    }


@pytest.fixture(scope="module")
def ingest_world(request):
    """The shared 600-block default world, unless ``INGEST_BENCH_BLOCKS``
    asks for a dedicated economy of a different size."""
    blocks = os.environ.get("INGEST_BENCH_BLOCKS")
    if blocks is None:
        return request.getfixturevalue("bench_default_world")
    users = int(os.environ.get("INGEST_BENCH_USERS", "60"))
    return scenarios.default_economy(
        seed=0, n_blocks=int(blocks), n_users=users
    )


def test_full_fanout_ingest_within_bound_of_bare_chain(
    ingest_world, bench_report
):
    world = ingest_world
    n_blocks = world.index.height + 1
    assert n_blocks >= min(
        600, int(os.environ.get("INGEST_BENCH_BLOCKS", "600"))
    )
    _warm_world(world)

    bare = _bare_ingest_seconds(world)
    fanout, flush = _fanout_ingest_seconds(world)
    total = fanout + flush
    ratio = total / bare
    print(
        f"\n{n_blocks} blocks ingested:\n"
        f"  bare chain:    {bare:.3f}s ({n_blocks / bare:,.0f} blocks/s)\n"
        f"  full fan-out:  {fanout:.3f}s + coalesced flush {flush:.3f}s "
        f"({n_blocks / total:,.0f} blocks/s)\n"
        f"  overhead: ×{ratio:.2f} (bound ×{FANOUT_OVERHEAD_BOUND})"
    )
    bench_report(
        "ingest_throughput",
        {
            "blocks": n_blocks,
            "bare_ingest_seconds": bare,
            "bare_blocks_per_second": n_blocks / bare,
            "fanout_ingest_seconds": fanout,
            "fanout_flush_seconds": flush,
            "fanout_blocks_per_second": n_blocks / total,
            "fanout_overhead_ratio": ratio,
            "bound": FANOUT_OVERHEAD_BOUND,
            "stage_seconds": _stage_breakdown(world),
        },
    )
    # The whole serving stack may not cost more than a small constant
    # factor over bare indexing — one shared walk, coalesced maintenance.
    assert total <= bare * FANOUT_OVERHEAD_BOUND

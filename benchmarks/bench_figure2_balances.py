"""Figure 2: per-category balances as % of active bitcoins over time.

Paper: exchanges are the dominant category (peaking ~10–14% of active
coins), with mining, wallets, gambling, vendors, fixed exchanges, and
investment below; the hoard's dissolution is NOT visible as a category
shift (the peels are small and spread out), which is what motivated the
peeling-chain analysis.  Asserted shape: exchanges dominate; every
series stays within [0, 100]%; the dissolution leaves no step change in
exchange share bigger than a third of its peak.
"""

import numpy as np

from repro import experiments


def test_figure2_category_balances(benchmark, bench_silkroad_world):
    result = benchmark.pedantic(
        experiments.run_figure2,
        args=(bench_silkroad_world,),
        rounds=3,
        iterations=1,
    )
    print("\n" + result.report)
    series = result.series
    assert result.peaks["exchanges"] > 0
    # Exchanges are the biggest service category of the steady-state
    # era (peaks skip the bootstrap fifth of the window, where a single
    # payment can briefly be most of the active economy).
    others = [v for k, v in result.peaks.items() if k != "exchanges"]
    assert result.peaks["exchanges"] >= max(others)
    for category, peak in result.peaks.items():
        assert 0 <= peak <= 100, category
    # §5: dissolving the hoard does not visibly shift category balances
    # (no sample-to-sample jump anywhere near the category's own peak).
    exchange_pct = series.percentage("exchanges")
    steady = exchange_pct[int(len(exchange_pct) * 0.2):]
    steps = np.abs(np.diff(steady))
    assert steps.max() <= max(result.peaks["exchanges"], 1.0) * 0.5


def test_balance_series_speed(benchmark, bench_silkroad_world):
    """Time one full series computation (naming pre-built)."""
    from repro.pipeline import AnalystView

    view = AnalystView.build(bench_silkroad_world)
    _ = view.naming
    series = benchmark.pedantic(
        view.balance_series, kwargs={"samples": 80}, rounds=3, iterations=1
    )
    assert len(series.heights) > 0

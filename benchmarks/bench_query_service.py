"""Forensics query service: warm materialized views vs cold batch.

The serving claim behind the new ``repro/service`` subsystem: a mixed
forensics workload (cluster membership, balances, cluster rollups,
theft taint, profiles — 150 queries against a 600-height chain) is
answered from warm streaming views more than an order of magnitude
faster than recomputing each answer from scratch the way the batch
pipeline would (a full H1+H2 clustering per cluster-backed query, a
fresh taint propagation per theft query).

Cold costs are measured per query kind on representative queries and
extrapolated across the workload (actually running a batch clustering
for every one of ~100 cluster-backed queries would take minutes for no
extra information).  Warm answers are also cross-checked against the
cold ones, so the speedup is not bought with wrong answers.
"""

import time

from repro import experiments
from repro.analysis.taint import TaintTracker
from repro.core.clustering import ClusteringEngine
from repro.service import ForensicsService


def _cold_answers(world, service, query):
    """Recompute one query's answer with no warm state at all.

    Returns ``(answer, clustering_runs)`` where the answer is shaped to
    be comparable with the warm one (membership-invariant: cluster root
    ids are arbitrary, so cluster queries answer with sizes/sums).
    """
    index = world.index
    kind = query.kind
    if kind == "balance_of":
        address = query.args[0]
        value = index.address(address).balance if index.has_address(address) else 0
        return value, 0
    if kind == "trace_taint":
        case = service.taint.case(query.args[0])
        result = TaintTracker(
            index, name_of_address=service.taint.name_of_address
        ).propagate(list(case.sources), max_txs=10 ** 9)
        return {
            "initial_taint": result.initial_taint,
            "unspent_taint": result.unspent_taint,
            "reached": dict(result.taint_at_entities),
        }, 0
    # Every remaining kind needs the partition: a full batch re-run.
    clustering = ClusteringEngine(
        index,
        h2_config=service.engine.h2_config,
        dice_addresses=service.engine.dice_addresses,
    ).cluster()
    if kind == "cluster_of":
        return clustering.cluster_of(query.args[0]), 1
    if kind == "cluster_balance":
        root = clustering.cluster_of(query.args[0])
        if root is None:
            return None, 1
        members = clustering.clusters()[root]
        return sum(index.address(m).balance for m in members), 1
    if kind == "top_clusters":
        n, by = query.args
        if by == "size":
            metric = clustering.component_sizes()
        elif by == "balance":
            metric = {}
            for root, members in clustering.clusters().items():
                metric[root] = sum(index.address(m).balance for m in members)
        else:  # activity: full transaction walk
            metric = {}
            for tx, _location in index.iter_transactions():
                involved = set(index.input_address_ids(tx))
                involved.update(
                    i for i in index.output_address_ids(tx) if i >= 0
                )
                for ident in involved:
                    root = clustering.uf.find_root(ident)
                    if root is not None:
                        metric[root] = metric.get(root, 0) + 1
        ranked = sorted(metric.items(), key=lambda kv: (-kv[1], kv[0]))[:n]
        return tuple(value for _root, value in ranked), 1
    if kind == "cluster_profile":
        root = clustering.cluster_of(query.args[0])
        if root is None:
            return None, 1
        members = clustering.clusters()[root]
        return {
            "cluster_size": len(members),
            "balance": index.address(query.args[0]).balance,
            "cluster_balance": sum(index.address(m).balance for m in members),
        }, 1
    raise AssertionError(f"unhandled kind {kind}")


def _comparable_warm(query, answer):
    """Project a warm answer onto the cold answer's shape."""
    kind = query.kind
    if kind in ("balance_of", "cluster_balance"):
        return answer
    if kind == "cluster_of":
        return answer  # compared for None-ness only (roots are arbitrary)
    if kind == "trace_taint":
        return {
            "initial_taint": answer["initial_taint"],
            "unspent_taint": answer["unspent_taint"],
            "reached": dict(answer["reached"]),
        }
    if kind == "top_clusters":
        return tuple(value for _root, value, _name in answer)
    if kind == "cluster_profile":
        if answer is None:
            return None
        return {
            "cluster_size": answer["cluster_size"],
            "balance": answer["balance"],
            "cluster_balance": answer["cluster_balance"],
        }
    raise AssertionError(f"unhandled kind {kind}")


def test_warm_workload_beats_cold_batch_10x(bench_default_world):
    world = bench_default_world  # 600-height chain
    assert world.index.height + 1 >= 600
    service = ForensicsService.from_world(world)
    experiments.watch_synthetic_thefts(service)
    queries = experiments.generate_query_workload(
        service, n_queries=150, seed=7
    )
    assert len(queries) >= 100

    start = time.perf_counter()
    warm_answers = service.answer_many(queries)
    warm_seconds = time.perf_counter() - start
    start = time.perf_counter()
    repeat_answers = service.answer_many(queries)
    memo_seconds = time.perf_counter() - start
    assert repeat_answers == warm_answers

    # Cold cost per kind, measured on the first query of each kind and
    # extrapolated over the workload's kind mix.
    kind_counts: dict[str, int] = {}
    for query in queries:
        kind_counts[query.kind] = kind_counts.get(query.kind, 0) + 1
    cold_cost: dict[str, float] = {}
    for query in queries:
        if query.kind in cold_cost:
            continue
        start = time.perf_counter()
        cold_answer, _runs = _cold_answers(world, service, query)
        cold_cost[query.kind] = time.perf_counter() - start
        # The warm answer must agree with the cold recomputation.
        warm = _comparable_warm(query, warm_answers[queries.index(query)])
        if query.kind == "cluster_of":
            assert (warm is None) == (cold_answer is None)
        elif query.kind == "trace_taint":
            assert warm["initial_taint"] == cold_answer["initial_taint"]
            assert abs(warm["unspent_taint"] - cold_answer["unspent_taint"]) < 1.0
            assert set(warm["reached"]) == set(cold_answer["reached"])
        else:
            assert warm == cold_answer, query
    cold_total = sum(
        cold_cost[kind] * count for kind, count in kind_counts.items()
    )

    print(
        f"\n{len(queries)} queries over a {world.index.height + 1}-height "
        f"chain:\n"
        f"  warm views, cold memo: {warm_seconds:.4f}s "
        f"({len(queries) / warm_seconds:,.0f} q/s)\n"
        f"  memoized repeat:       {memo_seconds:.4f}s\n"
        f"  cold batch (extrapolated from per-kind measurements): "
        f"{cold_total:.2f}s\n"
        f"  speedup: ×{cold_total / warm_seconds:,.0f}"
    )
    # The acceptance bar is 10×; in practice it is thousands.
    assert warm_seconds * 10 <= cold_total
    assert memo_seconds <= warm_seconds * 2  # memo never regresses warm


def test_query_workload_report(bench_default_world):
    """The experiments entry point serves and reports the workload."""
    result = experiments.run_query_workload(
        bench_default_world, n_queries=120, repeats=2
    )
    print("\n" + result.report)
    assert sum(result.kind_counts.values()) == 120
    assert result.cache_stats["hits"] > 0
    # Repeat passes are pure memo hits: no slower than the first pass
    # by more than noise.
    assert result.repeat_pass_seconds <= result.first_pass_seconds * 2

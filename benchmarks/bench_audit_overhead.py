"""Invariant-audit overhead: continuous checking must stay cheap.

The auditor's contract (``src/repro/obs/audit.py``): an attached
:class:`~repro.obs.InvariantAuditor` with ``audit_every=0`` costs one
modulo check per block, and a production cadence (``audit_every=16``)
keeps full-fan-out ingest within a small factor of unaudited ingest —
the per-cycle work is an *incremental* balance replay (only the events
since the previous audit), one numpy union-find copy for the batch-tip
cross-check, and sampled view/fold comparisons, never a from-genesis
rebuild.  Two ratios are pinned against the same full-fan-out ingest
(service attached, NULL metrics so the ratio isolates audit cost, GC
off, best-of-``REPEATS``):

* ``disabled_ratio`` — auditor attached with ``audit_every=0`` over no
  auditor at all, bounded by ``DISABLED_OVERHEAD_BOUND`` (≤1.01×).
* ``audited_ratio`` — ``audit_every=16`` in strict mode over no
  auditor, bounded by ``AUDITED_OVERHEAD_BOUND`` (≤1.15×).

Both ratios are estimated from *paired* rounds: each round times the
three configurations back-to-back, so every arm's clock shares the
round's machine conditions, and the ratio is taken within the round.
The audited bound uses the median paired ratio (robust to a few noisy
rounds in either direction).  The disabled bound is a 1% claim on a
machine whose round-to-round noise exceeds 1%, so it uses the *minimum*
paired ratio: scheduler noise only ever adds time to whichever single
round it hits, while a disabled path that really did work per block
would inflate every round — the minimum strips the former and still
catches the latter.

Strict mode doubles as a correctness gate: a single violation anywhere
in the run aborts the benchmark loudly.

Published as ``BENCH_audit_overhead.json``.
"""

import gc
import statistics
import time

from repro.chain.index import ChainIndex
from repro.obs import InvariantAuditor
from repro.service import ForensicsService


DISABLED_OVERHEAD_BOUND = 1.01
AUDITED_OVERHEAD_BOUND = 1.15
AUDIT_EVERY = 16
REPEATS = 8


def _warm_world(world) -> None:
    """First-touch script extraction belongs to no timed path."""
    for block in world.blocks:
        for tx in block.transactions:
            for out in tx.outputs:
                out.address


def _ingest_seconds(world, audit_every) -> tuple[float, int]:
    """One full-fan-out ingest (engine + views + aggregates attached),
    timed with GC off; ``audit_every`` attaches a strict auditor when
    not ``None``.  Returns ``(wall seconds, audits run)``.

    Every arm touches ``cluster_count`` each ``AUDIT_EVERY`` blocks —
    a minimal serving-load stand-in that pins the aggregate *flush*
    cadence equal across configurations.  A serving process flushes
    whenever a query lands; audits flush too, and letting the baseline
    defer every fold to one bulk flush would charge that ordinary
    serving work to the audit ratio."""
    attack = world.extras.get("attack")
    tags = attack.tags if attack is not None else None
    index = ChainIndex()
    service = ForensicsService(index, tags=tags)
    auditor = None
    if audit_every is not None:
        auditor = InvariantAuditor(
            service, audit_every=audit_every, strict=True
        )
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        clusters = 0
        for block in world.blocks:
            index.add_block(block)
            if (block.height + 1) % AUDIT_EVERY == 0:
                clusters = service.aggregates.cluster_count
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    assert service.engine.height == index.height
    assert clusters > 0
    if auditor is not None:
        assert auditor.total_violations == 0
    return elapsed, auditor.audits_run if auditor is not None else 0


def _paired_rounds(world, repeats, configs):
    """Per-round wall clocks over ``repeats`` paired rounds.

    Each round times every configuration back-to-back (baseline,
    disabled, audited), so the arms of one round share the round's
    machine conditions and their within-round ratio cancels slow
    stretches that best-of-N across separate batches cannot.  Returns
    per-config round times plus the last audit count per config."""
    rounds = {key: [] for key in configs}
    audits = {key: 0 for key in configs}
    for _ in range(repeats):
        for key, audit_every in configs.items():
            elapsed, audits[key] = _ingest_seconds(world, audit_every)
            rounds[key].append(elapsed)
    return rounds, audits


def test_audit_overhead_within_bounds(bench_default_world, bench_report):
    world = bench_default_world
    n_blocks = world.index.height + 1
    _warm_world(world)

    rounds, audits = _paired_rounds(
        world,
        REPEATS,
        {"baseline": None, "disabled": 0, "audited": AUDIT_EVERY},
    )
    baseline = statistics.median(rounds["baseline"])
    disabled = statistics.median(rounds["disabled"])
    audited = statistics.median(rounds["audited"])
    audits_run = audits["audited"]

    disabled_pairs = [
        d / b for d, b in zip(rounds["disabled"], rounds["baseline"])
    ]
    audited_pairs = [
        a / b for a, b in zip(rounds["audited"], rounds["baseline"])
    ]
    disabled_ratio = min(disabled_pairs)
    audited_ratio = statistics.median(audited_pairs)

    print(
        f"\n{n_blocks} blocks, {REPEATS} paired rounds:\n"
        f"  unaudited: {baseline:.3f}s (median)\n"
        f"  auditor attached, audit_every=0: {disabled:.3f}s "
        f"(min paired ×{disabled_ratio:.3f}, "
        f"bound ×{DISABLED_OVERHEAD_BOUND})\n"
        f"  audit_every={AUDIT_EVERY} strict: {audited:.3f}s "
        f"(median paired ×{audited_ratio:.3f}, "
        f"bound ×{AUDITED_OVERHEAD_BOUND}, {audits_run} audits)"
    )
    bench_report(
        "audit_overhead",
        {
            "blocks": n_blocks,
            "repeats": REPEATS,
            "audit_every": AUDIT_EVERY,
            "audits_run": audits_run,
            "baseline_seconds": baseline,
            "disabled_seconds": disabled,
            "audited_seconds": audited,
            "disabled_ratio": disabled_ratio,
            "audited_ratio": audited_ratio,
            "disabled_bound": DISABLED_OVERHEAD_BOUND,
            "audited_bound": AUDITED_OVERHEAD_BOUND,
        },
    )
    assert disabled_ratio <= DISABLED_OVERHEAD_BOUND, (
        f"idle auditor ingest ×{disabled_ratio:.3f} exceeds "
        f"×{DISABLED_OVERHEAD_BOUND}: the cadence check is doing work "
        f"beyond one modulo per block"
    )
    assert audited_ratio <= AUDITED_OVERHEAD_BOUND, (
        f"audit_every={AUDIT_EVERY} ingest ×{audited_ratio:.3f} exceeds "
        f"×{AUDITED_OVERHEAD_BOUND}: an audit check lost its "
        f"incremental/sampled cost model"
    )

"""Telemetry overhead: instrumented ingest must be nearly free.

The observability layer's contract (``src/repro/obs/``): every hot-path
instrument site is guarded by one ``metrics.enabled`` attribute check,
so a disabled registry (or the shared ``NULL_REGISTRY``) costs nothing
measurable, and the enabled path costs a handful of ``perf_counter``
calls and dict-free histogram observes per block.  Two ratios are
pinned against the same full-fan-out ingest (service attached, GC off,
best-of-``REPEATS`` to suppress scheduler noise):

* ``disabled_ratio`` — ingest with a ``MetricsRegistry(enabled=False)``
  attached over ingest with no registry at all, bounded by
  ``DISABLED_OVERHEAD_BOUND`` (≤1.01×: the no-op path is one bool
  check per site).
* ``enabled_ratio`` — fully instrumented ingest over uninstrumented,
  bounded by ``ENABLED_OVERHEAD_BOUND`` (≤1.05×).

The instrumented run also proves *sum consistency*: the per-stage
ingest histograms (index walk + delta build + per-subscriber fan-out)
must account for at least ``STAGE_COVERAGE_FLOOR`` of the measured
ingest wall clock — the breakdown is trustworthy, not decorative.

Published as ``BENCH_obs_overhead.json``.
"""

import gc
import time

from repro.chain.index import ChainIndex
from repro.obs import MetricsRegistry
from repro.service import ForensicsService


DISABLED_OVERHEAD_BOUND = 1.01
ENABLED_OVERHEAD_BOUND = 1.05
STAGE_COVERAGE_FLOOR = 0.90
REPEATS = 3


def _warm_world(world) -> None:
    """First-touch script extraction belongs to no timed path."""
    for block in world.blocks:
        for tx in block.transactions:
            for out in tx.outputs:
                out.address


def _ingest_seconds(world, metrics) -> tuple[float, MetricsRegistry | None]:
    """One full-fan-out ingest (engine + views + aggregates attached),
    timed with GC off; ``metrics`` is attached via the service when
    given."""
    attack = world.extras.get("attack")
    tags = attack.tags if attack is not None else None
    index = ChainIndex()
    service = ForensicsService(index, tags=tags, metrics=metrics)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for block in world.blocks:
            index.add_block(block)
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    assert service.engine.height == index.height
    return elapsed, metrics


def _best_of(world, repeats, make_metrics):
    """Minimum wall clock over ``repeats`` fresh ingests, plus the last
    run's ``(wall clock, registry)`` for the stage-coverage check (each
    run gets its own registry, so its totals decompose exactly one
    run's wall clock)."""
    best = float("inf")
    elapsed, registry = None, None
    for _ in range(repeats):
        elapsed, registry = _ingest_seconds(world, make_metrics())
        best = min(best, elapsed)
    return best, elapsed, registry


def test_telemetry_overhead_within_bounds(bench_default_world, bench_report):
    world = bench_default_world
    n_blocks = world.index.height + 1
    _warm_world(world)

    baseline, _, _ = _best_of(world, REPEATS, lambda: None)
    disabled, _, _ = _best_of(
        world, REPEATS, lambda: MetricsRegistry(enabled=False)
    )
    enabled, last_wall, registry = _best_of(world, REPEATS, MetricsRegistry)

    disabled_ratio = disabled / baseline
    enabled_ratio = enabled / baseline

    # Sum consistency: the per-stage ingest histograms (index walk +
    # delta build + per-subscriber fan-out) of the last enabled run
    # must cover ≥90% of that same run's measured wall clock.
    stage_names = (
        "ingest.index_seconds",
        "ingest.delta_build_seconds",
        "ingest.fanout_seconds",
    )
    stage_seconds = {
        name: registry.total_seconds(name) for name in stage_names
    }
    stage_total = sum(stage_seconds.values())
    coverage = stage_total / last_wall

    print(
        f"\n{n_blocks} blocks, best of {REPEATS}:\n"
        f"  uninstrumented: {baseline:.3f}s\n"
        f"  disabled registry: {disabled:.3f}s (×{disabled_ratio:.3f}, "
        f"bound ×{DISABLED_OVERHEAD_BOUND})\n"
        f"  enabled registry:  {enabled:.3f}s (×{enabled_ratio:.3f}, "
        f"bound ×{ENABLED_OVERHEAD_BOUND})\n"
        f"  stage coverage: {coverage:.1%} of wall clock "
        f"(floor {STAGE_COVERAGE_FLOOR:.0%})"
    )
    bench_report(
        "obs_overhead",
        {
            "blocks": n_blocks,
            "repeats": REPEATS,
            "baseline_seconds": baseline,
            "disabled_seconds": disabled,
            "enabled_seconds": enabled,
            "disabled_ratio": disabled_ratio,
            "enabled_ratio": enabled_ratio,
            "disabled_bound": DISABLED_OVERHEAD_BOUND,
            "enabled_bound": ENABLED_OVERHEAD_BOUND,
            "stage_seconds": stage_seconds,
            "stage_coverage": coverage,
            "stage_coverage_floor": STAGE_COVERAGE_FLOOR,
        },
    )
    assert disabled_ratio <= DISABLED_OVERHEAD_BOUND, (
        f"disabled-registry ingest ×{disabled_ratio:.3f} exceeds "
        f"×{DISABLED_OVERHEAD_BOUND}: a hot site is doing work beyond "
        f"the enabled-flag check"
    )
    assert enabled_ratio <= ENABLED_OVERHEAD_BOUND, (
        f"instrumented ingest ×{enabled_ratio:.3f} exceeds "
        f"×{ENABLED_OVERHEAD_BOUND}: an instrument site got expensive"
    )
    assert coverage >= STAGE_COVERAGE_FLOOR, (
        f"stage histograms cover only {coverage:.1%} of the measured "
        f"ingest wall clock; a stage is going untimed"
    )

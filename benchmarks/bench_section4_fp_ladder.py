"""§4.2: the false-positive refinement ladder and super-cluster check.

Paper ladder: naive 13% → dice exception 1% → wait a day 0.28% → wait a
week 0.17%; and the first refined heuristic still produced a 1.6M-address
super-cluster (Mt Gox + Instawallet + BitPay + Silk Road) that the final
two refinements dismantled.  Asserted shape: the ladder is monotone
decreasing, and the refined configuration merges strictly fewer tagged
entities than the naive one.
"""

from repro import experiments


def test_fp_refinement_ladder(benchmark, bench_default_world):
    result = benchmark.pedantic(
        experiments.run_fp_ladder,
        args=(bench_default_world,),
        rounds=3,
        iterations=1,
    )
    print("\n" + result.report)
    naive, dice, day, week = result.estimates
    assert naive.name == "naive"
    # Monotone ladder, as in the paper (13% → 1% → 0.28% → 0.17%).
    assert naive.estimated_rate > dice.estimated_rate
    assert dice.estimated_rate > day.estimated_rate
    assert day.estimated_rate >= week.estimated_rate
    # The naive rate is double-digit percent, the week rate sub-percent.
    assert naive.estimated_rate > 0.05
    assert week.estimated_rate < 0.01
    # Super-cluster: refinements reduce wrongly merged entities.
    assert (
        result.refined_supercluster_entities
        <= result.naive_supercluster_entities
    )


def test_ladder_true_rates_tracked(bench_default_world):
    """Ground truth exposes what the temporal estimator cannot see."""
    result = experiments.run_fp_ladder(bench_default_world)
    for estimate in result.estimates:
        assert estimate.true_rate is not None

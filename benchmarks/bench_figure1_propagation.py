"""Figure 1: transaction dissemination through the P2P network.

The paper's Figure 1 is a diagram, not a measurement — but its six-step
narrative (user broadcasts → flood → miner → block → flood →
confirmation) is a simulation we can time.  This bench measures
propagation on a 2012-scale random topology (≈8 peers per node) and
asserts the qualitative behaviour the protocol is designed for: full
coverage in sub-second simulated time, blocks confirming mempool
contents everywhere.
"""

from repro.network.node import P2PNetwork
from repro.network.topology import random_topology


def _dissemination_cycle(n_nodes: int = 300) -> tuple[float, float]:
    network = random_topology(n_nodes, degree=8, n_miners=5, seed=4)
    network.broadcast_tx(0, b"fig1-tx")
    network.run(5.0)
    tx_full = network.log.time_to_coverage(b"fig1-tx", 1.0, n_nodes)
    miner = network.miners()[0]
    miner.find_block(b"fig1-block")
    network.run(5.0)
    block_full = network.log.time_to_coverage(b"fig1-block", 1.0, n_nodes)
    return tx_full, block_full


def test_figure1_dissemination(benchmark):
    tx_time, block_time = benchmark.pedantic(
        _dissemination_cycle, rounds=3, iterations=1
    )
    # Full flood completes (no partitions) and within ~1 simulated
    # second on a well-connected 300-node graph.
    assert tx_time is not None and block_time is not None
    assert tx_time < 2.0
    assert block_time < 2.0
    print(
        f"\nFigure 1 dissemination on 300 nodes: tx flood {tx_time*1000:.0f} ms, "
        f"block flood {block_time*1000:.0f} ms (simulated)"
    )


def test_gossip_event_throughput(benchmark):
    """Raw event-loop throughput (events/second of wall time)."""

    def flood():
        network = random_topology(150, degree=8, n_miners=2, seed=5)
        network.broadcast_tx(0, b"x")
        network.run(10.0)
        return network.scheduler.events_processed

    events = benchmark(flood)
    assert events > 150  # every node saw it, most relayed

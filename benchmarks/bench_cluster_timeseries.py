"""Cluster growth at every height: streaming pass vs naive re-clustering.

The temporal question behind §4 ("what did the clustering look like as
of height h?") used to cost a full H1+H2 re-run per cutoff.  The
incremental engine answers it for *all* heights from one chain pass plus
checkpoint arithmetic.  Asserted shape: the series agrees with batch
``cluster(as_of_height=h)`` wherever we spot-check it, grows monotonically
in addresses, and the full-series pass beats the naive loop over a small
handful of heights by construction.
"""

import time

from repro import experiments
from repro.core.incremental import IncrementalClusteringEngine
from repro.pipeline import AnalystView


def test_cluster_timeseries_single_pass(benchmark, bench_default_world):
    result = benchmark.pedantic(
        experiments.run_cluster_timeseries,
        args=(bench_default_world,),
        rounds=3,
        iterations=1,
    )
    print("\n" + result.report)
    index = bench_default_world.index
    assert len(result.points) == index.height + 1
    addresses = [p.address_count for p in result.points]
    assert addresses == sorted(addresses)
    assert addresses[-1] == index.address_count
    # H2 only ever collapses the H1 partition.
    assert all(p.clusters <= p.h1_clusters for p in result.points)
    # The tip of the series is the batch engine's full-chain answer.
    view = AnalystView.build(bench_default_world)
    assert result.final_clusters == view.clustering.cluster_count
    assert result.final_h1_clusters == view.clustering_h1.cluster_count


def test_incremental_beats_naive_per_height_loop(bench_default_world):
    """One streaming pass over *every* height must beat re-clustering
    from scratch at even a handful of heights."""
    view = AnalystView.build(bench_default_world)
    index = bench_default_world.index

    start = time.perf_counter()
    engine = IncrementalClusteringEngine(
        index, h2_config=view.h2_config, dice_addresses=view.dice_addresses
    )
    series = engine.cluster_count_series()
    incremental_seconds = time.perf_counter() - start

    sample_heights = list(range(0, index.height + 1, max(1, index.height // 4)))
    start = time.perf_counter()
    for height in sample_heights:
        batch = view.engine.cluster(as_of_height=height)
        assert batch.cluster_count == series[height].clusters, height
        assert batch.address_count == series[height].address_count, height
    naive_seconds = time.perf_counter() - start

    print(
        f"\nincremental: {len(series)} heights in {incremental_seconds:.3f}s; "
        f"naive loop: {len(sample_heights)} heights in {naive_seconds:.3f}s"
    )
    assert incremental_seconds < naive_seconds

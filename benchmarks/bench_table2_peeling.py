"""Table 2: tracking bitcoins from the 1DkyBEKt hoard.

Paper: the final 158,336 BTC deposit fed three peeling chains; following
100 hops of each, 54 of 300 peels went to exchanges (Mt Gox foremost:
11/14/5 peels across the chains), plus wallets (Instawallet), gambling,
and vendors.  Asserted shape: three 100-hop chains, exchanges dominate
the named peels, Mt Gox is the single biggest recipient, and no peel is
named incorrectly (checked against ground truth).
"""

from collections import Counter

from repro import experiments
from repro.pipeline import AnalystView


def test_table2_hoard_tracking(benchmark, bench_silkroad_world):
    result = benchmark.pedantic(
        experiments.run_table2,
        args=(bench_silkroad_world,),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.report)
    assert len(result.chain_summaries) == 3
    assert result.total_peels >= 250  # paper: 300 (3 × 100 hops)
    assert result.named_peels >= 30
    # Exchanges are the chokepoint: most named peels go to them.
    assert result.exchange_peels >= result.named_peels * 0.4
    # Mt Gox is the single largest known recipient, as in Table 2, and
    # some peels return to Silk Road itself (paper: 9 peels, 130 BTC).
    totals = Counter()
    for summary in result.chain_summaries:
        for name, entry in summary.items():
            totals[name] += entry.peel_count
    assert totals.most_common(1)[0][0] == "Mt Gox"
    assert "Silk Road" in totals


def test_table2_no_mislabeled_peels(bench_silkroad_world, bench_report):
    """Every named peel agrees with ground truth ownership.

    A seed-era xfail until the peel namer moved off the tip full
    partition: naming recipients through settled change links mislabeled
    ~15% of named peels (a change-heuristic false positive bridges a
    recipient's wallet into a service cluster, retroactively renaming
    past peels).  ``AnalystView.name_of_peel`` — the co-spend-only
    partition as of each peel's spend height — is what ``run_table2``
    ships, and it must hold the paper's implied ≤5% bound strictly.
    """
    view = AnalystView.build(bench_silkroad_world)
    gt = bench_silkroad_world.ground_truth
    hoard = bench_silkroad_world.extras["hoard"]
    tracker = view.peeling_tracker()
    named = wrong = 0
    for head in hoard.state.chain_start_addresses:
        chain = tracker.follow_address(head, max_hops=100)
        for peel in chain.peels:
            name = view.name_of_peel(peel)
            if name is None:
                continue
            named += 1
            if gt.owner_of(peel.address) != name:
                wrong += 1
    rate = wrong / named if named else 0.0
    bench_report(
        "table2_peel_mislabels",
        {
            "named_peels": named,
            "mislabeled_peels": wrong,
            "mislabel_rate": rate,
            "bound": 0.05,
        },
    )
    print(
        f"\npeel naming: {wrong}/{named} named peels mislabeled "
        f"({rate:.1%}; bound 5%)"
    )
    assert named > 30
    assert wrong <= named * 0.05


def test_peel_tracker_speed(benchmark, bench_silkroad_world):
    """Raw chain-following speed (100 hops, H2 at each hop)."""
    view = AnalystView.build(bench_silkroad_world)
    _ = view.clustering  # warm the cached clustering outside the timer
    hoard = bench_silkroad_world.extras["hoard"]
    tracker = view.peeling_tracker()
    head = hoard.state.chain_start_addresses[0]
    chain = benchmark(tracker.follow_address, head, max_hops=100)
    assert chain.hop_count == 100

"""Shared worlds for the benchmark harness.

Worlds are deterministic and expensive, so each is built once per
session; the benchmarks time the *analysis* stages (clustering, peel
tracking, theft classification) against the prebuilt chains, and each
bench also prints the paper-shaped table it regenerates (run with
``-s`` to see them, or read EXPERIMENTS.md for a recorded copy).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.simulation import scenarios


@pytest.fixture(scope="session")
def bench_report():
    """Write a ``BENCH_<name>.json`` machine-readable result next to the
    run (or under ``$BENCH_OUT_DIR``); CI uploads these as artifacts so
    benchmark numbers are inspectable per commit without re-running."""

    def write(name: str, payload: dict) -> Path:
        out_dir = Path(os.environ.get("BENCH_OUT_DIR", "."))
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    return write


@pytest.fixture(scope="session")
def bench_default_world():
    """§3/§4 workload: full roster, 600 blocks."""
    return scenarios.default_economy(seed=0)


@pytest.fixture(scope="session")
def bench_silkroad_world():
    """Table 2 / Figure 2 workload: hoard lifecycle over ~1 simulated year."""
    return scenarios.silkroad_world(seed=1, n_blocks=1200)


@pytest.fixture(scope="session")
def bench_theft_world():
    """Table 3 workload: the seven thefts over the 2011–2013 window."""
    return scenarios.theft_world(seed=2)

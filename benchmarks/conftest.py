"""Shared worlds for the benchmark harness.

Worlds are deterministic and expensive, so each is built once per
session; the benchmarks time the *analysis* stages (clustering, peel
tracking, theft classification) against the prebuilt chains, and each
bench also prints the paper-shaped table it regenerates (run with
``-s`` to see them, or read EXPERIMENTS.md for a recorded copy).
"""

from __future__ import annotations

import pytest

from repro.simulation import scenarios


@pytest.fixture(scope="session")
def bench_default_world():
    """§3/§4 workload: full roster, 600 blocks."""
    return scenarios.default_economy(seed=0)


@pytest.fixture(scope="session")
def bench_silkroad_world():
    """Table 2 / Figure 2 workload: hoard lifecycle over ~1 simulated year."""
    return scenarios.silkroad_world(seed=1, n_blocks=1200)


@pytest.fixture(scope="session")
def bench_theft_world():
    """Table 3 workload: the seven thefts over the 2011–2013 window."""
    return scenarios.theft_world(seed=2)

"""Table 3: tracking the seven 2011–2012 thefts.

Paper rows (BTC, movement grammar, exchange reach):
MyBitcoin 4,019 A/P/S Yes · Linode 46,648 A/P/F Yes · Betcoin 3,171
F/A/P Yes · Bitcoinica 18,547 P/A Yes · Bitcoinica 40,000 P/A/S Yes ·
Bitfloor 24,078 P/A/P Yes · Trojan 3,257 F/A No.  Case studies: Betcoin
loot sat ~1 year then peeled to exchanges within ~20 hops (374.49 BTC);
most Trojan loot (2,857 of 3,257) never moved.  Asserted shape: the
tracker recovers ≥6/7 movement grammars and all 7 exchange-reach flags,
Betcoin reaches an exchange, and Trojan stays mostly dormant.
"""

from repro import experiments


def test_table3_theft_tracking(benchmark, bench_theft_world):
    result = benchmark.pedantic(
        experiments.run_table3,
        args=(bench_theft_world,),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.report)
    assert len(result.rows) == 7
    assert result.exchange_flag_matches == 7
    assert result.grammar_matches >= 6
    by_name = {row["name"]: row for row in result.rows}
    # Betcoin: dormant loot that eventually peeled into exchanges.
    assert by_name["Betcoin"]["reached_exchanges"]
    assert by_name["Betcoin"]["exchange_btc"] > 0
    # Trojan: no exchange contact, most loot still sitting.
    trojan = by_name["Trojan"]
    assert not trojan["reached_exchanges"]
    assert trojan["dormant_btc"] > trojan["exchange_btc"]


def test_theft_tracker_speed(benchmark, bench_theft_world):
    """Time classifying one theft's full movement."""
    from repro.pipeline import AnalystView

    view = AnalystView.build(bench_theft_world)
    _ = view.naming  # pre-build clustering + naming outside the timer
    tracker = view.theft_tracker()
    theft = bench_theft_world.extras["thefts"][0]
    analysis = benchmark(tracker.track, theft.record.theft_txids)
    assert analysis.txs_followed > 0

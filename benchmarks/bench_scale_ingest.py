"""Two-scale ingest: the fold kernels' asymptotics, not just the constant.

Every other benchmark runs at the seed scale (hundreds of blocks, ~12k
addresses).  Meiklejohn et al. ran over the real chain — millions of
transactions, >12M addresses — and per-element Python folds that look
fine at seed scale dominate there.  This benchmark ingests the
synthetic high-volume chain (``simulation/largescale.py``) at two
scales and publishes, per scale:

* **end-to-end**: blocks/s with the full service fan-out attached
  (engine + four views + differential aggregates, kernels on) and the
  process peak RSS after the run;
* **fold comparison**: the same recorded delta stream replayed through
  kernelized and scalar instances of every fold consumer, one consumer
  at a time in a tight loop — ``fold_speedup`` is total scalar fold
  seconds over total kernel fold seconds.  Replay (rather than timing
  inside the live ingest callback) keeps each consumer's arrays hot and
  excludes everything the kernels did not touch: bare chain ingest and
  delta construction are identical in both paths, and the aggregate
  view's shared flush machinery (merge replay, overlay rebuild, rank
  churn) runs untimed — only its per-address churn *stage* (scalar
  per-block :meth:`_fold_block_churn` vs batched kernel
  :meth:`_fold_churn`) enters the comparison.  What is timed is
  exactly the per-element fold path the kernels replaced.

Floors pinned at the large scale (≥20k blocks, ≥500k addresses —
trimmed runs pin softer versions):

* ``fold_speedup >= LARGE_SPEEDUP_FLOOR`` — the kernels must beat the
  per-element path by ≥3× where it matters;
* ``large blocks/s >= ASYMPTOTIC_FLOOR × seed blocks/s`` — per-block
  cost must stay near-flat as the address universe grows ~30×: the
  asymptotics, not the constant.

Scale is env-tunable: ``SCALE_BENCH_BLOCKS`` (default 20000) for the
large scale, ``SCALE_BENCH_SEED_BLOCKS`` (default 600) for the small
one — the bench-smoke CI job runs trimmed, the nightly job runs full.
"""

import gc
import os
import resource
import time

from repro.chain.index import ChainIndex
from repro.core.incremental import IncrementalClusteringEngine
from repro.core.union_find import IntUnionFind
from repro.service import ForensicsService
from repro.service.aggregates import ClusterAggregateView
from repro.service.views import ActivityView, BalanceView
from repro.simulation import large_scale_blocks


SEED_BLOCKS = int(os.environ.get("SCALE_BENCH_SEED_BLOCKS", "600"))
LARGE_BLOCKS = int(os.environ.get("SCALE_BENCH_BLOCKS", "20000"))

FULL_SCALE_BLOCKS = 20_000
"""At or above this block count the full-scale floors apply."""

LARGE_SPEEDUP_FLOOR = 3.0
"""Kernel folds must beat the scalar fold path by this factor at full
scale."""

TRIMMED_SPEEDUP_FLOOR = 1.5
"""Softer floor for trimmed (CI smoke) runs, where warm-up and numpy
call overhead are a bigger share of the total."""

ASYMPTOTIC_FLOOR = 0.3
"""Large-scale end-to-end blocks/s must stay within this factor of the
seed scale's — per-block cost may not grow with the address universe."""

FLUSH_EVERY = 1024
"""Aggregate-view flush cadence in the fold comparison (bulk-ingest
shaped, like catch-up or tail replay)."""


def _peak_rss_bytes() -> int:
    """Process high-water RSS (Linux ru_maxrss is in KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _end_to_end(blocks) -> dict:
    """Full-service ingest of a prebuilt chain: seconds and blocks/s."""
    index = ChainIndex()
    service = ForensicsService(index, tags=None)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for block in blocks:
            index.add_block(block)
        clusters = service.aggregates.cluster_count  # coalesced flush
        seconds = time.perf_counter() - start
    finally:
        gc.enable()
    assert clusters > 0
    assert service.engine.height == index.height
    return {
        "blocks": len(blocks),
        "addresses": index.address_count,
        "clusters": clusters,
        "seconds": seconds,
        "blocks_per_second": len(blocks) / seconds,
        "peak_rss_bytes": _peak_rss_bytes(),
    }


def _replay(deltas, fn) -> float:
    """Seconds to run ``fn`` over every delta, GC parked."""
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for delta in deltas:
            fn(delta)
        return time.perf_counter() - start
    finally:
        gc.enable()


def _fold_comparison(blocks) -> dict:
    """Replay one recorded delta stream through kernel/scalar fold twins.

    The chain is ingested once (with a live engine, so the aggregate
    twins can read its per-height merge deltas) while the shared
    :class:`BlockDelta` objects are recorded; each consumer then replays
    the stream in its own tight loop.  The aggregate twins are timed
    only on their churn stage — the kernelized per-element fold — via
    method wrapping; their shared flush machinery runs on both twins
    untimed.
    """
    index = ChainIndex()
    engine = IncrementalClusteringEngine(index)
    deltas = []
    index.subscribe_deltas(deltas.append)
    for block in blocks:
        index.add_block(block)
    engine.detach()

    seconds: dict[str, float] = {}
    empty = ChainIndex()  # fold-only consumers never read the index

    balances_k = BalanceView(empty, follow=False, use_kernels=True)
    balances_s = BalanceView(empty, follow=False, use_kernels=False)
    seconds["balances_kernel"] = _replay(deltas, balances_k._observe_delta)
    seconds["balances_scalar"] = _replay(deltas, balances_s._observe_delta)

    activity_k = ActivityView(empty, follow=False, use_kernels=True)
    activity_s = ActivityView(empty, follow=False, use_kernels=False)
    seconds["activity_kernel"] = _replay(deltas, activity_k._observe_delta)
    seconds["activity_scalar"] = _replay(deltas, activity_s._observe_delta)

    uf_k = IntUnionFind()
    uf_s = IntUnionFind()

    def h1_kernel(delta):
        if delta.max_id >= len(uf_k):
            uf_k.ensure(delta.max_id + 1)
        if len(delta.h1_a):
            uf_k.union_many(delta.h1_a, delta.h1_b)

    def h1_scalar(delta):
        if delta.max_id >= len(uf_s):
            uf_s.ensure(delta.max_id + 1)
        for txd in delta.txs:
            if not txd.is_coinbase and txd.input_ids:
                uf_s.union_many(txd.input_ids)

    seconds["h1_kernel"] = _replay(deltas, h1_kernel)
    seconds["h1_scalar"] = _replay(deltas, h1_scalar)

    def timed_aggregate_view(use_kernels: bool) -> tuple:
        view = ClusterAggregateView(
            empty, engine=engine, follow=False, use_kernels=use_kernels
        )
        churn_timer = [0.0]
        if use_kernels:
            inner_k = view._fold_churn

            def timed_kernel_churn(deferred, touched):
                start = time.perf_counter()
                inner_k(deferred, touched)
                churn_timer[0] += time.perf_counter() - start

            view._fold_churn = timed_kernel_churn
        else:
            inner_s = view._fold_block_churn

            def timed_scalar_churn(delta, touched):
                start = time.perf_counter()
                inner_s(delta, touched)
                churn_timer[0] += time.perf_counter() - start

            view._fold_block_churn = timed_scalar_churn

        def feed(delta):
            view._observe_delta(delta)
            if (delta.height + 1) % FLUSH_EVERY == 0:
                view._flush()

        _replay(deltas, feed)
        # The trailing flush is timed too (its churn fold is), so it
        # gets the same GC parking as the replay loop — a collection
        # pause over the recorded delta stream would otherwise land
        # inside the churn timer.
        gc.collect()
        gc.disable()
        try:
            view._flush()
        finally:
            gc.enable()
        return view, churn_timer

    agg_k, kernel_churn = timed_aggregate_view(use_kernels=True)
    agg_s, scalar_churn = timed_aggregate_view(use_kernels=False)
    seconds["aggregate_churn_kernel"] = kernel_churn[0]
    seconds["aggregate_churn_scalar"] = scalar_churn[0]

    # The kernels must change nothing but speed: spot-check twin state.
    assert balances_k.supply == balances_s.supply
    assert balances_k._balances.tolist() == balances_s._balances.tolist()
    assert activity_k._tx_counts.tolist() == activity_s._tx_counts.tolist()
    assert agg_k.cluster_count == agg_s.cluster_count
    assert agg_k.ranking("balance") == agg_s.ranking("balance")
    assert (
        uf_k.component_count
        == uf_s.component_count
        == engine._uf.component_count
    )

    scalar = sum(t for name, t in seconds.items() if name.endswith("scalar"))
    kernel = sum(t for name, t in seconds.items() if name.endswith("kernel"))
    return {
        "fold_seconds": seconds,
        "scalar_fold_seconds": scalar,
        "kernel_fold_seconds": kernel,
        "fold_speedup": scalar / kernel,
    }


def test_ingest_scales_with_kernelized_folds(bench_report):
    results = {}
    for label, n_blocks in (("seed", SEED_BLOCKS), ("large", LARGE_BLOCKS)):
        blocks = list(large_scale_blocks(n_blocks, seed=0))
        scale = _end_to_end(blocks)
        scale.update(_fold_comparison(blocks))
        results[label] = scale
        print(
            f"\n[{label}] {scale['blocks']} blocks, "
            f"{scale['addresses']:,} addresses: "
            f"{scale['blocks_per_second']:,.0f} blocks/s end-to-end, "
            f"fold speedup ×{scale['fold_speedup']:.2f}, "
            f"peak RSS {scale['peak_rss_bytes'] / 2**20:,.0f} MiB"
        )

    full_scale = LARGE_BLOCKS >= FULL_SCALE_BLOCKS
    speedup_floor = (
        LARGE_SPEEDUP_FLOOR if full_scale else TRIMMED_SPEEDUP_FLOOR
    )
    bench_report(
        "scale_ingest",
        {
            "scales": results,
            "full_scale": full_scale,
            "speedup_floor": speedup_floor,
            "asymptotic_floor": ASYMPTOTIC_FLOOR,
        },
    )

    if full_scale:
        # The paper's working band: >500k addresses actually interned.
        assert results["large"]["addresses"] >= 500_000
    assert results["large"]["fold_speedup"] >= speedup_floor
    # Asymptotics: per-block cost must stay near-flat while the address
    # universe grows ~30×.
    assert (
        results["large"]["blocks_per_second"]
        >= ASYMPTOTIC_FLOOR * results["seed"]["blocks_per_second"]
    )

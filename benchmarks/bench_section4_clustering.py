"""§4 clustering accounting: H1 counts, refined H2, naming coverage.

Paper numbers (absolute scale differs — they indexed 12M addresses):
H1 → 5.5M clusters, ≤6,595,564 users; refined H2 → 3,384,179 clusters,
collapsing to 3,383,904 with tags; 2,197 named clusters covering 1.8M
addresses — ×1,600 the hand-tagged set; 20 distinct Mt Gox clusters.
The shapes asserted here: H2 strictly collapses the partition, tags
collapse it further, naming amplifies coverage, and big exchanges leave
multiple named clusters.
"""

from repro import experiments
from repro.core.clustering import ClusteringEngine


def test_section4_accounting(benchmark, bench_default_world):
    result = benchmark.pedantic(
        experiments.run_section4,
        args=(bench_default_world,),
        rounds=3,
        iterations=1,
    )
    print("\n" + result.report)
    assert result.h2_clusters < result.h1_user_upper_bound
    assert result.h2_clusters_after_tag_collapse <= result.h2_clusters
    assert result.change_addresses_identified > 100
    assert result.named_clusters > 50
    assert result.amplification > 1.0
    assert result.mtgox_cluster_count >= 2  # paper: 20
    # H2 adds recall over H1 without giving up meaningful precision.
    assert result.h2_scores.recall >= result.h1_scores.recall
    assert result.h2_scores.precision > 0.95


def test_heuristic1_clustering_speed(benchmark, bench_default_world):
    """Raw H1 union-find pass over the whole chain."""
    engine = ClusteringEngine(bench_default_world.index)
    clustering = benchmark(engine.cluster_h1_only)
    assert clustering.cluster_count > 0


def test_combined_clustering_speed(benchmark, bench_default_world):
    """H1 + refined H2 over the whole chain."""
    engine = ClusteringEngine(bench_default_world.index)
    clustering = benchmark.pedantic(engine.cluster, rounds=3, iterations=1)
    assert clustering.h2_result is not None

"""Differential cluster aggregates vs the per-block batch rebuild.

The serving claim behind ``service/aggregates.py``: under *interleaved*
traffic — a block ingested between every round of queries, the pattern
the ROADMAP's heavy-traffic north star implies — the ranked and
rolled-up cluster answers (``top_clusters``, ``cluster_profile``,
``cluster_balance``) must not pay a full address-array pass per block.
The differential view folds each block's churn and merge deltas, so its
per-block serving work is O(block churn + merges); the batch path
rebuilds every ``_agg:*`` aggregate (tip partition materialization,
cluster balances, activity, canonical ids, rankings) on the first
cluster query after each block.

Both paths run from fresh state over the same 600-block chain and the
same query stream, and every answer is cross-checked equal, so the
speedup is not bought with different answers.  Three bars hold at once:

* serving ≥ ``SERVE_SPEEDUP_BOUND`` over the per-block ``_agg`` rebuild;
* combined (ingest + serve) ≥ ``TOTAL_SPEEDUP_BOUND`` — the view's own
  maintenance may not eat its serving win;
* differential ingest ≤ ``INGEST_OVERHEAD_BOUND`` × batch ingest — the
  ingest hot path shares one :class:`~repro.chain.delta.BlockDelta`
  per block across the whole observer fan-out and defers aggregate
  maintenance to flush, so attaching the differential view must stay
  nearly free at ``add_block`` time.  A regression that re-walks
  transactions per subscriber or drags rank upkeep back into the
  observer callback fails this bound instead of hiding behind the
  serve speedup.

The shared world's ``TxOut`` address memos are warmed before either
timed run (first-touch script extraction belongs to neither path), and
GC is disabled inside the timed regions so collector pauses are not
misattributed to whichever phase allocates past a threshold.
"""

import gc
import random
import time

from repro.chain.index import ChainIndex
from repro.service import ForensicsService, Query
from repro.service.queries import TOP_CLUSTER_METRICS


QUERIES_PER_BLOCK = 3
SERVE_SPEEDUP_BOUND = 10.0
TOTAL_SPEEDUP_BOUND = 12.0
INGEST_OVERHEAD_BOUND = 1.25


def _warm_world(world) -> None:
    for block in world.blocks:
        for tx in block.transactions:
            for out in tx.outputs:
                out.address


def _block_queries(rng, interner, height):
    queries = [
        Query(
            "top_clusters",
            (10, TOP_CLUSTER_METRICS[height % len(TOP_CLUSTER_METRICS)]),
        )
    ]
    for kind in ("cluster_profile", "cluster_balance"):
        address = interner.address_of(rng.randrange(len(interner)))
        queries.append(Query(kind, (address,)))
    return queries


def _run_interleaved(world, *, differential: bool):
    """Fresh service; one block ingested between every query round."""
    attack = world.extras.get("attack")
    tags = attack.tags if attack is not None else None
    rng = random.Random(17)
    index = ChainIndex()
    service = ForensicsService(
        index, tags=tags, differential_aggregates=differential
    )
    gc.collect()
    gc.disable()
    try:
        ingest_seconds = serve_seconds = 0.0
        answers = []
        for block in world.blocks:
            start = time.perf_counter()
            index.add_block(block)
            ingest_seconds += time.perf_counter() - start
            queries = _block_queries(rng, index.interner, block.height)
            start = time.perf_counter()
            answers.append(service.answer_many(queries))
            serve_seconds += time.perf_counter() - start
    finally:
        gc.enable()
    return ingest_seconds, serve_seconds, answers


def test_differential_aggregates_beat_per_block_rebuild_10x(
    bench_default_world, bench_report
):
    world = bench_default_world
    n_blocks = world.index.height + 1
    assert n_blocks >= 600
    _warm_world(world)

    diff_ingest, diff_serve, diff_answers = _run_interleaved(
        world, differential=True
    )
    batch_ingest, batch_serve, batch_answers = _run_interleaved(
        world, differential=False
    )

    # Same stream, same answers — the property suite pins this per
    # height; here it guards the benchmark itself.
    assert diff_answers == batch_answers

    serve_speedup = batch_serve / diff_serve
    total_speedup = (batch_ingest + batch_serve) / (diff_ingest + diff_serve)
    ingest_overhead = diff_ingest / batch_ingest
    queries = n_blocks * QUERIES_PER_BLOCK
    print(
        f"\n{queries} queries interleaved with {n_blocks} block ingests:\n"
        f"  differential: ingest {diff_ingest:.3f}s + serve "
        f"{diff_serve:.3f}s ({queries / diff_serve:,.0f} q/s)\n"
        f"  batch rebuild: ingest {batch_ingest:.3f}s + serve "
        f"{batch_serve:.3f}s ({queries / batch_serve:,.0f} q/s)\n"
        f"  serving speedup: ×{serve_speedup:,.1f}   "
        f"combined: ×{total_speedup:,.1f}   "
        f"ingest overhead: ×{ingest_overhead:.2f}"
    )
    bench_report(
        "cluster_aggregates",
        {
            "blocks": n_blocks,
            "queries": queries,
            "differential_ingest_seconds": diff_ingest,
            "differential_serve_seconds": diff_serve,
            "batch_ingest_seconds": batch_ingest,
            "batch_serve_seconds": batch_serve,
            "serve_speedup": serve_speedup,
            "total_speedup": total_speedup,
            "ingest_overhead_ratio": ingest_overhead,
            "bound": SERVE_SPEEDUP_BOUND,
            "total_speedup_bound": TOTAL_SPEEDUP_BOUND,
            "ingest_overhead_bound": INGEST_OVERHEAD_BOUND,
        },
    )
    # The acceptance bars: serving ≥10× over the per-block _agg rebuild,
    # the combined wall clock ≥12× (maintenance may not cancel the win),
    # and ingest overhead ≤1.25× (the shared-delta fan-out keeps the
    # differential view nearly free at add_block time).
    assert diff_serve * SERVE_SPEEDUP_BOUND <= batch_serve
    assert total_speedup >= TOTAL_SPEEDUP_BOUND
    assert diff_ingest <= batch_ingest * INGEST_OVERHEAD_BOUND

"""Differential cluster aggregates vs the per-block batch rebuild.

The serving claim behind ``service/aggregates.py``: under *interleaved*
traffic — a block ingested between every round of queries, the pattern
the ROADMAP's heavy-traffic north star implies — the ranked and
rolled-up cluster answers (``top_clusters``, ``cluster_profile``,
``cluster_balance``) must not pay a full address-array pass per block.
The differential view folds each block's churn and merge deltas, so its
per-block serving work is O(block churn + merges); the batch path
rebuilds every ``_agg:*`` aggregate (tip partition materialization,
cluster balances, activity, canonical ids, rankings) on the first
cluster query after each block.

Both paths run from fresh state over the same 600-block chain and the
same query stream, and every answer is cross-checked equal, so the
speedup is not bought with different answers.  The acceptance bar is
10× on the serving time; ingestion (chain + engine + views, common to
both paths, plus the differential view's own maintenance) is measured
and reported separately, and the differential path must also win on
the combined wall clock — the view may not eat its own serving win.
"""

import random
import time

from repro.chain.index import ChainIndex
from repro.service import ForensicsService, Query
from repro.service.queries import TOP_CLUSTER_METRICS


QUERIES_PER_BLOCK = 3


def _block_queries(rng, interner, height):
    queries = [
        Query(
            "top_clusters",
            (10, TOP_CLUSTER_METRICS[height % len(TOP_CLUSTER_METRICS)]),
        )
    ]
    for kind in ("cluster_profile", "cluster_balance"):
        address = interner.address_of(rng.randrange(len(interner)))
        queries.append(Query(kind, (address,)))
    return queries


def _run_interleaved(world, *, differential: bool):
    """Fresh service; one block ingested between every query round."""
    attack = world.extras.get("attack")
    tags = attack.tags if attack is not None else None
    rng = random.Random(17)
    index = ChainIndex()
    service = ForensicsService(
        index, tags=tags, differential_aggregates=differential
    )
    ingest_seconds = serve_seconds = 0.0
    answers = []
    for block in world.blocks:
        start = time.perf_counter()
        index.add_block(block)
        ingest_seconds += time.perf_counter() - start
        queries = _block_queries(rng, index.interner, block.height)
        start = time.perf_counter()
        answers.append(service.answer_many(queries))
        serve_seconds += time.perf_counter() - start
    return ingest_seconds, serve_seconds, answers


def test_differential_aggregates_beat_per_block_rebuild_10x(
    bench_default_world, bench_report
):
    world = bench_default_world
    n_blocks = world.index.height + 1
    assert n_blocks >= 600

    diff_ingest, diff_serve, diff_answers = _run_interleaved(
        world, differential=True
    )
    batch_ingest, batch_serve, batch_answers = _run_interleaved(
        world, differential=False
    )

    # Same stream, same answers — the property suite pins this per
    # height; here it guards the benchmark itself.
    assert diff_answers == batch_answers

    serve_speedup = batch_serve / diff_serve
    total_speedup = (batch_ingest + batch_serve) / (diff_ingest + diff_serve)
    queries = n_blocks * QUERIES_PER_BLOCK
    print(
        f"\n{queries} queries interleaved with {n_blocks} block ingests:\n"
        f"  differential: ingest {diff_ingest:.3f}s + serve "
        f"{diff_serve:.3f}s ({queries / diff_serve:,.0f} q/s)\n"
        f"  batch rebuild: ingest {batch_ingest:.3f}s + serve "
        f"{batch_serve:.3f}s ({queries / batch_serve:,.0f} q/s)\n"
        f"  serving speedup: ×{serve_speedup:,.1f}   "
        f"combined: ×{total_speedup:,.1f}"
    )
    bench_report(
        "cluster_aggregates",
        {
            "blocks": n_blocks,
            "queries": queries,
            "differential_ingest_seconds": diff_ingest,
            "differential_serve_seconds": diff_serve,
            "batch_ingest_seconds": batch_ingest,
            "batch_serve_seconds": batch_serve,
            "serve_speedup": serve_speedup,
            "total_speedup": total_speedup,
            "bound": 10.0,
        },
    )
    # The acceptance bar: serving ≥10× over the per-block _agg rebuild,
    # and the view's maintenance must not cancel the win overall.
    assert diff_serve * 10 <= batch_serve
    assert diff_ingest + diff_serve < batch_ingest + batch_serve

"""Durable state store: restore + tail replay vs cold replay.

The recovery claim behind ``repro/storage``: restarting the forensics
service from its newest snapshot — deserialize the segments, then
re-ingest only the blocks past the snapshot height from the ``blk*.dat``
files — beats rebuilding from block 0 by ≥4× on a 600-height chain.

(The bound was ≥10× when cold replay paid five transaction walks per
block; the single-pass ``BlockDelta`` fan-out and the memoized
``TxOut.address`` halved the cold baseline, while warm recovery was
already dominated by the fixed snapshot-deserialize floor.  The
structural claim — recovery bounded by the tail, not the chain — is
unchanged, and the ratio grows back with chain length.)

Each recovery path is timed in a *fresh subprocess*, because that is
what a restart is: a clean heap, state coming from disk.  (In-process
timing would let one path's allocations trigger whole-heap GC passes
inside the other's window — the numbers stop meaning anything.)  The
cold child replays every block file through the full observer fan-out
(incremental H1+H2, balance/taint/activity views), re-watches the theft
cases, and materializes the tip partition; the warm child calls
``StateStore.warm_start`` and reaches the same readiness bar.  The
parent then restores in-process and asserts the recovered service is
answer-for-answer identical to the never-restarted reference.

Snapshots come from a ``SnapshotPolicy`` (every 59 blocks, retain 2)
attached during untimed preparation, leaving the newest snapshot ~10
blocks behind the tip — the recovery point a restart typically finds
under an every-N policy: a real tail to replay, bounded by the policy
interval rather than the chain.
"""

import json
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro import experiments
from repro.chain.blockfile import BlockFileWriter
from repro.chain.index import ChainIndex
from repro.service import ForensicsService
from repro.storage import SnapshotPolicy, StateStore

_SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)

_COLD_CHILD = """
import json, sys, time
sys.path.insert(0, sys.argv[1])
from repro import experiments
from repro.chain.blockfile import BlockFileReader
from repro.chain.index import ChainIndex
from repro.service import ForensicsService
from repro.simulation import scenarios

blocks_dir = sys.argv[2]
world = scenarios.default_economy(seed=0)
reference = ForensicsService.from_world(world)
config = dict(
    tags=reference.tags, dice_addresses=reference.engine.dice_addresses
)
reference.detach()
del reference, world  # the timed replay runs against disk, not this heap
import gc; gc.collect()

start = time.perf_counter()
index = ChainIndex()
service = ForensicsService(index, **config)
for block in BlockFileReader(blocks_dir).iter_blocks():
    index.add_block(block)
experiments.watch_synthetic_thefts(service)
service.clustering  # ready to serve: tip partition materialized
seconds = time.perf_counter() - start
print(json.dumps({"seconds": seconds, "height": service.height}))
"""

_WARM_CHILD = """
import json, sys, time
sys.path.insert(0, sys.argv[1])
from repro.storage import StateStore

blocks_dir, snapshots_dir = sys.argv[2], sys.argv[3]
start = time.perf_counter()
warm = StateStore(snapshots_dir).warm_start(blocks_dir)
warm.service.clustering  # same readiness bar as the cold child
seconds = time.perf_counter() - start
print(json.dumps({
    "seconds": seconds,
    "height": warm.height,
    "snapshot_height": warm.snapshot_height,
    "tail_blocks": warm.tail_blocks,
}))
"""


def _run_child(script: str, *args: str) -> dict:
    result = subprocess.run(
        [sys.executable, "-c", script, _SRC_DIR, *args],
        capture_output=True,
        text=True,
        check=True,
        timeout=600,
    )
    return json.loads(result.stdout.strip().splitlines()[-1])


def _watch_like(reference, service):
    """Watch the exact theft cases the reference service watches."""
    for label in reference.taint.labels:
        service.taint.watch(label, list(reference.taint.case(label).sources))


def test_restore_plus_tail_replay_beats_cold_replay(
    tmp_path, bench_default_world, bench_report
):
    world = bench_default_world  # 600-height chain
    n_blocks = world.index.height + 1
    assert n_blocks >= 600
    blocks_dir = tmp_path / "blocks"
    BlockFileWriter(blocks_dir).write_chain(world.blocks)

    # Reference service: never restarted, theft cases watched at the tip
    # (the same deterministic cases the cold child will watch).
    reference = ForensicsService.from_world(world)
    experiments.watch_synthetic_thefts(reference)

    # --- preparation (untimed): stream once with the snapshot policy --
    store = StateStore(tmp_path / "snapshots")
    prep_index = ChainIndex()
    prep_service = ForensicsService(
        prep_index,
        tags=reference.tags,
        dice_addresses=reference.engine.dice_addresses,
    )
    SnapshotPolicy(store, every=59, retain=2).attach(prep_service)
    watch_height = max(
        reference.index.location(point.txid).height
        for label in reference.taint.labels
        for point in reference.taint.case(label).sources
    )
    for block in world.blocks:
        prep_index.add_block(block)
        if block.height == watch_height:
            # Watch as soon as the theft txs exist, so the snapshots the
            # restart will find carry live taint frontiers.
            _watch_like(reference, prep_service)
    newest = store.latest()
    assert newest is not None and newest.height < n_blocks - 1
    snapshot_bytes = sum(record["bytes"] for record in newest.segments.values())

    # --- timed, one fresh process per recovery path -------------------
    cold = _run_child(_COLD_CHILD, str(blocks_dir))
    warm = _run_child(_WARM_CHILD, str(blocks_dir), str(tmp_path / "snapshots"))
    assert cold["height"] == warm["height"] == n_blocks - 1
    assert warm["tail_blocks"] == n_blocks - 1 - warm["snapshot_height"]

    # Recovery must not change a single answer: restore in-process and
    # compare against the never-restarted reference.
    recovered = store.warm_start(blocks_dir).service
    queries = experiments.generate_query_workload(
        reference, n_queries=120, seed=17
    )
    assert reference.answer_many(queries) == recovered.answer_many(queries)

    speedup = cold["seconds"] / warm["seconds"]
    print(
        f"\nrecovery over a {n_blocks}-height chain "
        f"({world.index.tx_count} txs, {world.index.address_count} "
        f"addresses), each path in a fresh process:\n"
        f"  cold replay from block 0:   {cold['seconds']:.3f}s\n"
        f"  restore h={warm['snapshot_height']} + {warm['tail_blocks']}-block "
        f"tail replay: {warm['seconds']:.3f}s "
        f"(snapshot {snapshot_bytes / 1e6:.1f} MB)\n"
        f"  speedup: ×{speedup:.1f}"
    )
    bench_report(
        "snapshot_restore",
        {
            "chain_heights": n_blocks,
            "tx_count": world.index.tx_count,
            "address_count": world.index.address_count,
            "cold_replay_seconds": round(cold["seconds"], 4),
            "warm_recovery_seconds": round(warm["seconds"], 4),
            "snapshot_height": warm["snapshot_height"],
            "tail_blocks": warm["tail_blocks"],
            "snapshot_bytes": snapshot_bytes,
            "speedup": round(speedup, 1),
            "bound": 4.0,
        },
    )
    # The acceptance bar: recovery is bounded by the tail, not the chain.
    # (≥4× against the post-PR-5 single-pass cold replay; see module doc.)
    assert warm["seconds"] * 4 <= cold["seconds"]


def test_snapshot_capture_cost_is_bounded(
    tmp_path, bench_default_world, bench_report
):
    """Capturing a snapshot of the full 600-height state costs a small
    constant (well under one cold replay), so an every-N policy is cheap
    insurance rather than a serving hazard."""
    world = bench_default_world
    service = ForensicsService.from_world(world)
    store = StateStore(tmp_path)
    start = time.perf_counter()
    path = store.snapshot(service)
    capture_seconds = time.perf_counter() - start
    start = time.perf_counter()
    restored = store.restore()
    restore_seconds = time.perf_counter() - start
    assert restored.height == service.height
    total_bytes = sum(f.stat().st_size for f in path.iterdir())
    print(
        f"\nsnapshot at height {service.height}: capture "
        f"{capture_seconds:.3f}s, restore {restore_seconds:.3f}s, "
        f"{total_bytes / 1e6:.1f} MB"
    )
    bench_report(
        "snapshot_capture",
        {
            "height": service.height,
            "capture_seconds": round(capture_seconds, 4),
            "restore_seconds": round(restore_seconds, 4),
            "snapshot_bytes": total_bytes,
        },
    )
    # Guardrails, loose enough for CI noise: capture and restore are
    # both far from cold-replay territory.
    assert capture_seconds < 30
    assert restore_seconds < 10

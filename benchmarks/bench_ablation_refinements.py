"""Ablation: the contribution of each Heuristic 2 refinement rung.

Not a paper table — this is the quantitative analysis §6 leaves open,
possible here because the simulator knows ground truth.  Sweeping the
refinement toggles shows the safety/coverage trade the paper navigated
qualitatively: each rung removes labels (coverage down) and removes
wrong labels faster (precision up).
"""

from repro import experiments


def test_refinement_ablation(benchmark, bench_default_world):
    result = benchmark.pedantic(
        experiments.run_ablation,
        args=(bench_default_world,),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.report)
    by_config = {row["config"]: row for row in result.rows}
    naive = by_config["naive"]
    refined = by_config["refined (all)"]
    # Refinements shed labels...
    assert refined["change_labels"] <= naive["change_labels"]
    # ...and buy precision.
    assert refined["precision"] >= naive["precision"]
    # Every configuration keeps more clusters than the naive one (it
    # merged the most, often wrongly).
    assert all(
        row["clusters"] >= naive["clusters"] for row in result.rows
    )

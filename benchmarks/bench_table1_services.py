"""Table 1: the re-identification attack across the service roster.

Paper: 344 transactions with ~70 services in 7 categories, hand-tagging
1,070 addresses.  The bench regenerates the roster table and times the
attack's chain-scanning tag collection on a fresh world.
"""

from repro import experiments
from repro.simulation import scenarios


def test_table1_roster_coverage(benchmark, bench_default_world):
    result = benchmark.pedantic(
        experiments.run_table1,
        args=(bench_default_world,),
        rounds=3,
        iterations=1,
    )
    print("\n" + result.report)
    # Shape: every category engaged, transaction count in the paper's
    # order of magnitude, tags amplify beyond the deposit count.
    assert result.services_engaged >= 80
    assert 100 <= result.transactions_made <= 600
    assert result.addresses_tagged >= 200
    categories = set(result.services_by_category)
    assert {"mining", "wallets", "exchanges", "fixed", "vendors",
            "gambling", "miscellaneous"} <= categories


def test_table1_attack_end_to_end(benchmark):
    """Time the full §3.1 data collection (simulation + attack)."""

    def run():
        world = scenarios.default_economy(seed=42, n_blocks=300, n_users=30)
        return world.extras["attack"].tags.address_count

    tagged = benchmark.pedantic(run, rounds=1, iterations=1)
    assert tagged > 100

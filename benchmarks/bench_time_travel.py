"""Ranked time travel: replayed horizons vs the batch ``_agg@h`` rebuild.

The serving claim behind the aggregate view's per-height delta log: a
historical ranked or rolled-up cluster question (``top_clusters``,
``cluster_profile``, ``cluster_balance``, ``cluster_of`` at ``h < tip``)
replays a sparse checkpoint plus a bounded run of height records, so an
analyst scrubbing across the chain's history pays O(spine gap + churn at
``h``) per horizon — not a full partition materialization, balance
re-sum, and re-ranking at every height touched.

Both services run the same mixed historical workload (uniformly random
horizons over the whole chain, several kinds per horizon) over the same
prebuilt 600-block world; the baseline is ``time_travel=False``, which
keeps the differential tip view but drops the delta log, forcing every
historical horizon onto the batch ``_agg@h`` rebuild.  Every answer is
cross-checked equal, so the speedup is not bought with different
answers.  GC is disabled inside the timed regions so collector pauses
are not misattributed.
"""

import gc
import random
import time

from repro.service import ForensicsService, Query
from repro.service.queries import TOP_CLUSTER_METRICS

N_HEIGHTS = 80
SPEEDUP_BOUND = 10.0


def _historical_workload(world, n_heights: int) -> list[Query]:
    """A mixed stream of historical queries at random horizons.

    Horizons are shuffled (an analyst scrubs, not sweeps) and strictly
    below the tip, so every query exercises the horizon path rather
    than the tip fast path.  Each query in the stream is distinct, so
    neither service's memo cache shortcuts the timed pass.
    """
    rng = random.Random(23)
    tip = world.index.height
    interner = world.index.interner
    heights = rng.sample(range(tip), n_heights)
    queries: list[Query] = []
    for i, height in enumerate(heights):
        queries.append(
            Query(
                "top_clusters",
                (10, TOP_CLUSTER_METRICS[i % len(TOP_CLUSTER_METRICS)], height),
            )
        )
        for kind in ("cluster_profile", "cluster_balance", "cluster_of"):
            address = interner.address_of(rng.randrange(len(interner)))
            queries.append(Query(kind, (address, height)))
    return queries


def _timed_pass(service: ForensicsService, queries: list[Query]):
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        answers = [service.answer(query) for query in queries]
        seconds = time.perf_counter() - start
    finally:
        gc.enable()
    return seconds, answers


def test_time_travel_beats_batch_rebuild_10x(bench_default_world, bench_report):
    world = bench_default_world
    queries = _historical_workload(world, N_HEIGHTS)

    fast = ForensicsService.from_world(world)
    base = ForensicsService.from_world(world, time_travel=False)
    assert fast.aggregates.covers(0)
    # Materialize the checkpoint spine once, untimed: the first horizon
    # past the spine's frontier pays a one-time walk that stores every
    # interval checkpoint along the way — index-build cost on the same
    # footing as service construction, not per-query serving work.
    fast.aggregates.horizon(max(query.args[-1] for query in queries))

    fast_seconds, fast_answers = _timed_pass(fast, queries)
    base_seconds, base_answers = _timed_pass(base, queries)

    # Same stream, same answers — the property suite pins replayed ==
    # batch per height; here it guards the benchmark itself.
    assert fast_answers == base_answers

    speedup = base_seconds / fast_seconds
    print(
        f"\n{len(queries)} historical queries over {N_HEIGHTS} random "
        f"horizons (chain height {world.index.height}):\n"
        f"  time travel:   {fast_seconds:.3f}s "
        f"({len(queries) / fast_seconds:,.0f} q/s)\n"
        f"  batch rebuild: {base_seconds:.3f}s "
        f"({len(queries) / base_seconds:,.0f} q/s)\n"
        f"  speedup: ×{speedup:,.1f}"
    )
    bench_report(
        "time_travel",
        {
            "horizons": N_HEIGHTS,
            "queries": len(queries),
            "time_travel_seconds": fast_seconds,
            "batch_seconds": base_seconds,
            "speedup": speedup,
            "bound": SPEEDUP_BOUND,
        },
    )
    assert fast_seconds * SPEEDUP_BOUND <= base_seconds

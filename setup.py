"""Setup shim for legacy editable installs (offline environment lacks the
``wheel`` package needed for PEP 660 builds)."""

from setuptools import setup

setup()

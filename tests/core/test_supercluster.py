"""Super-cluster detection on synthetic and simulated clusterings."""

from repro.core.clustering import Clustering
from repro.core.supercluster import diagnose_superclusters
from repro.core.union_find import UnionFind


def _clustering(unions, items=()):
    uf = UnionFind(items)
    for a, b in unions:
        uf.union(a, b)
    return Clustering(uf=uf, heuristics="test")


class TestDiagnosis:
    def test_clean_clustering_has_no_merges(self):
        clustering = _clustering([("a1", "a2"), ("b1", "b2")])
        tags = {"a1": "ServiceA", "b1": "ServiceB"}
        report = diagnose_superclusters(clustering, tags)
        assert report.merged_clusters == []
        assert report.merged_entity_count == 0
        assert report.worst is None

    def test_merge_detected(self):
        clustering = _clustering([("a1", "a2"), ("a2", "b1")])
        tags = {"a1": "ServiceA", "b1": "ServiceB"}
        report = diagnose_superclusters(clustering, tags)
        assert len(report.merged_clusters) == 1
        assert report.merged_clusters[0].entities == ("ServiceA", "ServiceB")
        assert report.contains_merge_of("ServiceA", "ServiceB")
        assert not report.contains_merge_of("ServiceA", "ServiceC")

    def test_worst_ranks_by_entity_count(self):
        clustering = _clustering(
            [("x1", "x2"), ("x2", "x3"), ("y1", "y2")]
        )
        tags = {
            "x1": "A", "x2": "B", "x3": "C",
            "y1": "D", "y2": "E",
        }
        report = diagnose_superclusters(clustering, tags)
        assert report.worst.entities == ("A", "B", "C")
        assert report.merged_entity_count == 5

    def test_largest_cluster_size(self):
        clustering = _clustering([("a", "b"), ("b", "c")], items=["solo"])
        report = diagnose_superclusters(clustering, {})
        assert report.largest_cluster_size == 3

    def test_untracked_tag_addresses_ignored(self):
        clustering = _clustering([("a", "b")])
        report = diagnose_superclusters(clustering, {"ghost": "X", "a": "Y"})
        assert report.merged_clusters == []


class TestOnSimulatedWorld:
    def test_refined_merges_no_more_than_naive(self, default_world):
        from repro.core.heuristic2 import Heuristic2Config
        from repro.pipeline import AnalystView

        refined = AnalystView.build(default_world)
        naive = AnalystView.build(
            default_world, h2_config=Heuristic2Config.naive()
        )
        tags = refined.tags.as_mapping()
        refined_report = diagnose_superclusters(refined.clustering, tags)
        naive_report = diagnose_superclusters(naive.clustering, tags)
        assert (
            refined_report.merged_entity_count
            <= naive_report.merged_entity_count
        )

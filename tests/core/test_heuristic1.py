"""Heuristic 1 (multi-input clustering) on hand-crafted chains."""

from repro.chain.model import COIN
from repro.core.heuristic1 import cluster_h1, h1_statistics

from tests.helpers import addr, build_chain, coinbase, spend


class TestCoSpend:
    def test_inputs_unioned(self):
        cb_a1 = coinbase(addr("a1"))
        cb_a2 = coinbase(addr("a2"))
        joint = spend(
            [(cb_a1, 0), (cb_a2, 0)],
            [(addr("merchant"), 99 * COIN)],
        )
        index = build_chain([[cb_a1], [cb_a2], [joint]])
        uf = cluster_h1(index)
        assert uf.connected(addr("a1"), addr("a2"))
        # Output address is NOT joined to inputs by H1.
        assert not uf.connected(addr("a1"), addr("merchant"))

    def test_transitive_linking_across_txs(self):
        cb1 = coinbase(addr("x1"))
        cb2 = coinbase(addr("x2"))
        cb3 = coinbase(addr("x3"))
        t1 = spend([(cb1, 0), (cb2, 0)], [(addr("p"), 100 * COIN)])
        # x2 gets more coins (a later coinbase), co-spends with x3.
        refill = coinbase(addr("x2"), height=3)
        t2 = spend([(refill, 0), (cb3, 0)], [(addr("q"), 100 * COIN)])
        index = build_chain([[cb1], [cb2], [cb3], [refill], [t1], [t2]])
        uf = cluster_h1(index)
        assert uf.connected(addr("x1"), addr("x3"))

    def test_coinbases_not_clustered(self):
        index = build_chain([[], []])
        uf = cluster_h1(index)
        assert uf.component_count == len(uf)

    def test_as_of_height_bounds_information(self):
        cb1 = coinbase(addr("h1"))
        cb2 = coinbase(addr("h2"))
        joint = spend([(cb1, 0), (cb2, 0)], [(addr("later"), 99 * COIN)])
        index = build_chain([[cb1], [cb2], [joint]])
        early = cluster_h1(index, as_of_height=1)
        assert not early.connected(addr("h1"), addr("h2"))
        full = cluster_h1(index)
        assert full.connected(addr("h1"), addr("h2"))


class TestStatistics:
    def test_sink_accounting(self):
        cb = coinbase(addr("spender"))
        pay = spend(
            [(cb, 0)], [(addr("sink1"), 25 * COIN), (addr("sink2"), 25 * COIN)]
        )
        index = build_chain([[cb], [pay]])
        stats = h1_statistics(index)
        # spender spent; sink1/sink2 plus two helper coinbases never did.
        assert stats.spender_clusters == 1
        assert stats.sink_addresses == 4
        assert stats.max_users_upper_bound == 5
        assert stats.total_addresses == 5

    def test_largest_cluster(self):
        cbs = [coinbase(addr(f"big{i}")) for i in range(4)]
        joint = spend([(cb, 0) for cb in cbs], [(addr("out"), 199 * COIN)])
        index = build_chain([[cb] for cb in cbs] + [[joint]])
        stats = h1_statistics(index)
        assert stats.largest_cluster_size == 4

    def test_simulated_world_counts(self, micro_world):
        stats = h1_statistics(micro_world.index)
        assert stats.total_addresses == micro_world.index.address_count
        assert (
            stats.max_users_upper_bound
            == stats.spender_clusters + stats.sink_addresses
        )
        # Clustering can never exceed the number of real entities' lower
        # bound: at least as many clusters as entities that transacted.
        assert stats.spender_clusters >= 1

"""Heuristic 2: the four base conditions and every refinement rung."""

from repro.chain.model import COIN
from repro.core.heuristic2 import (
    Heuristic2,
    Heuristic2Config,
    SECONDS_PER_DAY,
    find_candidate,
)

from tests.helpers import addr, build_chain, coinbase, spend

FEE = 0


def _payment_chain(extra_blocks=()):
    """A canonical payment with identifiable change.

    The merchant's address is warmed up twice (so it is well-used, not a
    once-seen possible change address), then the payer spends:
    outputs = [merchant (seen), change (fresh)].
    """
    cb = coinbase(addr("payer"))
    warm = coinbase(addr("merchant-warm"))
    warm2 = coinbase(addr("merchant-warm2"))
    warmup = spend([(warm, 0)], [(addr("merchant"), 50 * COIN)])
    warmup2 = spend([(warm2, 0)], [(addr("merchant"), 50 * COIN)])
    payment = spend(
        [(cb, 0)],
        [(addr("merchant"), 30 * COIN), (addr("change"), 20 * COIN)],
    )
    blocks = [[cb, warm, warm2], [warmup], [warmup2], [payment], *extra_blocks]
    return build_chain(blocks), payment


class TestBaseConditions:
    def test_identifies_fresh_change(self):
        index, payment = _payment_chain()
        vout, reason = find_candidate(index, payment, 2)
        assert reason == "ok"
        assert payment.outputs[vout].address == addr("change")

    def test_coinbase_excluded(self):
        index, _payment = _payment_chain()
        cb = index.block_at(0).coinbase
        _vout, reason = find_candidate(index, cb, 0)
        assert reason == "coinbase"

    def test_single_output_excluded(self):
        cb = coinbase(addr("s"))
        one_out = spend([(cb, 0)], [(addr("only"), 50 * COIN)])
        index = build_chain([[cb], [one_out]])
        _vout, reason = find_candidate(index, one_out, 1)
        assert reason == "too_few_outputs"

    def test_self_change_excluded(self):
        cb = coinbase(addr("selfer"))
        tx = spend(
            [(cb, 0)],
            [(addr("someone"), 30 * COIN), (addr("selfer"), 20 * COIN)],
        )
        index = build_chain([[cb], [tx]])
        _vout, reason = find_candidate(index, tx, 1)
        assert reason == "self_change"

    def test_two_fresh_outputs_ambiguous(self):
        cb = coinbase(addr("amb"))
        tx = spend(
            [(cb, 0)],
            [(addr("fresh1"), 30 * COIN), (addr("fresh2"), 20 * COIN)],
        )
        index = build_chain([[cb], [tx]])
        _vout, reason = find_candidate(index, tx, 1)
        assert reason == "ambiguous"

    def test_no_fresh_output(self):
        # Both outputs previously seen.
        cb = coinbase(addr("nf"))
        warm1 = coinbase(addr("w1"))
        warm2 = coinbase(addr("w2"))
        seed1 = spend([(warm1, 0)], [(addr("seen1"), 50 * COIN)])
        seed2 = spend([(warm2, 0)], [(addr("seen2"), 50 * COIN)])
        tx = spend(
            [(cb, 0)],
            [(addr("seen1"), 30 * COIN), (addr("seen2"), 20 * COIN)],
        )
        index = build_chain([[cb, warm1, warm2], [seed1, seed2], [tx]])
        _vout, reason = find_candidate(index, tx, 2)
        assert reason == "no_fresh_output"

    def test_same_block_appearance_counts_as_seen(self):
        """An address first paid earlier in the same block is not fresh."""
        cb1 = coinbase(addr("sb1"))
        cb2 = coinbase(addr("sb2"))
        first = spend([(cb1, 0)], [(addr("dup"), 50 * COIN)])
        second = spend(
            [(cb2, 0)],
            [(addr("dup"), 30 * COIN), (addr("fresh-sb"), 20 * COIN)],
        )
        index = build_chain([[cb1, cb2], [first, second]])
        vout, reason = find_candidate(index, second, 1)
        assert reason == "ok"
        assert second.outputs[vout].address == addr("fresh-sb")


class TestRefinements:
    def test_later_input_voids_with_wait(self):
        """Change address reused later -> not labeled under a wait."""
        cb = coinbase(addr("payer2"))
        warm = coinbase(addr("mw"))
        warmb = coinbase(addr("mwb"))
        warmup = spend([(warm, 0)], [(addr("m2"), 50 * COIN)])
        warmup2 = spend([(warmb, 0)], [(addr("m2"), 50 * COIN)])
        payment = spend(
            [(cb, 0)],
            [(addr("m2"), 30 * COIN), (addr("c2"), 20 * COIN)],
        )
        refill = coinbase(addr("rando"))
        # c2 receives again one block later (within any wait window).
        reuse = spend([(refill, 0)], [(addr("c2"), 50 * COIN)])
        index = build_chain(
            [[cb, warm, warmb, refill], [warmup], [warmup2], [payment], [reuse]]
        )
        h2 = Heuristic2(index, Heuristic2Config.refined())
        label, reason = h2.identify_change(payment)
        assert label is None
        assert reason == "wait_voided"
        # Without the wait (naive), the label sticks.
        naive = Heuristic2(index, Heuristic2Config.naive())
        label, reason = naive.identify_change(payment)
        assert label is not None

    def test_dice_exception_excuses_dice_input(self):
        cb = coinbase(addr("payer3"))
        warm = coinbase(addr("mw3"))
        warmb = coinbase(addr("mw3b"))
        warmup = spend([(warm, 0)], [(addr("m3"), 50 * COIN)])
        warmup2 = spend([(warmb, 0)], [(addr("m3"), 50 * COIN)])
        payment = spend(
            [(cb, 0)],
            [(addr("m3"), 30 * COIN), (addr("c3"), 20 * COIN)],
        )
        # The dice game pays c3 back (inputs solely from the dice addr).
        dice_fund = coinbase(addr("dice"))
        dice_payout = spend([(dice_fund, 0)], [(addr("c3"), 2 * COIN)])
        index = build_chain(
            [[cb, warm, warmb, dice_fund], [warmup], [warmup2], [payment],
             [dice_payout]]
        )
        dice = frozenset({addr("dice")})
        with_exception = Heuristic2(
            index, Heuristic2Config.refined(), dice_addresses=dice
        )
        label, reason = with_exception.identify_change(payment)
        assert label is not None and label.address == addr("c3")
        without = Heuristic2(
            index,
            Heuristic2Config(dice_exception=False),
        )
        label, reason = without.identify_change(payment)
        assert label is None

    def test_reused_change_rejection(self):
        """If another output received exactly one prior input recently,
        the whole transaction is skipped."""
        cb = coinbase(addr("payer4"))
        warm = coinbase(addr("mw4"))
        # m4 is paid ONCE before (prior == 1 at payment time).
        warmup = spend([(warm, 0)], [(addr("m4"), 50 * COIN)])
        payment = spend(
            [(cb, 0)],
            [(addr("m4"), 30 * COIN), (addr("c4"), 20 * COIN)],
        )
        index = build_chain([[cb, warm], [warmup], [payment]])
        strict = Heuristic2(index, Heuristic2Config.refined())
        label, reason = strict.identify_change(payment)
        assert label is None
        assert reason == "reused_change"
        relaxed = Heuristic2(
            index, Heuristic2Config(reject_reused_change=False, wait_seconds=None)
        )
        label, _reason = relaxed.identify_change(payment)
        assert label is not None

    def test_reused_change_rejection_respects_window(self):
        """The prior single receive far in the past does not veto."""
        cb = coinbase(addr("payer5"))
        warm = coinbase(addr("mw5"))
        warmup = spend([(warm, 0)], [(addr("m5"), 50 * COIN)])
        payment = spend(
            [(cb, 0)],
            [(addr("m5"), 30 * COIN), (addr("c5"), 20 * COIN)],
        )
        # Stretch time: payment happens months after the warmup, so the
        # once-seen m5 no longer vetoes under the recency window.
        filler = [[] for _ in range(40)]
        index = build_chain(
            [[cb, warm], [warmup], *filler, [payment]],
            block_interval=SECONDS_PER_DAY,
        )
        h2 = Heuristic2(index, Heuristic2Config.refined())
        label, reason = h2.identify_change(payment)
        assert label is not None
        assert reason == "ok"

    def test_prior_self_change_rejection(self):
        cb1 = coinbase(addr("sc-user"))
        # sc-user self-changes into 'hot'.
        first = spend([(cb1, 0)], [(addr("hot"), 50 * COIN)])
        selfchange = spend(
            [(first, 0)],
            [(addr("other-guy"), 10 * COIN), (addr("hot"), 40 * COIN)],
        )
        # later, someone pays 'hot' + a fresh address.
        cb2 = coinbase(addr("other-payer"))
        payment = spend(
            [(cb2, 0)],
            [(addr("hot"), 30 * COIN), (addr("c6"), 20 * COIN)],
        )
        index = build_chain([[cb1, cb2], [first], [selfchange], [payment]])
        strict = Heuristic2(index, Heuristic2Config(reject_reused_change=False))
        label, reason = strict.identify_change(payment)
        assert label is None
        assert reason == "prior_self_change"
        relaxed = Heuristic2(
            index,
            Heuristic2Config(
                reject_reused_change=False,
                reject_prior_self_change=False,
                wait_seconds=None,
            ),
        )
        label, _reason = relaxed.identify_change(payment)
        assert label is not None


class TestRun:
    def test_run_counts_reasons(self):
        index, _payment = _payment_chain()
        result = Heuristic2(index, Heuristic2Config.refined()).run()
        assert len(result.labels) == 1
        assert result.labels[0].address == addr("change")

    def test_change_links_feed_clustering(self):
        index, payment = _payment_chain()
        h2 = Heuristic2(index, Heuristic2Config.refined())
        links = list(h2.iter_change_links())
        assert links == [(addr("change"), [addr("payer")])]

    def test_as_of_height_hides_future(self):
        index, payment = _payment_chain()
        h2 = Heuristic2(index, Heuristic2Config.refined())
        result = h2.run(as_of_height=1)
        assert len(result.labels) == 0


class TestConfig:
    def test_naive_has_no_refinements(self):
        config = Heuristic2Config.naive()
        assert not config.dice_exception
        assert config.wait_seconds is None
        assert not config.reject_reused_change

    def test_with_wait_days(self):
        config = Heuristic2Config.refined().with_wait_days(2)
        assert config.wait_seconds == 2 * 86_400
        assert Heuristic2Config.refined().with_wait_days(None).wait_seconds is None

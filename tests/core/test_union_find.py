"""Union-find unit + property tests."""

from hypothesis import given, strategies as st

from repro.core.union_find import UnionFind


class TestBasics:
    def test_singletons(self):
        uf = UnionFind(["a", "b", "c"])
        assert len(uf) == 3
        assert uf.component_count == 3
        assert not uf.connected("a", "b")

    def test_union_merges(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.connected("a", "b")
        assert uf.component_count == 1
        assert uf.size_of("a") == 2

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("a", "b")
        assert uf.component_count == 1
        assert uf.size_of("b") == 2

    def test_transitivity(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")
        assert uf.size_of("c") == 3

    def test_union_all(self):
        uf = UnionFind()
        root = uf.union_all(["w", "x", "y", "z"])
        assert uf.size_of(root) == 4
        assert uf.union_all([]) is None
        assert uf.union_all(["solo"]) == uf.find("solo")

    def test_find_adds_missing(self):
        uf = UnionFind()
        assert uf.find("new") == "new"
        assert "new" in uf

    def test_connected_with_unknown_items(self):
        uf = UnionFind(["a"])
        assert not uf.connected("a", "ghost")

    def test_components(self):
        uf = UnionFind(["a", "b", "c", "d"])
        uf.union("a", "b")
        components = uf.components()
        sizes = sorted(len(m) for m in components.values())
        assert sizes == [1, 1, 2]

    def test_copy_is_independent(self):
        uf = UnionFind(["a", "b"])
        clone = uf.copy()
        clone.union("a", "b")
        assert not uf.connected("a", "b")
        assert clone.connected("a", "b")


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=80
        )
    )
    def test_invariants(self, unions):
        uf = UnionFind(range(31))
        for a, b in unions:
            uf.union(a, b)
        components = uf.components()
        # Component count agrees with the incremental counter.
        assert len(components) == uf.component_count
        # Sizes sum to the universe and match size_of.
        assert sum(len(m) for m in components.values()) == 31
        for root, members in components.items():
            for member in members:
                assert uf.find(member) == root
                assert uf.size_of(member) == len(members)

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=40
        )
    )
    def test_equivalence_closure(self, unions):
        """connected() is exactly the transitive closure of the unions."""
        import networkx as nx

        uf = UnionFind(range(21))
        graph = nx.Graph()
        graph.add_nodes_from(range(21))
        for a, b in unions:
            uf.union(a, b)
            graph.add_edge(a, b)
        for component in nx.connected_components(graph):
            members = sorted(component)
            for x in members[1:]:
                assert uf.connected(members[0], x)

"""Union-find unit + property tests (generic and array-backed)."""

import numpy as np
from hypothesis import given, strategies as st

from repro.core.union_find import IntUnionFind, UnionFind


class TestBasics:
    def test_singletons(self):
        uf = UnionFind(["a", "b", "c"])
        assert len(uf) == 3
        assert uf.component_count == 3
        assert not uf.connected("a", "b")

    def test_union_merges(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.connected("a", "b")
        assert uf.component_count == 1
        assert uf.size_of("a") == 2

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("a", "b")
        assert uf.component_count == 1
        assert uf.size_of("b") == 2

    def test_transitivity(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")
        assert uf.size_of("c") == 3

    def test_union_all(self):
        uf = UnionFind()
        root = uf.union_all(["w", "x", "y", "z"])
        assert uf.size_of(root) == 4
        assert uf.union_all([]) is None
        assert uf.union_all(["solo"]) == uf.find("solo")

    def test_find_adds_missing(self):
        uf = UnionFind()
        assert uf.find("new") == "new"
        assert "new" in uf

    def test_connected_with_unknown_items(self):
        uf = UnionFind(["a"])
        assert not uf.connected("a", "ghost")

    def test_components(self):
        uf = UnionFind(["a", "b", "c", "d"])
        uf.union("a", "b")
        components = uf.components()
        sizes = sorted(len(m) for m in components.values())
        assert sizes == [1, 1, 2]

    def test_copy_is_independent(self):
        uf = UnionFind(["a", "b"])
        clone = uf.copy()
        clone.union("a", "b")
        assert not uf.connected("a", "b")
        assert clone.connected("a", "b")

    def test_find_root_never_adds(self):
        uf = UnionFind(["a"])
        assert uf.find_root("ghost") is None
        assert len(uf) == 1
        uf.union("a", "b")
        assert uf.find_root("b") == uf.find("a")

    def test_component_sizes_matches_components(self):
        uf = UnionFind(["a", "b", "c", "d"])
        uf.union("a", "b")
        uf.union("b", "c")
        sizes = uf.component_sizes()
        assert sizes == {
            root: len(members) for root, members in uf.components().items()
        }


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=80
        )
    )
    def test_invariants(self, unions):
        uf = UnionFind(range(31))
        for a, b in unions:
            uf.union(a, b)
        components = uf.components()
        # Component count agrees with the incremental counter.
        assert len(components) == uf.component_count
        # Sizes sum to the universe and match size_of.
        assert sum(len(m) for m in components.values()) == 31
        for root, members in components.items():
            for member in members:
                assert uf.find(member) == root
                assert uf.size_of(member) == len(members)

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=40
        )
    )
    def test_equivalence_closure(self, unions):
        """connected() is exactly the transitive closure of the unions."""
        import networkx as nx

        uf = UnionFind(range(21))
        graph = nx.Graph()
        graph.add_nodes_from(range(21))
        for a, b in unions:
            uf.union(a, b)
            graph.add_edge(a, b)
        for component in nx.connected_components(graph):
            members = sorted(component)
            for x in members[1:]:
                assert uf.connected(members[0], x)


class TestIntUnionFind:
    def test_basics(self):
        uf = IntUnionFind(4)
        assert len(uf) == 4
        assert uf.component_count == 4
        uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.size_of(1) == 2
        assert uf.component_count == 3
        assert 3 in uf and 4 not in uf

    def test_ensure_grows_singletons(self):
        uf = IntUnionFind()
        uf.ensure(3)
        uf.union(0, 2)
        uf.ensure(2)  # shrinking request is a no-op
        assert len(uf) == 3
        assert uf.component_count == 2

    def test_union_many(self):
        uf = IntUnionFind(5)
        root = uf.union_many([0, 1, 2, 3])
        assert uf.size_of(root) == 4
        assert uf.union_many([]) is None
        assert uf.union_many([4]) == uf.find(4)

    def test_component_accessors_agree(self):
        uf = IntUnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(4, 5)
        sizes = uf.component_sizes()
        components = uf.components()
        assert sizes == {r: len(m) for r, m in components.items()}
        assert sum(sizes.values()) == 6

    def test_checkpoint_rollback_restores_state(self):
        uf = IntUnionFind(6)
        uf.union(0, 1)
        token = uf.checkpoint()
        uf.union(2, 3)
        uf.union(0, 3)
        assert uf.connected(1, 2)
        undone = uf.rollback(token)
        assert len(undone) == 2
        assert uf.connected(0, 1)
        assert not uf.connected(2, 3)
        assert not uf.connected(1, 2)
        assert uf.component_count == 5
        assert uf.size_of(0) == 2

    def test_replay_redoes_rolled_back_unions(self):
        uf = IntUnionFind(6)
        uf.union(0, 1)
        token = uf.checkpoint()
        uf.union(2, 3)
        uf.union(0, 3)
        before = uf.component_sizes()
        undone = uf.rollback(token)
        uf.replay(undone)
        assert uf.component_sizes() == before
        assert uf.connected(1, 2)

    def test_log_prefix_rebuilds_structure(self):
        uf = IntUnionFind(8)
        for a, b in [(0, 1), (2, 3), (1, 3), (5, 6)]:
            uf.union(a, b)
        rebuilt = IntUnionFind(8)
        rebuilt.replay(uf.log_prefix(uf.checkpoint()))
        assert rebuilt.component_sizes() == uf.component_sizes()

    def test_copy_is_independent(self):
        uf = IntUnionFind(3)
        clone = uf.copy()
        clone.union(0, 1)
        assert not uf.connected(0, 1)
        assert clone.connected(0, 1)


class TestIntProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=80
        )
    )
    def test_matches_generic_union_find(self, unions):
        """The array-backed structure is the generic one, observably."""
        int_uf = IntUnionFind(31)
        generic = UnionFind(range(31))
        for a, b in unions:
            int_uf.union(a, b)
            generic.union(a, b)
        assert int_uf.component_count == generic.component_count
        for i in range(31):
            assert int_uf.size_of(i) == generic.size_of(i)
        as_sets = lambda components: {
            frozenset(m) for m in components.values()
        }
        assert as_sets(int_uf.components()) == as_sets(generic.components())

    @given(
        st.lists(
            st.lists(
                st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=12
            ),
            max_size=6,
        )
    )
    def test_rollback_is_exact_inverse(self, phases):
        """Checkpoint before each phase; rolling all phases back in LIFO
        order restores every intermediate observable state."""
        uf = IntUnionFind(21)
        snapshots = []
        tokens = []
        for phase in phases:
            snapshots.append(uf.component_sizes())
            tokens.append(uf.checkpoint())
            for a, b in phase:
                uf.union(a, b)
        for token, expected in zip(reversed(tokens), reversed(snapshots)):
            uf.rollback(token)
            assert uf.component_sizes() == expected


class TestBulkKernels:
    """Pair-mode ``union_many`` and ``find_many``: the batch entry
    points must be observably identical to their scalar loops —
    including the merge log, which downstream fold consumers drain."""

    @given(
        st.lists(
            st.tuples(st.integers(0, 25), st.integers(0, 25)), max_size=60
        )
    )
    def test_pair_mode_matches_sequential_union_loop(self, pairs):
        sequential = IntUnionFind(26)
        bulk = IntUnionFind(26)
        for a, b in pairs:
            sequential.union(a, b)
        ids_a = np.asarray([a for a, _ in pairs], dtype="<i8")
        ids_b = np.asarray([b for _, b in pairs], dtype="<i8")
        assert bulk.union_many(ids_a, ids_b) is None
        token = sequential.checkpoint()
        assert bulk.log_prefix(bulk.checkpoint()) == sequential.log_prefix(
            token
        )
        assert bulk.component_count == sequential.component_count
        assert bulk.component_sizes() == sequential.component_sizes()
        for i in range(26):
            assert bulk.find(i) == sequential.find(i)

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=30
        ),
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=30
        ),
    )
    def test_pair_mode_rollback_is_exact(self, prefix, batch):
        uf = IntUnionFind(21)
        for a, b in prefix:
            uf.union(a, b)
        before = uf.component_sizes()
        log_before = uf.log_prefix(uf.checkpoint())
        token = uf.checkpoint()
        uf.union_many(
            np.asarray([a for a, _ in batch], dtype="<i8"),
            np.asarray([b for _, b in batch], dtype="<i8"),
        )
        uf.rollback(token)
        assert uf.component_sizes() == before
        assert uf.log_prefix(uf.checkpoint()) == log_before

    def test_pair_mode_rejects_misaligned_columns(self):
        uf = IntUnionFind(4)
        try:
            uf.union_many(np.asarray([0, 1]), np.asarray([2]))
        except ValueError as err:
            assert "misaligned" in str(err)
        else:
            raise AssertionError("misaligned pair columns were accepted")

    def test_pair_mode_log_entries_are_plain_ints(self):
        """np.int64 must never leak into the merge log: entries become
        dict keys and query outputs in fold consumers."""
        uf = IntUnionFind(6)
        uf.union_many(
            np.asarray([0, 2, 0], dtype="<i8"),
            np.asarray([1, 3, 3], dtype="<i8"),
        )
        for absorbed, kept in uf.log_prefix(uf.checkpoint()):
            assert type(absorbed) is int and type(kept) is int
        assert type(uf.find(0)) is int

    @given(
        st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 40)), max_size=80
        )
    )
    def test_find_many_matches_scalar_find(self, unions):
        uf = IntUnionFind(41)
        for a, b in unions:
            uf.union(a, b)
        every_id = np.arange(41, dtype="<i8")
        roots = uf.find_many(every_id)
        assert roots.tolist() == [uf.find(i) for i in range(41)]
        # Read-only: resolving roots must not mutate the structure
        # (no path compression), so a second resolution agrees.
        assert uf.find_many(every_id).tolist() == roots.tolist()

    def test_find_many_empty_and_fresh_result(self):
        uf = IntUnionFind(3)
        assert uf.find_many(np.empty(0, dtype="<i8")).tolist() == []
        ids = np.asarray([0, 1, 2], dtype="<i8")
        roots = uf.find_many(ids)
        roots += 1  # returned array is fresh: caller may scribble on it
        assert uf.find(0) == 0


class TestMergeCursors:
    """The merge-subscriber hook differential consumers fold from."""

    def test_drain_sees_only_merges_after_registration(self):
        uf = IntUnionFind(6)
        uf.union(0, 1)
        cursor = uf.merge_cursor()
        retracted, entries = uf.drain_merges(cursor)
        assert (retracted, entries) == (0, [])
        kept = uf.union(2, 3)
        absorbed = 3 if kept == 2 else 2
        uf.union(4, 4)  # no-op unions never reach the log
        retracted, entries = uf.drain_merges(cursor)
        assert retracted == 0
        assert entries == [(absorbed, kept)]
        assert uf.drain_merges(cursor) == (0, [])

    def test_rollback_reports_retractions(self):
        uf = IntUnionFind(6)
        cursor = uf.merge_cursor()
        token = uf.checkpoint()
        uf.union(0, 1)
        uf.union(2, 3)
        _, drained = uf.drain_merges(cursor)
        assert len(drained) == 2
        uf.rollback(token)
        retracted, entries = uf.drain_merges(cursor)
        assert retracted == 2
        assert entries == []
        # A rollback that never crossed the cursor reports nothing.
        uf.union(0, 1)
        uf.drain_merges(cursor)
        uf.rollback(uf.checkpoint())
        assert uf.drain_merges(cursor) == (0, [])

    def test_balanced_bracket_redelivers_verbatim(self):
        """rollback + exact replay (the engine's time-travel bracket):
        the retracted merges come back verbatim at the head of the next
        drain, so fold-then-refold reconciliation is exact."""
        uf = IntUnionFind(8)
        cursor = uf.merge_cursor()
        token = uf.checkpoint()
        uf.union(0, 1)
        uf.union(1, 2)
        _, first = uf.drain_merges(cursor)
        suffix = uf.rollback(token)
        uf.replay(suffix)
        retracted, entries = uf.drain_merges(cursor)
        assert retracted == len(first) == 2
        assert entries == first

    def test_release_and_copy_isolation(self):
        uf = IntUnionFind(4)
        cursor = uf.merge_cursor()
        clone = uf.copy()
        clone.union(0, 1)  # clones carry no cursors
        assert uf.drain_merges(cursor) == (0, [])
        uf.release_cursor(cursor)
        token = uf.checkpoint()
        uf.union(0, 1)
        uf.rollback(token)
        assert cursor.retracted == 0  # released: rollbacks ignore it

    @given(
        st.lists(
            st.one_of(
                st.tuples(st.integers(0, 15), st.integers(0, 15)),
                st.just("drain"),
            ),
            max_size=40,
        )
    )
    def test_drains_concatenate_to_the_log(self, steps):
        """Without rollbacks, the concatenation of all drains plus the
        final pending tail is exactly the merge log since registration."""
        uf = IntUnionFind(16)
        cursor = uf.merge_cursor()
        collected = []
        for step in steps:
            if step == "drain":
                retracted, entries = uf.drain_merges(cursor)
                assert retracted == 0
                collected.extend(entries)
            else:
                uf.union(*step)
        _, tail = uf.drain_merges(cursor)
        collected.extend(tail)
        assert collected == uf.log_prefix(uf.checkpoint())

"""Incremental streaming engine: equivalence with batch + time travel.

The contract under test: for every height ``h``,
``IncrementalClusteringEngine.cluster_as_of(h)`` induces exactly the
partition and label set of ``ClusteringEngine.cluster(as_of_height=h)``
— including labels that a later receive inside the §4.2 waiting window
retroactively voids.
"""

import pytest

from repro.chain.index import ChainIndex
from repro.chain.model import COIN
from repro.core.clustering import ClusteringEngine
from repro.core.heuristic2 import Heuristic2Config
from repro.core.incremental import IncrementalClusteringEngine
from repro.simulation import scenarios

from tests.helpers import addr, build_chain, coinbase, spend


def _partition(clustering):
    return {frozenset(members) for members in clustering.clusters().values()}


def _assert_equivalent_at_every_height(index, *, h2_config=None, dice=frozenset()):
    batch = ClusteringEngine(index, h2_config=h2_config, dice_addresses=dice)
    incremental = IncrementalClusteringEngine(
        index, h2_config=h2_config, dice_addresses=dice
    )
    for height in range(index.height + 1):
        expected = batch.cluster(as_of_height=height)
        actual = incremental.cluster_as_of(height)
        assert actual.address_count == expected.address_count, height
        assert actual.cluster_count == expected.cluster_count, height
        assert actual.h2_result.labels == expected.h2_result.labels, height
        assert _partition(actual) == _partition(expected), height
        snap = incremental.snapshot(height)
        assert snap.clusters == expected.cluster_count, height
        assert snap.active_labels == len(expected.h2_result.labels), height


def _change_world():
    """One clean change label plus one voided within the wait window.

    ``v/change`` looks like one-time change at height 4 but receives a
    later payment one block (600s) later — inside the one-week wait —
    so any horizon ≥ 5 must drop the label and its union.
    """
    cb_u = coinbase(addr("u/a"))
    cb_v = coinbase(addr("v/a"))
    warm1 = coinbase(addr("w1"))
    warm2 = coinbase(addr("w2"))
    late = coinbase(addr("late"))
    seed1 = spend([(warm1, 0)], [(addr("shop"), 50 * COIN)])
    seed2 = spend([(warm2, 0)], [(addr("shop"), 50 * COIN)])
    pay_u = spend(
        [(cb_u, 0)], [(addr("shop"), 30 * COIN), (addr("u/change"), 20 * COIN)]
    )
    pay_v = spend(
        [(cb_v, 0)], [(addr("shop"), 30 * COIN), (addr("v/change"), 20 * COIN)]
    )
    reuse = spend([(late, 0)], [(addr("v/change"), 50 * COIN)])
    blocks = [
        [cb_u, cb_v, warm1, warm2, late],
        [seed1],
        [seed2],
        [pay_u],
        [pay_v],
        [reuse],
        [],
    ]
    return blocks


class TestHandCraftedEquivalence:
    def test_equivalent_at_every_height(self):
        index = build_chain(_change_world())
        _assert_equivalent_at_every_height(index)

    def test_wait_voiding_is_horizon_dependent(self):
        index = build_chain(_change_world())
        incremental = IncrementalClusteringEngine(index)
        at_labeling = incremental.cluster_as_of(4)
        assert at_labeling.same_cluster(addr("v/a"), addr("v/change"))
        after_reuse = incremental.cluster_as_of(5)
        assert not after_reuse.same_cluster(addr("v/a"), addr("v/change"))
        # The clean label survives every horizon.
        assert after_reuse.same_cluster(addr("u/a"), addr("u/change"))

    def test_dice_exception_keeps_label_alive(self):
        index = build_chain(_change_world())
        dice = frozenset({addr("late")})
        _assert_equivalent_at_every_height(index, dice=dice)
        incremental = IncrementalClusteringEngine(index, dice_addresses=dice)
        tip = incremental.cluster_as_of()
        assert tip.same_cluster(addr("v/a"), addr("v/change"))

    def test_naive_config_never_voids(self):
        index = build_chain(_change_world())
        config = Heuristic2Config.naive()
        _assert_equivalent_at_every_height(index, h2_config=config)
        incremental = IncrementalClusteringEngine(index, h2_config=config)
        tip = incremental.cluster_as_of()
        assert tip.same_cluster(addr("v/a"), addr("v/change"))


class TestSimulatedEquivalence:
    @pytest.fixture(scope="class")
    def small_world(self):
        return scenarios.micro_economy(seed=13, n_blocks=60, n_users=8)

    def test_equivalent_at_every_height(self, small_world):
        _assert_equivalent_at_every_height(small_world.index)

    def test_series_agrees_with_snapshots(self, small_world):
        incremental = IncrementalClusteringEngine(small_world.index)
        series = incremental.cluster_count_series()
        assert len(series) == small_world.index.height + 1
        for point in series:
            snap = incremental.snapshot(point.height)
            assert (
                point.clusters,
                point.h1_clusters,
                point.address_count,
                point.active_labels,
            ) == (
                snap.clusters,
                snap.h1_clusters,
                snap.address_count,
                snap.active_labels,
            )

    def test_snapshot_restores_tip_state(self, small_world):
        incremental = IncrementalClusteringEngine(small_world.index)
        before = incremental.cluster_as_of().clusters()
        incremental.snapshot(0)
        incremental.snapshot(small_world.index.height // 2)
        assert incremental.cluster_as_of().clusters() == before


class TestStreaming:
    def test_blocks_cluster_as_they_arrive(self):
        source = build_chain(_change_world())
        target = ChainIndex()
        engine = IncrementalClusteringEngine(target)
        batch = ClusteringEngine(target)
        assert engine.height == -1
        for height in range(source.height + 1):
            target.add_block(source.block_at(height))
            assert engine.height == height
            live = engine.cluster_as_of()
            expected = batch.cluster(as_of_height=height)
            assert _partition(live) == _partition(expected), height
        # Earlier horizons remain queryable after the chain has grown.
        assert not engine.cluster_as_of(1).same_cluster(
            addr("u/a"), addr("u/change")
        )

    def test_detach_stops_following(self):
        source = build_chain(_change_world())
        target = ChainIndex()
        engine = IncrementalClusteringEngine(target)
        target.add_block(source.block_at(0))
        engine.detach()
        target.add_block(source.block_at(1))
        assert engine.height == 0

    def test_out_of_order_attach_rejected(self):
        source = build_chain(_change_world())
        target = ChainIndex()
        engine = IncrementalClusteringEngine(target)
        engine.detach()
        target.add_block(source.block_at(0))
        with pytest.raises(ValueError):
            engine._observe_block(source.block_at(2))

    def test_empty_chain_tip_matches_batch(self):
        index = ChainIndex()
        engine = IncrementalClusteringEngine(index)
        empty = engine.cluster_as_of()
        batch = ClusteringEngine(index).cluster()
        assert empty.address_count == batch.address_count == 0
        assert empty.cluster_count == batch.cluster_count == 0
        assert engine.snapshot().clusters == 0
        with pytest.raises(IndexError):
            engine.cluster_as_of(0)  # explicit heights still range-checked

    def test_height_out_of_range_rejected(self):
        index = build_chain(_change_world())
        engine = IncrementalClusteringEngine(index)
        with pytest.raises(IndexError):
            engine.snapshot(index.height + 1)
        with pytest.raises(IndexError):
            engine.cluster_as_of(-1)

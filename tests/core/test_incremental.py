"""Incremental streaming engine: equivalence with batch + time travel.

The contract under test: for every height ``h``,
``IncrementalClusteringEngine.cluster_as_of(h)`` induces exactly the
partition and label set of ``ClusteringEngine.cluster(as_of_height=h)``
— including labels that a later receive inside the §4.2 waiting window
retroactively voids.
"""

import pytest

from repro.chain.index import ChainIndex
from repro.chain.model import COIN
from repro.core.clustering import ClusteringEngine
from repro.core.heuristic2 import Heuristic2Config
from repro.core.incremental import IncrementalClusteringEngine
from repro.simulation import scenarios

from tests.helpers import addr, build_chain, coinbase, spend


def _partition(clustering):
    return {frozenset(members) for members in clustering.clusters().values()}


def _assert_equivalent_at_every_height(index, *, h2_config=None, dice=frozenset()):
    batch = ClusteringEngine(index, h2_config=h2_config, dice_addresses=dice)
    incremental = IncrementalClusteringEngine(
        index, h2_config=h2_config, dice_addresses=dice
    )
    for height in range(index.height + 1):
        expected = batch.cluster(as_of_height=height)
        actual = incremental.cluster_as_of(height)
        assert actual.address_count == expected.address_count, height
        assert actual.cluster_count == expected.cluster_count, height
        assert actual.h2_result.labels == expected.h2_result.labels, height
        assert _partition(actual) == _partition(expected), height
        snap = incremental.snapshot(height)
        assert snap.clusters == expected.cluster_count, height
        assert snap.active_labels == len(expected.h2_result.labels), height


def _change_world():
    """One clean change label plus one voided within the wait window.

    ``v/change`` looks like one-time change at height 4 but receives a
    later payment one block (600s) later — inside the one-week wait —
    so any horizon ≥ 5 must drop the label and its union.
    """
    cb_u = coinbase(addr("u/a"))
    cb_v = coinbase(addr("v/a"))
    warm1 = coinbase(addr("w1"))
    warm2 = coinbase(addr("w2"))
    late = coinbase(addr("late"))
    seed1 = spend([(warm1, 0)], [(addr("shop"), 50 * COIN)])
    seed2 = spend([(warm2, 0)], [(addr("shop"), 50 * COIN)])
    pay_u = spend(
        [(cb_u, 0)], [(addr("shop"), 30 * COIN), (addr("u/change"), 20 * COIN)]
    )
    pay_v = spend(
        [(cb_v, 0)], [(addr("shop"), 30 * COIN), (addr("v/change"), 20 * COIN)]
    )
    reuse = spend([(late, 0)], [(addr("v/change"), 50 * COIN)])
    blocks = [
        [cb_u, cb_v, warm1, warm2, late],
        [seed1],
        [seed2],
        [pay_u],
        [pay_v],
        [reuse],
        [],
    ]
    return blocks


class TestHandCraftedEquivalence:
    def test_equivalent_at_every_height(self):
        index = build_chain(_change_world())
        _assert_equivalent_at_every_height(index)

    def test_wait_voiding_is_horizon_dependent(self):
        index = build_chain(_change_world())
        incremental = IncrementalClusteringEngine(index)
        at_labeling = incremental.cluster_as_of(4)
        assert at_labeling.same_cluster(addr("v/a"), addr("v/change"))
        after_reuse = incremental.cluster_as_of(5)
        assert not after_reuse.same_cluster(addr("v/a"), addr("v/change"))
        # The clean label survives every horizon.
        assert after_reuse.same_cluster(addr("u/a"), addr("u/change"))

    def test_dice_exception_keeps_label_alive(self):
        index = build_chain(_change_world())
        dice = frozenset({addr("late")})
        _assert_equivalent_at_every_height(index, dice=dice)
        incremental = IncrementalClusteringEngine(index, dice_addresses=dice)
        tip = incremental.cluster_as_of()
        assert tip.same_cluster(addr("v/a"), addr("v/change"))

    def test_naive_config_never_voids(self):
        index = build_chain(_change_world())
        config = Heuristic2Config.naive()
        _assert_equivalent_at_every_height(index, h2_config=config)
        incremental = IncrementalClusteringEngine(index, h2_config=config)
        tip = incremental.cluster_as_of()
        assert tip.same_cluster(addr("v/a"), addr("v/change"))


class TestSimulatedEquivalence:
    @pytest.fixture(scope="class")
    def small_world(self):
        return scenarios.micro_economy(seed=13, n_blocks=60, n_users=8)

    def test_equivalent_at_every_height(self, small_world):
        _assert_equivalent_at_every_height(small_world.index)

    def test_series_agrees_with_snapshots(self, small_world):
        incremental = IncrementalClusteringEngine(small_world.index)
        series = incremental.cluster_count_series()
        assert len(series) == small_world.index.height + 1
        for point in series:
            snap = incremental.snapshot(point.height)
            assert (
                point.clusters,
                point.h1_clusters,
                point.address_count,
                point.active_labels,
            ) == (
                snap.clusters,
                snap.h1_clusters,
                snap.address_count,
                snap.active_labels,
            )

    def test_snapshot_restores_tip_state(self, small_world):
        incremental = IncrementalClusteringEngine(small_world.index)
        before = incremental.cluster_as_of().clusters()
        incremental.snapshot(0)
        incremental.snapshot(small_world.index.height // 2)
        assert incremental.cluster_as_of().clusters() == before


class TestStreaming:
    def test_blocks_cluster_as_they_arrive(self):
        source = build_chain(_change_world())
        target = ChainIndex()
        engine = IncrementalClusteringEngine(target)
        batch = ClusteringEngine(target)
        assert engine.height == -1
        for height in range(source.height + 1):
            target.add_block(source.block_at(height))
            assert engine.height == height
            live = engine.cluster_as_of()
            expected = batch.cluster(as_of_height=height)
            assert _partition(live) == _partition(expected), height
        # Earlier horizons remain queryable after the chain has grown.
        assert not engine.cluster_as_of(1).same_cluster(
            addr("u/a"), addr("u/change")
        )

    def test_detach_stops_following(self):
        source = build_chain(_change_world())
        target = ChainIndex()
        engine = IncrementalClusteringEngine(target)
        target.add_block(source.block_at(0))
        engine.detach()
        target.add_block(source.block_at(1))
        assert engine.height == 0

    def test_out_of_order_attach_rejected(self):
        source = build_chain(_change_world())
        target = ChainIndex()
        engine = IncrementalClusteringEngine(target)
        engine.detach()
        target.add_block(source.block_at(0))
        with pytest.raises(ValueError):
            engine._observe_delta(source.block_delta(2))

    def test_empty_chain_tip_matches_batch(self):
        index = ChainIndex()
        engine = IncrementalClusteringEngine(index)
        empty = engine.cluster_as_of()
        batch = ClusteringEngine(index).cluster()
        assert empty.address_count == batch.address_count == 0
        assert empty.cluster_count == batch.cluster_count == 0
        assert engine.snapshot().clusters == 0
        with pytest.raises(IndexError):
            engine.cluster_as_of(0)  # explicit heights still range-checked

    def test_height_out_of_range_rejected(self):
        index = build_chain(_change_world())
        engine = IncrementalClusteringEngine(index)
        with pytest.raises(IndexError):
            engine.snapshot(index.height + 1)
        with pytest.raises(IndexError):
            engine.cluster_as_of(-1)


class TestMonotoneTimestamps:
    """The wait rule's clock must never run backwards (§4.2)."""

    def _blocks_with_backwards_time(self):
        from repro.chain.model import Block, GENESIS_PREV_HASH

        from tests.helpers import GENESIS_TIME

        block0 = Block.assemble(
            height=0,
            prev_hash=GENESIS_PREV_HASH,
            timestamp=GENESIS_TIME,
            transactions=[coinbase(addr("mono/m0"), height=0)],
        )
        block1 = Block.assemble(
            height=1,
            prev_hash=block0.hash,
            timestamp=GENESIS_TIME - 600,  # runs backwards
            transactions=[coinbase(addr("mono/m1"), height=1)],
        )
        return block0, block1

    def test_backwards_timestamp_raises_chain_error(self):
        from repro.chain.errors import ChainError, NonMonotonicTimestampError
        from repro.chain.model import Block

        from tests.helpers import GENESIS_TIME

        block0, block1 = self._blocks_with_backwards_time()
        index = ChainIndex()
        engine = IncrementalClusteringEngine(index)
        index.add_block(block0)
        with pytest.raises(NonMonotonicTimestampError, match="precedes"):
            index.add_block(block1)
        assert issubclass(NonMonotonicTimestampError, ChainError)
        # The offending block was refused by the engine, not half-applied.
        assert engine.height == 0
        # ...but the index itself ingested it (observers run after).
        assert index.height == 1
        # The engine is now permanently behind: later blocks get the
        # diagnosis, not a misleading out-of-order error.
        block2 = Block.assemble(
            height=2,
            prev_hash=block1.hash,
            timestamp=GENESIS_TIME + 600,
            transactions=[coinbase(addr("mono/m2"), height=2)],
        )
        with pytest.raises(NonMonotonicTimestampError, match="stopped"):
            index.add_block(block2)
        assert engine.height == 0

    def test_backwards_timestamp_allowed_without_wait_rule(self):
        block0, block1 = self._blocks_with_backwards_time()
        index = ChainIndex()
        engine = IncrementalClusteringEngine(
            index, h2_config=Heuristic2Config.naive()
        )
        index.add_block(block0)
        index.add_block(block1)  # no wait window, no clamp to violate
        assert engine.height == 1

    def test_later_subscribers_survive_the_refusal(self):
        block0, block1 = self._blocks_with_backwards_time()
        index = ChainIndex()
        IncrementalClusteringEngine(index)
        heights = []
        index.subscribe(lambda block: heights.append(block.height))
        index.add_block(block0)
        with pytest.raises(Exception):
            index.add_block(block1)
        assert heights == [0, 1]


class TestSnapshotMemo:
    def test_cluster_as_of_memoizes_per_height(self):
        index = build_chain(_change_world())
        engine = IncrementalClusteringEngine(index)
        first = engine.cluster_as_of(3)
        assert engine.cluster_as_of(3) is first  # memo hit, exact reuse
        tip = engine.cluster_as_of()
        assert engine.cluster_as_of(index.height) is tip
        # Memoized answers stay correct as voids land later: height 4's
        # view includes the label voided at height 5, before and after.
        at_four = engine.cluster_as_of(4)
        assert at_four.same_cluster(addr("v/a"), addr("v/change"))

    def test_memo_taken_at_tip_stays_correct_after_later_void(self):
        source = build_chain(_change_world())
        target = ChainIndex()
        engine = IncrementalClusteringEngine(target)
        for height in range(5):
            target.add_block(source.block_at(height))
        # Memoize horizon 4 while it is the tip: the v-label is live.
        at_tip = engine.cluster_as_of(4)
        assert at_tip.same_cluster(addr("v/a"), addr("v/change"))
        # Block 5 voids the label going forward...
        target.add_block(source.block_at(5))
        assert not engine.cluster_as_of(5).same_cluster(
            addr("v/a"), addr("v/change")
        )
        # ...but horizon 4's (memoized) answer is unchanged — exactly
        # the batch engine's as_of_height=4 view.
        again = engine.cluster_as_of(4)
        assert again is at_tip
        batch = ClusteringEngine(target).cluster(as_of_height=4)
        assert _partition(again) == _partition(batch)

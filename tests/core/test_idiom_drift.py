"""§6's open question, made quantitative: how does Heuristic 2 degrade
as idioms of use change (or turn adversarial)?

The paper: "our new clustering heuristic is not fully robust in the
face of changing behavior ... to completely thwart our heuristics would
require a significant effort on the part of the user."  Here we sweep
wallet change policies and confirm the predicted directions.
"""

from dataclasses import replace

from repro.core.clustering import ClusteringEngine
from repro.metrics.evaluation import pairwise_scores
from repro.simulation import scenarios
from repro.simulation.params import ChangePolicy, EconomyParams, UserParams


def _world_with_policy(policy: ChangePolicy, *, seed: int = 21):
    params = EconomyParams(
        seed=seed,
        n_blocks=150,
        n_users=12,
        user=UserParams(change_policy=policy),
        mining_pools=("Deepbit", "Slush"),
        wallet_services=("Instawallet",),
        bank_exchanges=("Mt Gox", "Bitstamp"),
        fixed_exchanges=(),
        vendors=("Silk Road",),
        gambling_sites=("Satoshi Dice",),
        misc_services=(),
        investment_schemes=(),
    )
    return scenarios.default_economy(seed=seed, params=params, with_attack=False)


def _h2_label_count(world) -> int:
    clustering = ClusteringEngine(world.index).cluster()
    return len(clustering.h2_result.labels)


class TestIdiomDrift:
    def test_all_self_change_starves_h2(self):
        """If everyone self-changes, condition 3 kills every label."""
        hygienic = _world_with_policy(
            ChangePolicy(fresh=0.95, self_change=0.05, reuse=0.0, recent=0.0)
        )
        adversarial = _world_with_policy(
            ChangePolicy(fresh=0.0, self_change=0.95, reuse=0.0, recent=0.0)
        )
        assert _h2_label_count(adversarial) < _h2_label_count(hygienic) * 0.5

    def test_fresh_change_is_precise(self):
        """The era's default client behaviour is H2's best case: with
        everyone using fresh one-time change, the labels that do fire
        are essentially never wrong."""
        world = _world_with_policy(
            ChangePolicy(fresh=1.0, self_change=0.0, reuse=0.0, recent=0.0)
        )
        clustering = ClusteringEngine(world.index).cluster()
        gt = world.ground_truth
        index = world.index
        wrong = 0
        for label in clustering.h2_result.labels:
            inputs = index.input_addresses(index.tx(label.txid))
            if inputs and gt.owner_of(label.address) != gt.owner_of(inputs[0]):
                wrong += 1
        assert wrong == 0

    def test_sloppy_reuse_hurts_precision_not_just_coverage(self):
        """Heavy change-address reuse creates *wrong* links, not merely
        fewer links — the dangerous direction the paper worried about."""
        clean = _world_with_policy(
            ChangePolicy(fresh=0.95, self_change=0.05, reuse=0.0, recent=0.0),
            seed=22,
        )
        sloppy = _world_with_policy(
            ChangePolicy(fresh=0.55, self_change=0.05, reuse=0.2, recent=0.2),
            seed=22,
        )
        clean_scores = pairwise_scores(
            ClusteringEngine(clean.index).cluster(), clean.ground_truth
        )
        sloppy_scores = pairwise_scores(
            ClusteringEngine(sloppy.index).cluster(), sloppy.ground_truth
        )
        assert sloppy_scores.precision <= clean_scores.precision

    def test_heuristic1_unaffected_by_change_policy(self):
        """H1 exploits a protocol property, not an idiom: its precision
        is policy-independent (always 1.0 absent shared wallets)."""
        for policy in (
            ChangePolicy(fresh=1.0, self_change=0.0, reuse=0.0, recent=0.0),
            ChangePolicy(fresh=0.0, self_change=1.0, reuse=0.0, recent=0.0),
        ):
            world = _world_with_policy(policy, seed=23)
            scores = pairwise_scores(
                ClusteringEngine(world.index).cluster_h1_only(),
                world.ground_truth,
            )
            assert scores.precision == 1.0

"""Temporal false-positive estimation: synthetic cases + ladder shape."""

from repro.chain.model import COIN
from repro.core.fp_estimation import FalsePositiveEstimator
from repro.core.heuristic2 import SECONDS_PER_DAY
from repro.pipeline import AnalystView

from tests.helpers import addr, build_chain, coinbase, spend


def _fp_world():
    """One good change label and one that is later invalidated.

    tx_good's change is never reused.  tx_bad's "change" receives a
    later payment (the temporal FP signature).
    """
    cb1 = coinbase(addr("u1"))
    cb2 = coinbase(addr("u2"))
    warm1 = coinbase(addr("wa"))
    warm1b = coinbase(addr("wab"))
    warm2 = coinbase(addr("wb"))
    warm2b = coinbase(addr("wbb"))
    seed1 = spend([(warm1, 0)], [(addr("shop1"), 50 * COIN)])
    seed1b = spend([(warm1b, 0)], [(addr("shop1"), 50 * COIN)])
    seed2 = spend([(warm2, 0)], [(addr("shop2"), 50 * COIN)])
    seed2b = spend([(warm2b, 0)], [(addr("shop2"), 50 * COIN)])
    tx_good = spend(
        [(cb1, 0)], [(addr("shop1"), 30 * COIN), (addr("good-change"), 20 * COIN)]
    )
    tx_bad = spend(
        [(cb2, 0)], [(addr("shop2"), 30 * COIN), (addr("bad-change"), 20 * COIN)]
    )
    late = coinbase(addr("late-payer"))
    reuse = spend([(late, 0)], [(addr("bad-change"), 50 * COIN)])
    index = build_chain(
        [
            [cb1, cb2, warm1, warm1b, warm2, warm2b, late],
            [seed1, seed2],
            [seed1b, seed2b],
            [tx_good, tx_bad],
            [reuse],
        ]
    )
    return index


class TestSyntheticEstimates:
    def test_naive_counts_reuse_as_fp(self):
        estimator = FalsePositiveEstimator(_fp_world())
        estimate = estimator.estimate(name="naive")
        assert estimate.labeled == 2
        assert estimate.estimated_false_positives == 1
        assert 0.49 < estimate.estimated_rate < 0.51

    def test_wait_removes_quickly_reused_labels(self):
        estimator = FalsePositiveEstimator(_fp_world())
        estimate = estimator.estimate(
            name="wait", wait_seconds=SECONDS_PER_DAY
        )
        # The bad candidate is reused within a day: never labeled.
        assert estimate.labeled == 1
        assert estimate.estimated_false_positives == 0

    def test_dice_exception_excuses_dice_only_reuse(self):
        index = _fp_world()
        # Pretend the late payer is a dice game.
        estimator = FalsePositiveEstimator(
            index, dice_addresses=frozenset({addr("late-payer")})
        )
        naive = estimator.estimate(name="naive")
        excused = estimator.estimate(name="dice", dice_exception=True)
        assert naive.estimated_false_positives == 1
        assert excused.estimated_false_positives == 0

    def test_candidates_cached(self):
        estimator = FalsePositiveEstimator(_fp_world())
        assert estimator.candidates() is estimator.candidates()

    def test_dice_verdicts_memoized_across_rungs(self):
        estimator = FalsePositiveEstimator(
            _fp_world(), dice_addresses=frozenset({addr("late-payer")})
        )
        estimator.estimate(name="dice", dice_exception=True)
        first = dict(estimator._dice_verdicts)
        assert first  # the reuse tx's senders were resolved once...
        estimator.estimate(name="dice-again", dice_exception=True)
        assert estimator._dice_verdicts == first  # ...and only once


class TestLadderOnSimulatedWorld:
    def test_ladder_shape(self, default_world):
        view = AnalystView.build(default_world)
        ladder = view.fp_estimator().refinement_ladder()
        names = [e.name for e in ladder]
        assert names == ["naive", "dice-exception", "wait-one-day", "wait-one-week"]
        naive, dice, day, week = ladder
        # The paper's monotone ladder: 13% → 1% → 0.28% → 0.17%.
        assert naive.estimated_rate > dice.estimated_rate
        assert dice.estimated_rate > day.estimated_rate
        assert day.estimated_rate >= week.estimated_rate
        # Waiting shrinks the labeled set, never grows it.
        assert naive.labeled >= day.labeled >= week.labeled

    def test_ground_truth_rates_present(self, default_world):
        view = AnalystView.build(default_world)
        ladder = view.fp_estimator().refinement_ladder()
        for estimate in ladder:
            assert estimate.true_rate is not None
            assert 0.0 <= estimate.true_rate <= 1.0

"""Combined clustering engine behaviour."""

from repro.chain.model import COIN
from repro.core.clustering import ClusteringEngine
from repro.core.heuristic2 import Heuristic2Config

from tests.helpers import addr, build_chain, coinbase, spend


def _world():
    """payer's two coinbases co-spend (H1) and the change is fresh (H2)."""
    cb1 = coinbase(addr("p/a"))
    cb2 = coinbase(addr("p/b"))
    warm = coinbase(addr("w"))
    warm2 = coinbase(addr("w2"))
    seed = spend([(warm, 0)], [(addr("mrk"), 50 * COIN)])
    seed2 = spend([(warm2, 0)], [(addr("mrk"), 50 * COIN)])
    payment = spend(
        [(cb1, 0), (cb2, 0)],
        [(addr("mrk"), 70 * COIN), (addr("p/change"), 30 * COIN)],
    )
    return build_chain([[cb1, cb2, warm, warm2], [seed], [seed2], [payment]])


class TestEngine:
    def test_h1_only_links_inputs_not_change(self):
        engine = ClusteringEngine(_world())
        clustering = engine.cluster_h1_only()
        assert clustering.same_cluster(addr("p/a"), addr("p/b"))
        assert not clustering.same_cluster(addr("p/a"), addr("p/change"))
        assert clustering.heuristics == "h1"

    def test_h2_adds_change_link(self):
        engine = ClusteringEngine(_world())
        clustering = engine.cluster()
        assert clustering.same_cluster(addr("p/a"), addr("p/change"))
        assert not clustering.same_cluster(addr("p/a"), addr("mrk"))
        assert clustering.heuristics == "h1+h2"
        assert len(clustering.h2_result.labels) == 1

    def test_cluster_count_decreases_with_h2(self):
        engine = ClusteringEngine(_world())
        h1 = engine.cluster_h1_only()
        both = engine.cluster()
        assert both.cluster_count == h1.cluster_count - 1

    def test_largest_clusters_sorted(self):
        clustering = ClusteringEngine(_world()).cluster()
        sizes = [size for _root, size in clustering.largest_clusters(3)]
        assert sizes == sorted(sizes, reverse=True)

    def test_largest_clusters_agree_with_materialized_components(self):
        clustering = ClusteringEngine(_world()).cluster()
        by_size = {
            root: len(members) for root, members in clustering.clusters().items()
        }
        assert dict(clustering.largest_clusters(len(by_size))) == by_size
        assert clustering.component_sizes() == by_size

    def test_lookup_of_unseen_address_is_non_mutating(self):
        clustering = ClusteringEngine(_world()).cluster()
        before = clustering.address_count
        assert clustering.cluster_of(addr("ghost")) is None
        assert not clustering.same_cluster(addr("p/a"), addr("ghost"))
        assert addr("ghost") not in clustering.uf
        assert clustering.address_count == before

    def test_effective_cluster_count_collapses_same_tag(self):
        clustering = ClusteringEngine(_world()).cluster_h1_only()
        # p/a+p/b are one cluster; p/change is separate under H1.  A tag
        # on both collapses them for counting purposes.
        tags = {addr("p/a"): "Payer", addr("p/change"): "Payer"}
        assert (
            clustering.effective_cluster_count(tags)
            == clustering.cluster_count - 1
        )

    def test_naive_vs_refined_label_counts(self, default_world):
        index = default_world.index
        naive = ClusteringEngine(
            index, h2_config=Heuristic2Config.naive()
        ).cluster()
        refined = ClusteringEngine(index).cluster()
        # Refinements only remove labels.
        assert len(refined.h2_result.labels) <= len(naive.h2_result.labels)

"""Hand-crafted chain construction utilities for tests.

Tests of the heuristics need precise control over transaction shape
(which output is fresh, who self-changes, what arrives later), so these
helpers build raw transactions and blocks directly, bypassing the
economy.  Signatures are not validated by the index, which keeps the
fixtures compact.
"""

from __future__ import annotations

from repro.chain import script
from repro.chain.crypto import KeyPair
from repro.chain.index import ChainIndex
from repro.chain.model import (
    Block,
    COIN,
    COINBASE_TXID,
    COINBASE_VOUT,
    GENESIS_PREV_HASH,
    OutPoint,
    Transaction,
    TxIn,
    TxOut,
)

GENESIS_TIME = 1_293_840_000
BLOCK_INTERVAL = 600


def addr(label: str) -> str:
    """A deterministic address for a test label."""
    return KeyPair.from_seed(f"test/{label}").address


def coinbase(address: str, value: int = 50 * COIN, *, height: int = 0) -> Transaction:
    """A coinbase transaction paying one address."""
    return Transaction(
        inputs=(
            TxIn(
                prevout=OutPoint(COINBASE_TXID, COINBASE_VOUT),
                script_sig=script.coinbase_script(height),
            ),
        ),
        outputs=(
            TxOut(value=value, script_pubkey=script.p2pkh_script_for_address(address)),
        ),
    )


def spend(
    sources: list[tuple[Transaction, int]],
    outputs: list[tuple[str, int]],
) -> Transaction:
    """A transaction spending ``(tx, vout)`` sources into ``(addr, value)``
    outputs.  Script sigs are dummies (the index does not verify)."""
    return Transaction(
        inputs=tuple(
            TxIn(prevout=OutPoint(tx.txid, vout), script_sig=b"\x01\xaa\x01\xbb")
            for tx, vout in sources
        ),
        outputs=tuple(
            TxOut(
                value=value,
                script_pubkey=script.p2pkh_script_for_address(address),
            )
            for address, value in outputs
        ),
    )


def build_chain(
    tx_blocks: list[list[Transaction]],
    *,
    start_time: int = GENESIS_TIME,
    block_interval: int = BLOCK_INTERVAL,
    miner_label: str = "miner",
) -> ChainIndex:
    """Index a chain whose block ``i`` contains ``tx_blocks[i]``.

    Each block automatically gets its own coinbase (to a per-height
    miner address) so the structure is always valid.
    """
    index = ChainIndex()
    prev = GENESIS_PREV_HASH
    for height, txs in enumerate(tx_blocks):
        cb = coinbase(addr(f"{miner_label}/{height}"), height=height)
        block = Block.assemble(
            height=height,
            prev_hash=prev,
            timestamp=start_time + height * block_interval,
            transactions=[cb, *txs],
        )
        index.add_block(block)
        prev = block.hash
    return index

"""P2P gossip substrate: propagation, mining, topologies."""

import pytest

from repro.network.node import Message, P2PNetwork
from repro.network.simulator import EventScheduler
from repro.network.topology import random_topology, scale_free_topology


class TestScheduler:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(2.0, lambda: seen.append("late"))
        scheduler.schedule(1.0, lambda: seen.append("early"))
        scheduler.run_until(3.0)
        assert seen == ["early", "late"]
        assert scheduler.now == 3.0

    def test_ties_break_deterministically(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(1.0, lambda: seen.append("first"))
        scheduler.schedule(1.0, lambda: seen.append("second"))
        scheduler.run_to_completion()
        assert seen == ["first", "second"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule(-1, lambda: None)


class TestGossip:
    def _line_network(self):
        network = P2PNetwork(seed=1)
        for _ in range(4):
            network.add_node()
        network.link(0, 1, latency=0.1)
        network.link(1, 2, latency=0.1)
        network.link(2, 3, latency=0.1)
        return network

    def test_tx_floods_whole_network(self):
        network = self._line_network()
        network.broadcast_tx(0, b"tx-1")
        network.run(10)
        assert network.log.coverage(b"tx-1", 4) == 1.0
        times = network.log.arrival_times(b"tx-1")
        # Line topology: arrival times grow with distance.
        assert times == sorted(times)
        assert times[-1] == pytest.approx(0.3)

    def test_first_seen_prevents_loops(self):
        network = self._line_network()
        network.link(0, 3, latency=0.05)  # make a cycle
        network.broadcast_tx(0, b"tx-cycle")
        network.run(10)
        # Each node saw the item exactly once in the log.
        seen_nodes = [n for (iid, n) in network.log.first_seen if iid == b"tx-cycle"]
        assert sorted(seen_nodes) == [0, 1, 2, 3]

    def test_self_link_rejected(self):
        network = self._line_network()
        with pytest.raises(ValueError):
            network.nodes[0].connect(0, 0.1)


class TestMining:
    def test_block_confirms_mempool_txs(self):
        network = P2PNetwork(seed=2)
        network.add_node()               # 0: user
        miner = network.add_node(miner=True)  # 1
        network.link(0, 1, latency=0.05)
        network.broadcast_tx(0, b"tx-a")
        network.run(1)
        assert b"tx-a" in miner.mempool
        included = miner.find_block(b"block-1")
        assert included == [b"tx-a"]
        network.run(1)
        # The block flooded back to the user, clearing their mempool.
        assert b"tx-a" not in network.nodes[0].mempool

    def test_time_to_coverage(self):
        network = P2PNetwork(seed=3)
        for _ in range(3):
            network.add_node()
        network.link(0, 1, latency=0.2)
        network.link(1, 2, latency=0.2)
        network.broadcast_tx(0, b"item")
        network.run(5)
        t50 = network.log.time_to_coverage(b"item", 0.5, 3)
        t100 = network.log.time_to_coverage(b"item", 1.0, 3)
        assert t50 is not None and t100 is not None
        assert t50 <= t100


class TestTopologies:
    def test_random_topology_connected(self):
        network = random_topology(30, degree=4, n_miners=3, seed=7)
        network.broadcast_tx(0, b"flood")
        network.run(30)
        assert network.log.coverage(b"flood", 30) == 1.0
        assert len(network.miners()) == 3

    def test_scale_free_topology(self):
        network = scale_free_topology(30, attachment=2, seed=7)
        network.broadcast_tx(5, b"flood2")
        network.run(30)
        assert network.log.coverage(b"flood2", 30) == 1.0

    def test_determinism(self):
        net_a = random_topology(20, seed=9)
        net_b = random_topology(20, seed=9)
        net_a.broadcast_tx(0, b"d")
        net_b.broadcast_tx(0, b"d")
        net_a.run(20)
        net_b.run(20)
        assert net_a.log.arrival_times(b"d") == net_b.log.arrival_times(b"d")

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            random_topology(1)
        with pytest.raises(ValueError):
            scale_free_topology(3, attachment=4)

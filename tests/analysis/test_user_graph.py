"""Condensed user graph construction."""

from repro.analysis.user_graph import (
    build_user_graph,
    flows_between,
    graph_stats,
    top_counterparties,
)
from repro.chain.model import COIN
from repro.core.clustering import ClusteringEngine

from tests.helpers import addr, build_chain, coinbase, spend


def _graph():
    cb1 = coinbase(addr("u/a"))
    cb2 = coinbase(addr("u/b"))
    joint = spend(
        [(cb1, 0), (cb2, 0)],
        [(addr("shop"), 70 * COIN), (addr("u/extra"), 30 * COIN)],
    )
    onward = spend([(joint, 0)], [(addr("shop2"), 70 * COIN)])
    index = build_chain([[cb1, cb2], [joint], [onward]])
    clustering = ClusteringEngine(index).cluster_h1_only()
    names = {}
    user_root = clustering.uf.find(addr("u/a"))
    shop_root = clustering.uf.find(addr("shop"))
    names[user_root] = "User"
    names[shop_root] = "Shop"
    graph = build_user_graph(index, clustering, name_of_cluster=names.get)
    return graph, clustering


class TestGraph:
    def test_edges_aggregate_value(self):
        graph, clustering = _graph()
        user_root = clustering.uf.find(addr("u/a"))
        shop_root = clustering.uf.find(addr("shop"))
        assert graph.has_edge(user_root, shop_root)
        assert graph.edges[user_root, shop_root]["value"] == 70 * COIN

    def test_no_self_edges(self):
        graph, _clustering = _graph()
        assert all(u != v for u, v in graph.edges())

    def test_stats(self):
        graph, _clustering = _graph()
        stats = graph_stats(graph)
        assert stats.nodes == graph.number_of_nodes()
        assert stats.named_nodes == 2
        assert stats.total_flow > 0

    def test_flows_between_named(self):
        graph, _clustering = _graph()
        flows = flows_between(graph, "User", "Shop")
        assert len(flows) == 1
        assert flows[0][2] == 70 * COIN
        assert flows_between(graph, "Shop", "User") == []

    def test_top_counterparties(self):
        graph, _clustering = _graph()
        top = top_counterparties(graph, "User", direction="out")
        assert top
        assert top[0][0] == "Shop"

    def test_bad_direction_rejected(self):
        graph, _clustering = _graph()
        import pytest

        with pytest.raises(ValueError):
            top_counterparties(graph, "User", direction="sideways")


class TestOnWorld:
    def test_graph_covers_world(self, default_view):
        graph = default_view.user_graph()
        stats = graph_stats(graph)
        assert stats.nodes > 100
        assert stats.edges > 100
        assert stats.named_nodes > 10

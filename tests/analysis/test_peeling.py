"""Peeling-chain tracking on synthetic chains and the silkroad world."""

from repro.analysis.peeling import (
    PeelingTracker,
    TERMINATED_MAX_HOPS,
    TERMINATED_UNSPENT,
    summarize_peels_by_entity,
)
from repro.chain.model import COIN

from tests.helpers import addr, build_chain, coinbase, spend


def _manual_peel_chain(n_hops=5):
    """A clean peeling chain: each hop peels 1 BTC to a fresh recipient
    and sends the remainder to fresh change."""
    cb = coinbase(addr("chain-start"), value=50 * COIN)
    blocks = [[cb]]
    current = cb
    current_vout = 0
    remaining = 50 * COIN
    peel_addresses = []
    for hop in range(n_hops):
        peel_address = addr(f"peel-{hop}")
        change_address = addr(f"link-{hop}")
        peel_addresses.append(peel_address)
        remaining -= COIN
        tx = spend(
            [(current, current_vout)],
            [(peel_address, COIN), (change_address, remaining)],
        )
        # peel first, change second -> change vout is 1
        blocks.append([tx])
        current, current_vout = tx, 1
    return build_chain(blocks), cb, peel_addresses


class TestFollow:
    def test_follows_whole_chain(self):
        index, start, peels = _manual_peel_chain(6)
        tracker = PeelingTracker(index)
        chain = tracker.follow_address(addr("chain-start"))
        assert chain.hop_count == 6
        assert chain.terminated == TERMINATED_UNSPENT
        assert [p.address for p in chain.peels] == peels
        assert chain.total_peeled() == 6 * COIN

    def test_max_hops_respected(self):
        index, _start, _peels = _manual_peel_chain(6)
        chain = PeelingTracker(index).follow_address(
            addr("chain-start"), max_hops=3
        )
        assert chain.hop_count == 3
        assert chain.terminated == TERMINATED_MAX_HOPS

    def test_remaining_value_decreases(self):
        index, _start, _peels = _manual_peel_chain(5)
        chain = PeelingTracker(index).follow_address(addr("chain-start"))
        values = [h.remaining_value for h in chain.hops]
        assert values == sorted(values, reverse=True)

    def test_sweep_followed_through(self):
        """A 1-output sweep moves the whole remainder to the next hop."""
        cb = coinbase(addr("sw-start"))
        sweep = spend([(cb, 0)], [(addr("sw-mid"), 50 * COIN)])
        peel = spend(
            [(sweep, 0)],
            [(addr("sw-peel"), COIN), (addr("sw-change"), 49 * COIN)],
        )
        index = build_chain([[cb], [sweep], [peel]])
        chain = PeelingTracker(index).follow_address(addr("sw-start"))
        assert chain.hops[0].kind == "sweep"
        assert chain.hop_count == 2
        assert chain.peels[0].address == addr("sw-peel")

    def test_stop_at_named_exit(self):
        cb = coinbase(addr("ex-start"))
        sweep = spend([(cb, 0)], [(addr("exchange-deposit"), 50 * COIN)])
        index = build_chain([[cb], [sweep]])
        tracker = PeelingTracker(index)
        record = index.address(addr("ex-start")).receives[0]
        from repro.chain.model import OutPoint

        chain = tracker.follow(
            OutPoint(record.txid, record.vout),
            stop_at=lambda a: a == addr("exchange-deposit"),
        )
        assert chain.hop_count == 1
        assert chain.hops[0].kind == "exit"
        assert chain.peels[0].value == 50 * COIN

    def test_value_fallback_when_both_outputs_fresh(self):
        """Both outputs fresh (ambiguous for H2) but peel-shaped: the
        big output is followed."""
        index, _start, peels = _manual_peel_chain(3)
        strict = PeelingTracker(index, value_peel_threshold=None)
        chain = strict.follow_address(addr("chain-start"))
        # Strict H2 can't label hop 1 (both outputs fresh) -> stops.
        assert chain.terminated == "no-change-identified"
        relaxed = PeelingTracker(index)  # default threshold 0.85
        chain2 = relaxed.follow_address(addr("chain-start"))
        assert chain2.hop_count == 3


class TestSummaries:
    def test_summarize_by_entity(self):
        index, _start, peels = _manual_peel_chain(4)
        chain = PeelingTracker(index).follow_address(addr("chain-start"))
        names = {peels[0]: "Mt Gox", peels[1]: "Mt Gox", peels[2]: "Bitstamp"}
        summary = summarize_peels_by_entity(chain, lambda a: names.get(a))
        assert summary["Mt Gox"].peel_count == 2
        assert summary["Mt Gox"].total_value == 2 * COIN
        assert summary["Bitstamp"].peel_count == 1
        assert len(summary) == 2


class TestOnSilkroadWorld:
    def test_all_three_chains_track_to_depth(self, silkroad_view):
        hoard = silkroad_view.world.extras["hoard"]
        tracker = silkroad_view.peeling_tracker()
        for head in hoard.state.chain_start_addresses:
            chain = tracker.follow_address(head, max_hops=60)
            assert chain.hop_count >= 50

    def test_named_peels_match_ground_truth(self, silkroad_view):
        """Every peel the analyst names must be named correctly."""
        gt = silkroad_view.world.ground_truth
        hoard = silkroad_view.world.extras["hoard"]
        tracker = silkroad_view.peeling_tracker()
        naming = silkroad_view.naming
        wrong = named = 0
        for head in hoard.state.chain_start_addresses:
            chain = tracker.follow_address(head, max_hops=60)
            for peel in chain.peels:
                name = naming.name_of_address(peel.address)
                if name is None:
                    continue
                named += 1
                if gt.owner_of(peel.address) != name:
                    wrong += 1
        assert named > 10
        # The paper tolerated a small residual false-positive rate; a
        # mislabeled peel recipient occurs when a buyer's reused change
        # welds a service sale address into their cluster.
        assert wrong <= named * 0.10

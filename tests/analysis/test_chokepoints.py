"""Chokepoint centrality on synthetic graphs and simulated worlds."""

import networkx as nx
import pytest

from repro.analysis.chokepoints import chokepoint_report, entity_exposure


def _graph():
    graph = nx.DiGraph()
    graph.add_node("u1", name=None, size=5)
    graph.add_node("u2", name=None, size=5)
    graph.add_node("gox", name="Mt Gox", size=100)
    graph.add_node("shop", name="Shop", size=10)
    graph.add_edge("u1", "gox", value=100, tx_count=2)
    graph.add_edge("u2", "shop", value=50, tx_count=1)
    graph.add_edge("shop", "gox", value=40, tx_count=1)
    graph.add_edge("gox", "u1", value=30, tx_count=1)
    return graph


class TestReport:
    def test_flow_accounting(self):
        report = chokepoint_report(_graph(), {"Mt Gox"})
        # flow into named entities: 100 (u1->gox) + 50 (u2->shop) + 40.
        assert report.total_named_flow == 190
        assert report.flow_into_chokepoints == 140
        assert report.flow_out_of_chokepoints == 30
        assert report.direct_counterparties == 2
        assert report.inflow_share == pytest.approx(140 / 190)

    def test_reachability(self):
        report = chokepoint_report(_graph(), {"Mt Gox"})
        # u1, shop (1 hop), u2 (2 hops), gox itself: all 4 nodes.
        assert report.reachable_within_3_hops == 1.0

    def test_no_chokepoints(self):
        report = chokepoint_report(_graph(), {"Nonexistent"})
        assert report.flow_into_chokepoints == 0
        assert report.inflow_share == 0.0

    def test_empty_graph(self):
        report = chokepoint_report(nx.DiGraph(), {"Mt Gox"})
        assert report.total_named_flow == 0
        assert report.reachable_within_3_hops == 0.0


class TestExposure:
    def test_exposure_fraction(self):
        exposure = entity_exposure(_graph(), "Shop", {"Mt Gox"})
        assert exposure == 1.0  # all of Shop's outflow goes to Mt Gox

    def test_zero_outflow(self):
        graph = _graph()
        graph.remove_edge("shop", "gox")
        assert entity_exposure(graph, "Shop", {"Mt Gox"}) == 0.0


class TestOnWorld:
    def test_exchanges_are_chokepoints(self, default_view):
        """§5's claim on the simulated economy: a large share of named
        flow funnels through exchanges, and most clusters sit within a
        few hops of one."""
        graph = default_view.user_graph()
        exchanges = default_view.entities_in_category("exchanges")
        report = chokepoint_report(graph, exchanges)
        assert report.inflow_share > 0.15
        assert report.reachable_within_3_hops > 0.3
        assert report.direct_counterparties > 20

"""Theft movement classification on synthetic flows."""

from repro.analysis.thefts import TheftTracker
from repro.chain.model import COIN

from tests.helpers import addr, build_chain, coinbase, spend


def _theft_base():
    """A theft: victim's coins swept to two thief addresses."""
    v1 = coinbase(addr("victim1"))
    v2 = coinbase(addr("victim2"))
    theft1 = spend([(v1, 0)], [(addr("loot1"), 50 * COIN)])
    theft2 = spend([(v2, 0)], [(addr("loot2"), 50 * COIN)])
    return v1, v2, theft1, theft2


class TestClassification:
    def test_aggregation_detected(self):
        v1, v2, theft1, theft2 = _theft_base()
        agg = spend(
            [(theft1, 0), (theft2, 0)], [(addr("agg"), 100 * COIN)]
        )
        index = build_chain([[v1, v2], [theft1, theft2], [agg]])
        analysis = TheftTracker(index).track([theft1.txid, theft2.txid])
        assert analysis.movement == "A"
        assert analysis.dormant_value == 100 * COIN

    def test_folding_detected(self):
        v1, v2, theft1, theft2 = _theft_base()
        clean = coinbase(addr("thief-clean"))
        fold = spend(
            [(theft1, 0), (theft2, 0), (clean, 0)],
            [(addr("folded"), 150 * COIN)],
        )
        index = build_chain([[v1, v2, clean], [theft1, theft2], [fold]])
        analysis = TheftTracker(index).track([theft1.txid, theft2.txid])
        assert analysis.movement == "F"

    def test_split_detected(self):
        v1, v2, theft1, theft2 = _theft_base()
        split = spend(
            [(theft1, 0)],
            [(addr("s1"), 30 * COIN), (addr("s2"), 20 * COIN)],
        )
        index = build_chain([[v1, v2], [theft1, theft2], [split]])
        analysis = TheftTracker(index).track([theft1.txid])
        assert analysis.movement == "S"

    def test_peel_chain_detected(self):
        v1, v2, theft1, _theft2 = _theft_base()
        blocks = [[v1, v2], [theft1]]
        current, vout, remaining = theft1, 0, 50 * COIN
        for hop in range(4):
            remaining -= COIN
            tx = spend(
                [(current, vout)],
                [(addr(f"t-peel{hop}"), COIN), (addr(f"t-link{hop}"), remaining)],
            )
            blocks.append([tx])
            current, vout = tx, 1
        index = build_chain(blocks)
        analysis = TheftTracker(index).track([theft1.txid])
        assert analysis.movement == "P"

    def test_aggregate_then_peel(self):
        v1, v2, theft1, theft2 = _theft_base()
        agg = spend([(theft1, 0), (theft2, 0)], [(addr("ap"), 100 * COIN)])
        blocks = [[v1, v2], [theft1, theft2], [agg]]
        current, vout, remaining = agg, 0, 100 * COIN
        for hop in range(3):
            remaining -= 2 * COIN
            tx = spend(
                [(current, vout)],
                [
                    (addr(f"ap-peel{hop}"), 2 * COIN),
                    (addr(f"ap-link{hop}"), remaining),
                ],
            )
            blocks.append([tx])
            current, vout = tx, 1
        index = build_chain(blocks)
        analysis = TheftTracker(index).track([theft1.txid, theft2.txid])
        assert analysis.movement == "A/P"

    def test_exchange_hit_recorded(self):
        v1, v2, theft1, _theft2 = _theft_base()
        peel = spend(
            [(theft1, 0)],
            [(addr("gox-deposit"), 2 * COIN), (addr("t-change"), 48 * COIN)],
        )
        peel2 = spend(
            [(peel, 1)],
            [(addr("other"), 2 * COIN), (addr("t-change2"), 46 * COIN)],
        )
        index = build_chain([[v1, v2], [theft1], [peel], [peel2]])
        names = {addr("gox-deposit"): "Mt Gox"}
        tracker = TheftTracker(index, name_of_address=names.get)
        analysis = tracker.track([theft1.txid])
        assert analysis.reached({"Mt Gox"})
        assert analysis.value_to({"Mt Gox"}) == 2 * COIN
        assert not analysis.reached({"Bitstamp"})

    def test_terminal_sweep_to_named_entity_stops(self):
        v1, v2, theft1, _theft2 = _theft_base()
        cashout = spend([(theft1, 0)], [(addr("gox2"), 50 * COIN)])
        index = build_chain([[v1, v2], [theft1], [cashout]])
        names = {addr("gox2"): "Mt Gox"}
        analysis = TheftTracker(index, name_of_address=names.get).track(
            [theft1.txid]
        )
        assert analysis.reached({"Mt Gox"})
        assert analysis.dormant_value == 0


class TestOnTheftWorld:
    """End-to-end Table 3 is exercised by the bench; here we keep a
    lighter smoke check on the micro world's tracker plumbing."""

    def test_tracker_requires_known_txids(self, micro_world):
        import pytest
        from repro.chain.errors import UnknownTransactionError

        tracker = TheftTracker(micro_world.index)
        with pytest.raises(UnknownTransactionError):
            tracker.track([b"\x00" * 32])

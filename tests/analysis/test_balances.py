"""Figure 2 balance series computation."""

import numpy as np

from repro.analysis.balances import BalanceAnalyzer
from repro.chain.model import COIN

from tests.helpers import addr, build_chain, coinbase, spend


def _world():
    """50 BTC mined, 30 to the 'exchange', 20 stays with the miner.

    The exchange spends a little later so its address is active (sink
    addresses do not count toward category balances).
    """
    cb = coinbase(addr("solo-miner"))
    pay = spend(
        [(cb, 0)],
        [(addr("exchange-hot"), 30 * COIN), (addr("miner-change"), 20 * COIN)],
    )
    churn = spend([(pay, 0)], [(addr("exchange-hot"), 30 * COIN)])
    index = build_chain([[cb], [pay], [churn], []])
    names = {addr("exchange-hot"): "Ex"}
    categories = {"Ex": "exchanges"}
    analyzer = BalanceAnalyzer(
        index,
        name_of_address=names.get,
        category_of_entity=categories.get,
        categories=("exchanges", "wallets"),
    )
    return index, analyzer


class TestSeries:
    def test_category_balance_tracks_flow(self):
        _index, analyzer = _world()
        series = analyzer.series(samples=4)
        ex = series.by_category["exchanges"]
        assert ex[0] == 0
        assert ex[-1] == 30 * COIN

    def test_empty_category_stays_zero(self):
        _index, analyzer = _world()
        series = analyzer.series(samples=4)
        assert np.all(series.by_category["wallets"] == 0)

    def test_supply_accumulates(self):
        _index, analyzer = _world()
        series = analyzer.series(samples=4)
        # Four helper block coinbases plus the explicit minted coinbase.
        assert series.supply[-1] == 5 * 50 * COIN

    def test_active_excludes_sinks(self):
        _index, analyzer = _world()
        series = analyzer.series(samples=4)
        # exchange-hot and miner-change never spend: they are sinks, as
        # are the three later helper coinbases.
        assert series.active[-1] < series.supply[-1]

    def test_percentage_bounded(self):
        _index, analyzer = _world()
        series = analyzer.series(samples=4)
        pct = series.percentage("exchanges")
        assert np.all(pct >= 0)
        assert series.peak("exchanges") <= 100.0 + 1e-9

    def test_timestamps_aligned(self):
        index, analyzer = _world()
        series = analyzer.series(samples=4)
        assert len(series.timestamps) == len(series.heights)
        assert series.timestamps == [
            index.timestamp_at(h) for h in series.heights
        ]


class TestOnSilkroadWorld:
    def test_figure2_shape(self, silkroad_view):
        series = silkroad_view.balance_series(samples=40)
        # Exchanges are the dominant balance category of the era.
        assert series.peak("exchanges") > 0
        assert series.peak("gambling") >= 0
        # Percentages are sane.
        for category in series.by_category:
            assert series.peak(category) <= 100.0

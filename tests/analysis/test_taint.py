"""Haircut taint propagation."""

import pytest

from repro.analysis.taint import TaintTracker
from repro.chain.model import COIN, OutPoint

from tests.helpers import addr, build_chain, coinbase, spend


class TestPropagation:
    def test_taint_follows_simple_path(self):
        cb = coinbase(addr("t-src"))
        hop = spend([(cb, 0)], [(addr("t-mid"), 50 * COIN)])
        end = spend([(hop, 0)], [(addr("t-end"), 50 * COIN)])
        index = build_chain([[cb], [hop], [end]])
        tracker = TaintTracker(index)
        result = tracker.propagate([OutPoint(cb.txid, 0)])
        assert result.initial_taint == 50 * COIN
        assert result.unspent_taint == pytest.approx(50 * COIN)

    def test_haircut_dilution(self):
        """Tainted 50 + clean 50 co-spent -> each output 50% tainted."""
        dirty = coinbase(addr("dirty"))
        clean = coinbase(addr("clean"))
        mix = spend(
            [(dirty, 0), (clean, 0)],
            [(addr("out1"), 60 * COIN), (addr("out2"), 40 * COIN)],
        )
        index = build_chain([[dirty, clean], [mix]])
        result = TaintTracker(index).propagate([OutPoint(dirty.txid, 0)])
        taint1 = result.taint_by_outpoint[OutPoint(mix.txid, 0)]
        taint2 = result.taint_by_outpoint[OutPoint(mix.txid, 1)]
        assert taint1 == pytest.approx(30 * COIN)
        assert taint2 == pytest.approx(20 * COIN)

    def test_taint_stops_at_named_entities(self):
        cb = coinbase(addr("n-src"))
        deposit = spend([(cb, 0)], [(addr("n-gox"), 50 * COIN)])
        onward = spend([(deposit, 0)], [(addr("n-beyond"), 50 * COIN)])
        index = build_chain([[cb], [deposit], [onward]])
        names = {addr("n-gox"): "Mt Gox"}
        result = TaintTracker(index, name_of_address=names.get).propagate(
            [OutPoint(cb.txid, 0)]
        )
        assert result.reach("Mt Gox") == pytest.approx(50 * COIN)
        # Nothing propagated past the exchange.
        assert result.unspent_taint == 0

    def test_taint_conserved_within_fees(self):
        """Total taint (at entities + unspent) never exceeds initial."""
        cb = coinbase(addr("c-src"))
        s = spend(
            [(cb, 0)],
            [(addr("c-a"), 25 * COIN), (addr("c-b"), 25 * COIN)],
        )
        index = build_chain([[cb], [s]])
        result = TaintTracker(index).propagate([OutPoint(cb.txid, 0)])
        total = result.unspent_taint + sum(result.taint_at_entities.values())
        assert total <= result.initial_taint + 1e-6

    def test_min_taint_cutoff(self):
        cb = coinbase(addr("m-src"))
        s = spend(
            [(cb, 0)],
            [(addr("m-tiny"), 100), (addr("m-big"), 50 * COIN - 100)],
        )
        index = build_chain([[cb], [s]])
        result = TaintTracker(index, min_taint=1000).propagate(
            [OutPoint(cb.txid, 0)]
        )
        assert OutPoint(s.txid, 0) not in result.taint_by_outpoint
        assert OutPoint(s.txid, 1) in result.taint_by_outpoint


class TestOnTheftLikeFlow:
    def test_taint_reaches_exchange_through_fold(self, silkroad_view):
        """Taint from the hoard's final address reaches named services."""
        hoard = silkroad_view.world.extras["hoard"]
        index = silkroad_view.world.index
        record = index.address(hoard.state.final_address)
        sources = [
            OutPoint(r.txid, r.vout) for r in record.receives
        ]
        tracker = TaintTracker(
            index, name_of_address=silkroad_view.naming.name_of_address
        )
        result = tracker.propagate(sources)
        assert result.taint_at_entities  # someone known got tainted coins

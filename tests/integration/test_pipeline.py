"""End-to-end integration: simulate → serialize → reparse → cluster →
name → analyze, with ground-truth scoring at each stage."""

import pytest

from repro.chain.blockfile import BlockFileWriter, read_blocks
from repro.chain.index import ChainIndex
from repro.chain.validation import validate_chain
from repro.core.heuristic2 import Heuristic2Config
from repro.pipeline import AnalystView


class TestSerializeReparse:
    def test_world_round_trips_through_block_files(self, micro_world, tmp_path):
        """The whole simulated chain survives a disk round-trip."""
        BlockFileWriter(tmp_path).write_chain(micro_world.blocks)
        reparsed = ChainIndex()
        reparsed.add_chain(read_blocks(tmp_path))
        assert reparsed.tx_count == micro_world.index.tx_count
        assert reparsed.address_count == micro_world.index.address_count
        assert reparsed.utxo_value() == micro_world.index.utxo_value()

    def test_reparsed_chain_validates(self, micro_world, tmp_path):
        BlockFileWriter(tmp_path).write_chain(micro_world.blocks)
        report = validate_chain(read_blocks(tmp_path))
        assert report.ok, report.problems[:3]

    def test_clustering_identical_after_reparse(self, micro_world, tmp_path):
        from repro.core.clustering import ClusteringEngine

        BlockFileWriter(tmp_path).write_chain(micro_world.blocks)
        reparsed = ChainIndex()
        reparsed.add_chain(read_blocks(tmp_path))
        original = ClusteringEngine(micro_world.index).cluster()
        again = ClusteringEngine(reparsed).cluster()
        assert original.cluster_count == again.cluster_count


class TestAnalystPipeline:
    def test_clustering_never_merges_distinct_services_badly(
        self, default_view
    ):
        """Size-weighted purity stays high under the refined config."""
        from repro.metrics.evaluation import cluster_purity

        purity = cluster_purity(
            default_view.clustering, default_view.world.ground_truth
        )
        assert purity.weighted_purity > 0.9

    def test_h2_amplifies_naming_coverage(self, default_world):
        h1_view = AnalystView.build(default_world)
        h1_report_size = 0
        # Coverage with H1 only:
        from repro.tagging.naming import ClusterNaming

        h1_naming = ClusterNaming(h1_view.clustering_h1, h1_view.tags)
        h2_naming = h1_view.naming
        assert (
            h2_naming.report().named_address_count
            >= h1_naming.report().named_address_count
        )

    def test_amplification_exceeds_hand_tagging(self, default_view):
        report = default_view.naming.report()
        assert report.amplification > 1.0

    def test_major_services_nameable(self, default_view):
        naming = default_view.naming
        for service in ("Mt Gox", "Instawallet", "Satoshi Dice"):
            assert naming.clusters_named(service), service

    def test_naive_config_weaker_than_refined(self, default_world):
        """The naive config mislabels more changes (ground truth check)."""
        gt = default_world.ground_truth
        index = default_world.index

        def true_fp_rate(view):
            labels = view.clustering.h2_result.labels
            wrong = 0
            for label in labels:
                inputs = index.input_addresses(index.tx(label.txid))
                if inputs and gt.owner_of(label.address) != gt.owner_of(
                    inputs[0]
                ):
                    wrong += 1
            return wrong / max(1, len(labels))

        naive = AnalystView.build(
            default_world, h2_config=Heuristic2Config.naive()
        )
        refined = AnalystView.build(default_world)
        assert true_fp_rate(refined) < true_fp_rate(naive)

    def test_dice_addresses_resolved_from_tags(self, default_view):
        assert default_view.dice_addresses
        gt = default_view.world.ground_truth
        for address in default_view.dice_addresses:
            assert gt.category_of_address(address) == "gambling"


class TestExperiments:
    """The experiment entry points run end to end on fixture worlds."""

    def test_table1(self, default_world):
        from repro.experiments import run_table1

        result = run_table1(default_world)
        assert result.transactions_made > 50
        assert "Table 1" in result.report

    def test_section4(self, default_world):
        from repro.experiments import run_section4

        result = run_section4(default_world)
        assert result.h2_clusters <= result.h1_user_upper_bound
        assert result.h2_clusters_after_tag_collapse <= result.h2_clusters
        assert result.amplification > 1.0

    def test_fp_ladder(self, default_world):
        from repro.experiments import run_fp_ladder

        result = run_fp_ladder(default_world)
        rates = [e.estimated_rate for e in result.estimates]
        assert rates[0] >= rates[1] >= rates[2] >= rates[3]
        assert (
            result.refined_supercluster_entities
            <= result.naive_supercluster_entities
        )

    def test_table2(self, silkroad_world):
        from repro.experiments import run_table2

        result = run_table2(silkroad_world)
        assert result.total_peels > 100
        assert result.exchange_peels > 0
        assert "Mt Gox" in result.report

    def test_figure2(self, silkroad_world):
        from repro.experiments import run_figure2

        result = run_figure2(silkroad_world)
        assert result.peaks["exchanges"] > 0
        assert "Figure 2" in result.report

"""The shared per-block ingest plan (``chain/delta.py``).

Two contracts are pinned here:

* **Fan-out protocol** — ``add_block`` builds exactly one
  :class:`~repro.chain.delta.BlockDelta` per block and hands the *same
  object* to every delta subscriber, in registration order, exactly
  once; legacy block-shaped subscribers (the :meth:`ChainIndex.subscribe
  <repro.chain.index.ChainIndex.subscribe>` compatibility shim) share
  the fan-out slot and receive ``delta.block``; a raising subscriber is
  isolated and re-raised after the rest are notified.
* **Delta == transaction walk** — every field of the delta equals an
  independent recomputation that resolves prevouts and output scripts
  the long way (a hypothesis property over random simulated scenarios,
  checked at every height), and the streaming views folded from deltas
  equal per-address state recomputed from the records/transactions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.delta import BlockDelta
from repro.chain.index import ChainIndex
from repro.obs import MetricsRegistry
from repro.service.views import ActivityView, BalanceView
from repro.simulation import scenarios

from tests.helpers import build_chain


class TestDeltaFanOut:
    def _source_blocks(self, n=3):
        source = build_chain([[] for _ in range(n)])
        return [source.block_at(h) for h in range(n)]

    def test_same_delta_object_once_per_subscriber_in_order(self):
        target = ChainIndex()
        calls = []
        target.subscribe_deltas(lambda delta: calls.append(("a", delta)))
        target.subscribe(lambda block: calls.append(("legacy", block)))
        target.subscribe_deltas(lambda delta: calls.append(("b", delta)))
        blocks = self._source_blocks(2)
        for block in blocks:
            target.add_block(block)
        assert [(tag, type(payload).__name__) for tag, payload in calls] == [
            ("a", "BlockDelta"), ("legacy", "Block"), ("b", "BlockDelta"),
            ("a", "BlockDelta"), ("legacy", "Block"), ("b", "BlockDelta"),
        ]
        for height in (0, 1):
            first, legacy, second = calls[3 * height: 3 * height + 3]
            # One shared plan per block: the identical object to every
            # delta subscriber, its block to the legacy shim.
            assert first[1] is second[1]
            assert isinstance(first[1], BlockDelta)
            assert legacy[1] is first[1].block
            assert first[1].height == height

    def test_raising_delta_subscriber_isolated_and_reraised(self):
        target = ChainIndex()
        seen = []

        def explode(delta):
            raise RuntimeError(f"boom at {delta.height}")

        target.subscribe_deltas(explode)
        target.subscribe_deltas(lambda delta: seen.append(delta.height))
        blocks = self._source_blocks(2)
        with pytest.raises(RuntimeError, match="boom at 0"):
            target.add_block(blocks[0])
        # The block is ingested and the later subscriber observed it.
        assert target.height == 0
        assert seen == [0]

    def test_every_subscriber_failure_counted_and_retained(self):
        """Swallowed fan-out exceptions must stay visible: with metrics
        attached, *every* failing subscriber — not just the first, whose
        exception is the one re-raised — is counted per subscriber and
        retained as a ``subscriber_error`` flight span, and the later
        failures ride the raised exception as notes."""
        target = ChainIndex()
        target.metrics = MetricsRegistry()
        seen = []

        def explode_a(delta):
            raise RuntimeError(f"boom a at {delta.height}")

        def explode_b(delta):
            raise ValueError(f"boom b at {delta.height}")

        target.subscribe_deltas(explode_a, name="flaky-a")
        target.subscribe_deltas(explode_b, name="flaky-b")
        target.subscribe_deltas(lambda delta: seen.append(delta.height),
                                name="healthy")
        blocks = self._source_blocks(2)
        with pytest.raises(RuntimeError, match="boom a at 0") as excinfo:
            target.add_block(blocks[0])
        # The second failure is not lost: it rides along as a note.
        assert any(
            "boom b at 0" in note for note in excinfo.value.__notes__
        )
        # The healthy subscriber still observed the block.
        assert seen == [0]
        counters = target.metrics.snapshot()["counters"]
        assert counters["ingest.subscriber_errors{subscriber=flaky-a}"] == 1
        assert counters["ingest.subscriber_errors{subscriber=flaky-b}"] == 1
        assert "ingest.subscriber_errors{subscriber=healthy}" not in counters
        errors = [
            span for span in target.metrics.flight.dump()
            if span["kind"] == "subscriber_error"
        ]
        assert [(span["subscriber"], span["height"]) for span in errors] == [
            ("flaky-a", 0), ("flaky-b", 0),
        ]
        assert "boom a at 0" in errors[0]["error"]

    def test_fanout_timed_per_subscriber_even_on_failure(self):
        target = ChainIndex()
        target.metrics = MetricsRegistry()

        def explode(delta):
            raise RuntimeError("boom")

        target.subscribe_deltas(explode, name="flaky")
        target.subscribe_deltas(lambda delta: None, name="healthy")
        with pytest.raises(RuntimeError):
            target.add_block(self._source_blocks(1)[0])
        histograms = target.metrics.snapshot()["histograms"]
        assert histograms["ingest.fanout_seconds{subscriber=flaky}"][
            "count"
        ] == 1
        assert histograms["ingest.fanout_seconds{subscriber=healthy}"][
            "count"
        ] == 1

    def test_unsubscribe_stops_delta_delivery(self):
        target = ChainIndex()
        seen = []
        unsubscribe = target.subscribe_deltas(
            lambda delta: seen.append(delta.height)
        )
        blocks = self._source_blocks(2)
        target.add_block(blocks[0])
        unsubscribe()
        target.add_block(blocks[1])
        assert seen == [0]

    def test_block_delta_rebuild_equals_streamed_delta(self):
        world = scenarios.micro_economy(seed=7, n_blocks=12, n_users=4)
        target = ChainIndex()
        streamed = []
        target.subscribe_deltas(streamed.append)
        for block in world.blocks:
            target.add_block(block)
        for height, live in enumerate(streamed):
            rebuilt = target.block_delta(height)
            assert rebuilt.block is live.block
            assert rebuilt.events == live.events
            assert rebuilt.minted == live.minted
            assert rebuilt.involved == live.involved
            assert rebuilt.max_id == live.max_id
            for txd_rebuilt, txd_live in zip(rebuilt.txs, live.txs):
                assert txd_rebuilt.tx is txd_live.tx
                assert txd_rebuilt.input_ids == txd_live.input_ids
                assert txd_rebuilt.input_spends == txd_live.input_spends
                assert txd_rebuilt.output_ids == txd_live.output_ids
                assert txd_rebuilt.involved == txd_live.involved


def _walk_block_reference(index, block):
    """Recompute one block's delta facts the long way: resolve every
    prevout through the UTXO history and every output through the
    interner — no per-tx memos."""
    id_of = index.interner.id_of
    events = []
    minted = 0
    involved_block = {}
    max_id = -1
    per_tx = []
    for tx in block.transactions:
        if tx.is_coinbase:
            minted += sum(out.value for out in tx.outputs)
            input_ids = ()
            spends = ()
        else:
            seen = {}
            spends = []
            for txin in tx.inputs:
                spent = index.output(txin.prevout)
                ident = (
                    id_of(spent.address) if spent.address is not None else None
                )
                if ident is None:
                    spends.append((-1, spent.value))
                else:
                    seen.setdefault(ident)
                    spends.append((ident, spent.value))
                    events.append((ident, -spent.value))
            input_ids = tuple(seen)
            spends = tuple(spends)
        output_ids = []
        involved = dict.fromkeys(input_ids)
        for out in tx.outputs:
            ident = id_of(out.address) if out.address is not None else None
            output_ids.append(-1 if ident is None else ident)
            if ident is not None:
                events.append((ident, out.value))
                involved[ident] = None
        per_tx.append(
            (input_ids, spends, tuple(output_ids), tuple(involved))
        )
        for ident in involved:
            max_id = max(max_id, ident)
        involved_block.update(involved)
    return events, minted, tuple(involved_block), max_id, per_tx


class TestDeltaEqualsTransactionWalk:
    @settings(deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10 ** 6),
        n_blocks=st.integers(min_value=4, max_value=24),
        n_users=st.integers(min_value=3, max_value=8),
    )
    def test_delta_and_folded_views_match_walk_at_every_height(
        self, seed, n_blocks, n_users
    ):
        world = scenarios.micro_economy(
            seed=seed, n_blocks=n_blocks, n_users=n_users
        )
        target = ChainIndex()
        balances = BalanceView(target)
        activity = ActivityView(target)
        deltas = []
        target.subscribe_deltas(deltas.append)
        for block in world.blocks:
            target.add_block(block)
        # Delta contents: every field equals the independent walk.
        supply = 0
        walk_counts: dict[int, int] = {}
        walk_first: dict[int, int] = {}
        walk_last: dict[int, int] = {}
        for height, delta in enumerate(deltas):
            block = target.block_at(height)
            events, minted, involved, max_id, per_tx = _walk_block_reference(
                target, block
            )
            assert list(delta.events) == events, height
            assert delta.minted == minted, height
            assert delta.involved == involved, height
            assert delta.max_id == max_id, height
            assert len(delta.txs) == len(block.transactions)
            for txd, (input_ids, spends, output_ids, tx_involved) in zip(
                delta.txs, per_tx
            ):
                assert txd.input_ids == input_ids, height
                assert txd.input_spends == spends, height
                assert txd.output_ids == output_ids, height
                assert txd.involved == tx_involved, height
            supply += minted
            for ident in involved:
                walk_counts[ident] = walk_counts.get(ident, 0) + 0
            for input_ids, _spends, output_ids, tx_involved in per_tx:
                for ident in tx_involved:
                    walk_counts[ident] = walk_counts.get(ident, 0) + 1
                    walk_first.setdefault(ident, height)
                    walk_last[ident] = height
        # Folded views: delta-folded state equals per-address recompute.
        assert balances.height == activity.height == target.height
        assert balances.supply == supply
        for record in target.iter_addresses():
            assert (
                balances.balance_of_id(record.address_id) == record.balance
            ), record.address
        for ident, count in walk_counts.items():
            assert activity.tx_count_of_id(ident) == count
            assert activity.seen_range_of_id(ident) == (
                walk_first[ident],
                walk_last[ident],
            )


class TestColumnarMirrors:
    """The delta's typed int64 columns are exact mirrors of its tuple
    views — the kernels scatter from the columns, the scalar reference
    paths iterate the tuples, and both must see the same facts."""

    @settings(deadline=None, max_examples=25)
    @given(
        seed=st.integers(min_value=0, max_value=10 ** 6),
        n_blocks=st.integers(min_value=4, max_value=20),
        n_users=st.integers(min_value=3, max_value=8),
    )
    def test_columns_mirror_tuple_views(self, seed, n_blocks, n_users):
        world = scenarios.micro_economy(
            seed=seed, n_blocks=n_blocks, n_users=n_users
        )
        target = ChainIndex()
        deltas = []
        target.subscribe_deltas(deltas.append)
        for block in world.blocks:
            target.add_block(block)
        for delta in deltas:
            # Event columns zip back to the tuple event log.
            assert (
                list(
                    zip(
                        delta.event_ids.tolist(),
                        delta.event_values.tolist(),
                    )
                )
                == list(delta.events)
            )
            # Block-level dedup column == the involved tuple.
            assert tuple(delta.involved_ids.tolist()) == delta.involved
            # Flat involvement multiset == the per-tx concatenation.
            flat = [
                ident for txd in delta.txs for ident in txd.involved
            ]
            assert delta.involved_flat.tolist() == flat
            # Co-spend pair columns == one (first, k-th) pair per extra
            # input id of every non-coinbase transaction, in tx order.
            pairs = []
            for txd in delta.txs:
                if not txd.is_coinbase and len(txd.input_ids) > 1:
                    anchor = txd.input_ids[0]
                    pairs.extend(
                        (anchor, other) for other in txd.input_ids[1:]
                    )
            assert (
                list(zip(delta.h1_a.tolist(), delta.h1_b.tolist())) == pairs
            )
            # The columns are shared read-only across the fan-out.
            for column in (
                delta.event_ids,
                delta.event_values,
                delta.involved_ids,
                delta.involved_flat,
                delta.h1_a,
                delta.h1_b,
            ):
                assert not column.flags.writeable


SUBSCRIBER_MODULES = [
    "core/incremental.py",
    "service/views.py",
    "service/aggregates.py",
]


class TestSubscribersNeverWalkTransactions:
    @pytest.mark.parametrize("module", SUBSCRIBER_MODULES)
    def test_no_subscriber_touches_block_transactions(self, module):
        """The whole point of the shared delta: exactly one transaction
        walk per block, inside the chain layer.  A subscriber reaching
        for ``block.transactions`` re-introduces the N-walk fan-out."""
        import repro

        source_path = (
            __import__("pathlib").Path(repro.__file__).parent / module
        )
        assert "block.transactions" not in source_path.read_text()

"""Unit tests for the script subset."""

import pytest

from repro.chain import crypto, script
from repro.chain.errors import ScriptError


class TestP2PKH:
    def test_build_shape(self):
        pkh = b"\x11" * 20
        spk = script.p2pkh_script(pkh)
        assert len(spk) == 25
        assert spk[0] == script.OP_DUP
        assert spk[-1] == script.OP_CHECKSIG
        assert spk[3:23] == pkh

    def test_classify(self):
        spk = script.p2pkh_script(b"\x22" * 20)
        assert script.classify(spk) == "p2pkh"

    def test_extract_address_roundtrip(self):
        address = crypto.KeyPair.from_seed("p2pkh").address
        spk = script.p2pkh_script_for_address(address)
        assert script.extract_address(spk) == address

    def test_bad_hash_length_rejected(self):
        with pytest.raises(ScriptError):
            script.p2pkh_script(b"\x00" * 19)


class TestP2PK:
    def test_classify_and_extract(self):
        keypair = crypto.KeyPair.from_seed("p2pk")
        spk = script.p2pk_script(keypair.pubkey)
        assert script.classify(spk) == "p2pk"
        assert script.extract_address(spk) == keypair.address


class TestOther:
    def test_op_return_classified(self):
        assert script.classify(bytes([script.OP_RETURN]) + b"data") == "op_return"

    def test_garbage_is_nonstandard(self):
        assert script.classify(b"\xff\xfe\xfd") == "nonstandard"
        assert script.extract_address(b"\xff\xfe\xfd") is None

    def test_push_data_limits(self):
        with pytest.raises(ScriptError):
            script.push_data(b"")
        with pytest.raises(ScriptError):
            script.push_data(b"\x00" * 76)


class TestSigScript:
    def test_roundtrip(self):
        keypair = crypto.KeyPair.from_seed("sig")
        signature = keypair.sign(b"tx")
        ss = script.sig_script(signature, keypair.pubkey)
        got_sig, got_pub = script.parse_sig_script(ss)
        assert got_sig == signature
        assert got_pub == keypair.pubkey

    def test_malformed_rejected(self):
        with pytest.raises(ScriptError):
            script.parse_sig_script(b"")
        with pytest.raises(ScriptError):
            script.parse_sig_script(b"\x05ab")  # truncated push


class TestCoinbaseScript:
    def test_embeds_height(self):
        ss = script.coinbase_script(12345, extra=b"pool")
        assert (12345).to_bytes(4, "little") in ss

    def test_negative_height_rejected(self):
        with pytest.raises(ScriptError):
            script.coinbase_script(-1)

"""Chain statistics: synthetic counts + idiom validation on worlds."""

from repro.chain.model import COIN
from repro.chain.stats import compute_statistics, format_statistics

from tests.helpers import addr, build_chain, coinbase, spend


def _chain():
    cb1 = coinbase(addr("st1"))
    cb2 = coinbase(addr("st2"))
    # multi-input, two outputs, self-change (st1 appears in outputs).
    selfchange = spend(
        [(cb1, 0), (cb2, 0)],
        [(addr("other"), 60 * COIN), (addr("st1"), 40 * COIN)],
    )
    # single input, single output.
    sweep = spend([(selfchange, 1)], [(addr("dest"), 40 * COIN)])
    return build_chain([[cb1, cb2], [selfchange], [sweep]])


class TestCounts:
    def test_transaction_shape_counts(self):
        stats = compute_statistics(_chain())
        # 3 helper coinbases + 2 explicit coinbases + 2 spends.
        assert stats.transactions == 7
        assert stats.coinbases == 5
        assert stats.non_coinbase_txs == 2
        assert stats.multi_input_txs == 1
        assert stats.single_output_txs == 1
        assert stats.two_output_txs == 1

    def test_self_change_share(self):
        stats = compute_statistics(_chain())
        assert stats.self_change_txs == 1
        assert stats.self_change_share == 0.5

    def test_histograms(self):
        stats = compute_statistics(_chain())
        assert stats.input_count_histogram[2] == 1
        assert stats.input_count_histogram[1] == 1
        assert stats.output_count_histogram[1] >= 5  # coinbases + sweep
        # st1 received twice (coinbase + self-change).
        assert stats.address_use_histogram[2] == 1

    def test_prefix_restriction(self):
        stats = compute_statistics(_chain(), up_to_height=0)
        assert stats.blocks == 1
        assert stats.non_coinbase_txs == 0

    def test_empty_chain_shares_are_zero(self):
        stats = compute_statistics(build_chain([[]]), up_to_height=-1)
        assert stats.self_change_share == 0.0
        assert stats.multi_input_share == 0.0
        assert stats.single_use_address_share == 0.0

    def test_format(self):
        out = format_statistics(compute_statistics(_chain()))
        assert "self-change share" in out
        assert "multi-input" in out


class TestOnSimulatedWorld:
    def test_self_change_share_tracks_policy(self, default_world):
        """The configured ~23% self-change policy must be visible in the
        chain — the simulator reproduces the idiom it claims to."""
        stats = compute_statistics(default_world.index)
        # Users self-change at 23%, but services mostly use fresh
        # change, so the chain-wide share sits below that.
        assert 0.02 < stats.self_change_share < 0.30

    def test_mostly_single_use_addresses(self, default_world):
        """Era idiom: most addresses appear once (fresh deposit/change
        addresses dominate) — the precondition for Heuristic 2."""
        stats = compute_statistics(default_world.index)
        assert stats.single_use_address_share > 0.5

    def test_h1_signal_present(self, default_world):
        stats = compute_statistics(default_world.index)
        assert stats.multi_input_share > 0.05

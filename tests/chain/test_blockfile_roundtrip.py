"""Property tests: random blocks survive serialize/write/read untouched.

The satellite contract behind the durable state store: the ``blk*.dat``
substrate is the ground truth a snapshot's tail replay re-ingests, so
``serialize_block``/``deserialize_block`` and
``BlockFileWriter``/``BlockFileReader`` must round-trip *arbitrary*
blocks bit-for-bit — including the two real-world wrinkles recovery
hits: a truncated final record (unclean shutdown) and a mid-file resume
(the reader frame-skips to the snapshot height before parsing).
"""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.blockfile import BlockFileReader, BlockFileWriter, read_blocks
from repro.chain.model import Block, BlockHeader, OutPoint, Transaction, TxIn, TxOut
from repro.chain.serialize import (
    ByteReader,
    block_from_bytes,
    serialize_block,
    serialize_tx,
    tx_from_bytes,
)

_U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
_SCRIPTS = st.binary(min_size=0, max_size=64)

_TXINS = st.builds(
    TxIn,
    prevout=st.builds(
        OutPoint,
        txid=st.binary(min_size=32, max_size=32),
        vout=_U32,
    ),
    script_sig=_SCRIPTS,
    sequence=_U32,
)

_TXOUTS = st.builds(
    TxOut,
    value=st.integers(min_value=0, max_value=21_000_000 * 100_000_000),
    script_pubkey=_SCRIPTS,
)

_TXS = st.builds(
    Transaction,
    inputs=st.lists(_TXINS, min_size=1, max_size=3).map(tuple),
    outputs=st.lists(_TXOUTS, min_size=1, max_size=3).map(tuple),
    version=st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1),
    lock_time=_U32,
)

_HEADERS = st.builds(
    BlockHeader,
    version=st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1),
    prev_hash=st.binary(min_size=32, max_size=32),
    merkle_root=st.binary(min_size=32, max_size=32),
    timestamp=_U32,
    bits=_U32,
    nonce=_U32,
)


def _simple_chain(n: int) -> list[Block]:
    """A deterministic hand-built chain for the non-property cases."""
    from tests.helpers import addr, coinbase

    from repro.chain.model import GENESIS_PREV_HASH

    blocks = []
    prev = GENESIS_PREV_HASH
    for height in range(n):
        block = Block.assemble(
            height=height,
            prev_hash=prev,
            timestamp=1_300_000_000 + height * 600,
            transactions=[coinbase(addr(f"rt{height}"), height=height)],
        )
        blocks.append(block)
        prev = block.hash
    return blocks


def _blocks_strategy(min_blocks: int = 1, max_blocks: int = 6):
    """Chains of structurally arbitrary blocks, heights assigned 0.."""
    return st.lists(
        st.tuples(_HEADERS, st.lists(_TXS, min_size=1, max_size=3)),
        min_size=min_blocks,
        max_size=max_blocks,
    ).map(
        lambda raw: [
            Block(header=header, transactions=tuple(txs), height=height)
            for height, (header, txs) in enumerate(raw)
        ]
    )


class TestSerializationRoundtrip:
    @given(tx=_TXS)
    @settings(max_examples=60, deadline=None)
    def test_tx_roundtrip(self, tx):
        again = tx_from_bytes(serialize_tx(tx))
        assert again == tx
        assert again.txid == tx.txid

    @given(blocks=_blocks_strategy(min_blocks=1, max_blocks=3))
    @settings(max_examples=40, deadline=None)
    def test_block_roundtrip(self, blocks):
        for block in blocks:
            raw = serialize_block(block)
            again = block_from_bytes(raw, height=block.height)
            assert again.header == block.header
            assert again.transactions == block.transactions
            assert serialize_block(again) == raw


class TestBlockFileRoundtrip:
    @given(blocks=_blocks_strategy(max_blocks=6), max_file_size=st.sampled_from((256, 1024, 1 << 20)))
    @settings(max_examples=25, deadline=None)
    def test_write_read_across_rollover(self, tmp_path_factory, blocks, max_file_size):
        directory = tmp_path_factory.mktemp("blk")
        BlockFileWriter(directory, max_file_size=max_file_size).write_chain(blocks)
        again = list(read_blocks(directory))
        assert [b.hash for b in again] == [b.hash for b in blocks]
        assert [serialize_block(b) for b in again] == [
            serialize_block(b) for b in blocks
        ]

    @given(
        blocks=_blocks_strategy(min_blocks=2, max_blocks=6),
        max_file_size=st.sampled_from((256, 1 << 20)),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_mid_file_resume_matches_suffix(
        self, tmp_path_factory, blocks, max_file_size, data
    ):
        """Frame-skipping to any start height yields exactly the suffix."""
        directory = tmp_path_factory.mktemp("blk")
        BlockFileWriter(directory, max_file_size=max_file_size).write_chain(blocks)
        reader = BlockFileReader(directory)
        assert reader.count_blocks() == len(blocks)
        start = data.draw(
            st.integers(min_value=0, max_value=len(blocks)), label="start"
        )
        tail = list(reader.iter_blocks(start_height=start))
        assert [b.height for b in tail] == list(range(start, len(blocks)))
        assert [b.hash for b in tail] == [b.hash for b in blocks[start:]]

    @given(
        blocks=_blocks_strategy(min_blocks=2, max_blocks=5),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_truncated_final_record_with_resume(
        self, tmp_path_factory, blocks, data
    ):
        """Chopping mid-way through the last record drops exactly it —
        for full reads and for resumed reads alike."""
        directory = tmp_path_factory.mktemp("blk")
        BlockFileWriter(directory).write_chain(blocks)
        path = max(directory.glob("blk*.dat"))
        raw = path.read_bytes()
        last_record_bytes = 8 + len(serialize_block(blocks[-1]))
        chop = data.draw(
            st.integers(min_value=1, max_value=last_record_bytes - 1),
            label="chop",
        )
        path.write_bytes(raw[: len(raw) - chop])
        reader = BlockFileReader(directory)
        assert reader.count_blocks() == len(blocks) - 1
        assert [b.hash for b in reader.iter_blocks()] == [
            b.hash for b in blocks[:-1]
        ]
        start = data.draw(
            st.integers(min_value=0, max_value=len(blocks) - 1), label="start"
        )
        resumed = list(reader.iter_blocks(start_height=start))
        assert [b.hash for b in resumed] == [b.hash for b in blocks[start:-1]]

    def test_resume_writer_appends_in_place(self, tmp_path):
        blocks = _simple_chain(6)
        BlockFileWriter(tmp_path, max_file_size=512).write_chain(blocks[:3])
        BlockFileWriter(tmp_path, max_file_size=512, resume=True).write_chain(
            blocks[3:]
        )
        again = list(read_blocks(tmp_path))
        assert [b.hash for b in again] == [b.hash for b in blocks]

    def test_resume_writer_truncates_partial_final_record(self, tmp_path):
        """Appending after an unclean shutdown must first drop the
        partial record, or the garbage gets buried mid-stream and every
        later read breaks."""
        blocks = _simple_chain(5)
        BlockFileWriter(tmp_path).write_chain(blocks[:4])
        path = next(tmp_path.glob("blk*.dat"))
        path.write_bytes(path.read_bytes()[:-10])  # partial record: block 3
        BlockFileWriter(tmp_path, resume=True).write_chain(blocks[3:])
        again = list(read_blocks(tmp_path))
        assert [b.hash for b in again] == [b.hash for b in blocks]
        assert BlockFileReader(tmp_path).count_blocks() == len(blocks)

    def test_start_height_before_first_record_rejected(self, tmp_path):
        import pytest

        BlockFileWriter(tmp_path).write_chain(_simple_chain(1))
        reader = BlockFileReader(tmp_path, first_height=5)
        with pytest.raises(ValueError):
            list(reader.iter_blocks(start_height=2))

    def test_record_framing_is_magic_length_payload(self, tmp_path):
        """Pin the on-disk framing the resume arithmetic depends on."""
        blocks = _simple_chain(1)
        BlockFileWriter(tmp_path).write_chain(blocks)
        raw = next(tmp_path.glob("blk*.dat")).read_bytes()
        payload = serialize_block(blocks[0])
        assert raw[:4] == b"\xf9\xbe\xb4\xd9"
        assert struct.unpack("<I", raw[4:8])[0] == len(payload)
        assert raw[8:] == payload
        assert ByteReader(payload).remaining == len(payload)

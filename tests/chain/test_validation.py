"""Consensus-shaped validation checks."""

import pytest

from repro.chain.errors import (
    BlockStructureError,
    ConservationError,
    MissingInputError,
)
from repro.chain.model import (
    Block,
    COIN,
    GENESIS_PREV_HASH,
    Transaction,
    TxIn,
    TxOut,
)
from repro.chain import script
from repro.chain.validation import (
    ChainValidator,
    check_block_structure,
    check_transaction_structure,
    validate_chain,
)

from tests.helpers import addr, coinbase, spend


def _block(height, prev, txs, timestamp=None):
    return Block.assemble(
        height=height,
        prev_hash=prev,
        timestamp=timestamp or (1_300_000_000 + height * 600),
        transactions=txs,
    )


class TestTransactionStructure:
    def test_valid_passes(self):
        check_transaction_structure(coinbase(addr("m")))

    def test_no_outputs_rejected(self):
        tx = Transaction(
            inputs=coinbase(addr("m")).inputs,
            outputs=(),
        )
        with pytest.raises(BlockStructureError):
            check_transaction_structure(tx)

    def test_internal_double_spend_rejected(self):
        cb = coinbase(addr("m"))
        tx = Transaction(
            inputs=(
                TxIn(prevout=cb.outpoint(0)),
                TxIn(prevout=cb.outpoint(0)),
            ),
            outputs=(
                TxOut(
                    value=1,
                    script_pubkey=script.p2pkh_script_for_address(addr("x")),
                ),
            ),
        )
        with pytest.raises(Exception):
            check_transaction_structure(tx)


class TestBlockStructure:
    def test_coinbase_must_be_first(self):
        cb = coinbase(addr("m"))
        pay = spend([(cb, 0)], [(addr("a"), COIN)])
        block = _block(0, GENESIS_PREV_HASH, [cb, pay])
        check_block_structure(block)  # fine
        bad = Block(
            header=block.header,
            transactions=(pay, cb),
            height=0,
        )
        with pytest.raises(BlockStructureError):
            check_block_structure(bad)

    def test_merkle_mismatch_detected(self):
        cb = coinbase(addr("m"))
        other = coinbase(addr("other"))
        good = _block(0, GENESIS_PREV_HASH, [cb])
        tampered = Block(
            header=good.header, transactions=(other,), height=0
        )
        with pytest.raises(BlockStructureError):
            check_block_structure(tampered)

    def test_linkage_check(self):
        block = _block(0, GENESIS_PREV_HASH, [coinbase(addr("m"))])
        with pytest.raises(BlockStructureError):
            check_block_structure(block, prev_hash=b"\x99" * 32)


class TestChainValidator:
    def test_valid_two_block_chain(self):
        cb0 = coinbase(addr("m0"), height=0)
        block0 = _block(0, GENESIS_PREV_HASH, [cb0])
        pay = spend([(cb0, 0)], [(addr("a"), 50 * COIN)])
        cb1 = coinbase(addr("m1"), height=1)
        block1 = _block(1, block0.hash, [cb1, pay])
        report = validate_chain([block0, block1])
        assert report.ok
        assert report.blocks_checked == 2
        assert report.txs_checked == 3

    def test_fees_flow_to_coinbase(self):
        cb0 = coinbase(addr("m0"), height=0)
        block0 = _block(0, GENESIS_PREV_HASH, [cb0])
        pay = spend([(cb0, 0)], [(addr("a"), 49 * COIN)])  # 1 BTC fee
        cb1 = coinbase(addr("m1"), value=51 * COIN, height=1)
        block1 = _block(1, block0.hash, [cb1, pay])
        report = validate_chain([block0, block1])
        assert report.ok
        assert report.total_fees == COIN

    def test_coinbase_overclaim_rejected(self):
        cb0 = coinbase(addr("m0"), value=51 * COIN, height=0)
        block0 = _block(0, GENESIS_PREV_HASH, [cb0])
        report = validate_chain([block0])
        assert not report.ok
        assert "coinbase claims" in report.problems[0]

    def test_output_exceeding_input_rejected(self):
        cb0 = coinbase(addr("m0"), height=0)
        block0 = _block(0, GENESIS_PREV_HASH, [cb0])
        pay = spend([(cb0, 0)], [(addr("a"), 60 * COIN)])
        cb1 = coinbase(addr("m1"), height=1)
        block1 = _block(1, block0.hash, [cb1, pay])
        validator = ChainValidator()
        validator.add_block(block0)
        with pytest.raises(ConservationError):
            validator.add_block(block1)

    def test_spend_of_unknown_output_rejected(self):
        cb0 = coinbase(addr("m0"), height=0)
        block0 = _block(0, GENESIS_PREV_HASH, [cb0])
        ghost = coinbase(addr("ghost"))
        pay = spend([(ghost, 0)], [(addr("a"), COIN)])
        cb1 = coinbase(addr("m1"), height=1)
        block1 = _block(1, block0.hash, [cb1, pay])
        validator = ChainValidator()
        validator.add_block(block0)
        with pytest.raises(MissingInputError):
            validator.add_block(block1)

    def test_cross_block_double_spend_rejected(self):
        cb0 = coinbase(addr("m0"), height=0)
        block0 = _block(0, GENESIS_PREV_HASH, [cb0])
        pay1 = spend([(cb0, 0)], [(addr("a"), 50 * COIN)])
        cb1 = coinbase(addr("m1"), height=1)
        block1 = _block(1, block0.hash, [cb1, pay1])
        pay2 = spend([(cb0, 0)], [(addr("b"), 50 * COIN)])
        cb2 = coinbase(addr("m2"), height=2)
        block2 = _block(2, block1.hash, [cb2, pay2])
        report = validate_chain([block0, block1, block2])
        assert not report.ok
        assert report.blocks_checked == 2


class TestSimulatedWorlds:
    def test_micro_world_chain_is_valid(self, micro_world):
        report = validate_chain(micro_world.blocks)
        assert report.ok, report.problems[:3]
        assert report.txs_checked == micro_world.index.tx_count

"""blk*.dat writer/reader behaviour."""

import pytest

from repro.chain.blockfile import BlockFileWriter, read_blocks
from repro.chain.errors import SerializationError
from repro.chain.model import Block, GENESIS_PREV_HASH

from tests.helpers import addr, coinbase


def _make_chain(n: int) -> list[Block]:
    blocks = []
    prev = GENESIS_PREV_HASH
    for height in range(n):
        block = Block.assemble(
            height=height,
            prev_hash=prev,
            timestamp=1_300_000_000 + height * 600,
            transactions=[coinbase(addr(f"m{height}"), height=height)],
        )
        blocks.append(block)
        prev = block.hash
    return blocks


class TestRoundtrip:
    def test_write_then_read(self, tmp_path):
        blocks = _make_chain(5)
        BlockFileWriter(tmp_path).write_chain(blocks)
        again = list(read_blocks(tmp_path))
        assert [b.hash for b in again] == [b.hash for b in blocks]
        assert [b.height for b in again] == [0, 1, 2, 3, 4]

    def test_file_rollover(self, tmp_path):
        blocks = _make_chain(6)
        writer = BlockFileWriter(tmp_path, max_file_size=400)
        paths = writer.write_chain(blocks)
        assert len(paths) > 1
        again = list(read_blocks(tmp_path))
        assert len(again) == 6

    def test_single_file_source(self, tmp_path):
        blocks = _make_chain(2)
        path = BlockFileWriter(tmp_path).write_block(blocks[0])
        assert len(list(read_blocks(path))) == 1


class TestRobustness:
    def test_truncated_final_record_tolerated(self, tmp_path):
        blocks = _make_chain(3)
        BlockFileWriter(tmp_path).write_chain(blocks)
        file = next(tmp_path.glob("blk*.dat"))
        data = file.read_bytes()
        file.write_bytes(data[:-10])  # chop the last record
        again = list(read_blocks(tmp_path))
        assert len(again) == 2

    def test_truncation_error_when_strict(self, tmp_path):
        blocks = _make_chain(2)
        BlockFileWriter(tmp_path).write_chain(blocks)
        file = next(tmp_path.glob("blk*.dat"))
        file.write_bytes(file.read_bytes()[:-5])
        with pytest.raises(SerializationError):
            list(read_blocks(tmp_path, tolerate_truncation=False))

    def test_bad_magic_rejected(self, tmp_path):
        blocks = _make_chain(1)
        BlockFileWriter(tmp_path).write_chain(blocks)
        file = next(tmp_path.glob("blk*.dat"))
        data = bytearray(file.read_bytes())
        data[0] ^= 0xFF
        file.write_bytes(bytes(data))
        with pytest.raises(SerializationError):
            list(read_blocks(tmp_path))

    def test_bad_magic_length(self, tmp_path):
        with pytest.raises(SerializationError):
            BlockFileWriter(tmp_path, magic=b"\x01")

"""ChainIndex ingestion, UTXO discipline, and temporal queries."""

import pytest

from repro.chain.errors import (
    DoubleSpendError,
    MissingInputError,
    UnknownAddressError,
    UnknownTransactionError,
)
from repro.chain.index import ChainIndex
from repro.chain.model import COIN, OutPoint

from tests.helpers import addr, build_chain, coinbase, spend


class TestIngestion:
    def test_basic_accounting(self):
        index, txs = _indexed_payment()
        assert index.tx_count == 4  # two coinbases + pay + sweep
        assert index.height == 1
        assert index.address_count >= 5
        # Supply: two 50 BTC coinbases, minus the 1000 satoshi fee the
        # sweep paid (it vanishes because the test coinbases don't claim
        # fees).
        assert index.utxo_value() == 100 * COIN - 1000

    def test_out_of_order_blocks_rejected(self):
        index = build_chain([[]])
        from repro.chain.model import Block, GENESIS_PREV_HASH

        block = Block.assemble(
            height=5,
            prev_hash=GENESIS_PREV_HASH,
            timestamp=0,
            transactions=[coinbase(addr("x"))],
        )
        with pytest.raises(MissingInputError):
            index.add_block(block)


def _indexed_payment():
    """cb -> pay(a, b); b spends to c.  Returns (index, txs dict)."""
    cb = coinbase(addr("miner-main"))
    pay = spend([(cb, 0)], [(addr("a"), 30 * COIN), (addr("b"), 20 * COIN)])
    sweep = spend([(pay, 1)], [(addr("c"), 20 * COIN - 1000)])
    index = ChainIndex()
    from repro.chain.model import Block, GENESIS_PREV_HASH

    block0 = Block.assemble(
        height=0, prev_hash=GENESIS_PREV_HASH, timestamp=100, transactions=[cb]
    )
    cb1 = coinbase(addr("miner-1"), height=1)
    block1 = Block.assemble(
        height=1, prev_hash=block0.hash, timestamp=700,
        transactions=[cb1, pay, sweep],
    )
    index.add_block(block0)
    index.add_block(block1)
    return index, {"cb": cb, "pay": pay, "sweep": sweep}


class TestQueries:
    def test_tx_lookup(self):
        index, txs = _indexed_payment()
        assert index.tx(txs["pay"].txid) == txs["pay"]
        with pytest.raises(UnknownTransactionError):
            index.tx(b"\x00" * 32)

    def test_location(self):
        index, txs = _indexed_payment()
        loc = index.location(txs["pay"].txid)
        assert loc.height == 1
        assert loc.timestamp == 700
        assert loc.index_in_block == 1

    def test_utxo_tracking(self):
        index, txs = _indexed_payment()
        assert index.is_unspent(OutPoint(txs["pay"].txid, 0))
        assert not index.is_unspent(OutPoint(txs["pay"].txid, 1))
        spender = index.spender_of(OutPoint(txs["pay"].txid, 1))
        assert spender == (txs["sweep"].txid, 0)

    def test_fee(self):
        index, txs = _indexed_payment()
        assert index.fee(txs["sweep"]) == 1000
        assert index.fee(txs["cb"]) == 0

    def test_input_addresses(self):
        index, txs = _indexed_payment()
        assert index.input_addresses(txs["sweep"]) == [addr("b")]
        assert index.input_addresses(txs["cb"]) == []

    def test_address_records(self):
        index, _txs = _indexed_payment()
        record_b = index.address(addr("b"))
        assert record_b.total_received == 20 * COIN
        assert record_b.total_spent == 20 * COIN
        assert record_b.balance == 0
        assert not record_b.is_sink
        record_c = index.address(addr("c"))
        assert record_c.is_sink
        with pytest.raises(UnknownAddressError):
            index.address(addr("nobody"))

    def test_sink_addresses(self):
        index, _txs = _indexed_payment()
        sinks = set(index.sink_addresses())
        assert addr("a") in sinks
        assert addr("c") in sinks
        assert addr("b") not in sinks

    def test_appearances_before(self):
        index, _txs = _indexed_payment()
        assert index.appearances_before(addr("b"), 1) == 0
        assert index.appearances_before(addr("b"), 2) == 1
        assert index.appearances_before(addr("unseen"), 99) == 0

    def test_first_seen(self):
        index, _txs = _indexed_payment()
        assert index.first_seen(addr("b")) == 1
        assert index.first_seen(addr("nobody")) is None


class TestViolations:
    def test_double_spend_rejected(self):
        cb = coinbase(addr("m2"))
        pay1 = spend([(cb, 0)], [(addr("a"), COIN)])
        pay2 = spend([(cb, 0)], [(addr("b"), COIN)])
        with pytest.raises(DoubleSpendError):
            _ingest(cb, pay1, pay2)

    def test_missing_input_rejected(self):
        cb = coinbase(addr("m3"))
        orphan = spend([(coinbase(addr("ghost")), 0)], [(addr("a"), COIN)])
        with pytest.raises(MissingInputError):
            _ingest(cb, orphan)


def _ingest(cb, *txs):
    from repro.chain.model import Block, GENESIS_PREV_HASH

    index = ChainIndex()
    block0 = Block.assemble(
        height=0, prev_hash=GENESIS_PREV_HASH, timestamp=0, transactions=[cb]
    )
    index.add_block(block0)
    cb1 = coinbase(addr("m-next"), height=1)
    block1 = Block.assemble(
        height=1, prev_hash=block0.hash, timestamp=600,
        transactions=[cb1, *txs],
    )
    index.add_block(block1)
    return index


class TestSelfChangeHistory:
    def test_self_change_recorded(self):
        cb = coinbase(addr("m4"))
        # a pays itself (self-change) plus a payment.
        first = spend([(cb, 0)], [(addr("self"), 10 * COIN)])
        selfchange = spend(
            [(first, 0)], [(addr("other"), COIN), (addr("self"), 9 * COIN)]
        )
        index = _ingest(cb, first, selfchange)
        assert index.self_change_heights(addr("self")) == [1]
        assert index.was_self_change_before(addr("self"), 2)
        assert not index.was_self_change_before(addr("self"), 1)
        assert not index.was_self_change_before(addr("other"), 5)


class TestObserverFanOut:
    """Multiple subscribers: exactly-once, in order, isolated failures."""

    def _source_blocks(self, n=3):
        source = build_chain([[] for _ in range(n)])
        return [source.block_at(h) for h in range(n)]

    def test_subscribers_observe_in_registration_order(self):
        target = ChainIndex()
        calls = []
        target.subscribe(lambda block: calls.append(("a", block.height)))
        target.subscribe(lambda block: calls.append(("b", block.height)))
        for block in self._source_blocks(2):
            target.add_block(block)
        assert calls == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]

    def test_raising_subscriber_does_not_starve_later_ones(self):
        target = ChainIndex()
        seen = []

        def explode(block):
            raise RuntimeError(f"boom at {block.height}")

        target.subscribe(explode)
        target.subscribe(lambda block: seen.append(block.height))
        blocks = self._source_blocks(2)
        with pytest.raises(RuntimeError, match="boom at 0"):
            target.add_block(blocks[0])
        # The block is ingested and the later subscriber observed it.
        assert target.height == 0
        assert seen == [0]
        with pytest.raises(RuntimeError, match="boom at 1"):
            target.add_block(blocks[1])
        assert seen == [0, 1]

    def test_all_failures_reported_on_first_exception(self):
        target = ChainIndex()

        def explode_a(block):
            raise RuntimeError("first")

        def explode_b(block):
            raise ValueError("second")

        target.subscribe(explode_a)
        target.subscribe(explode_b)
        with pytest.raises(RuntimeError, match="first") as excinfo:
            target.add_block(self._source_blocks(1)[0])
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("second" in note for note in notes)

    def test_mid_callback_unsubscribe_still_delivers_current_block(self):
        target = ChainIndex()
        seen = []
        unsubscribe_b = None

        def observer_a(block):
            unsubscribe_b()

        def observer_b(block):
            seen.append(block.height)

        target.subscribe(observer_a)
        unsubscribe_b = target.subscribe(observer_b)
        blocks = self._source_blocks(2)
        target.add_block(blocks[0])
        # b was registered when the fan-out for block 0 snapshotted the
        # list, so it sees block 0 exactly once — and nothing after.
        assert seen == [0]
        target.add_block(blocks[1])
        assert seen == [0]

    def test_mid_callback_subscribe_starts_at_next_block(self):
        target = ChainIndex()
        seen = []

        def late_observer(block):
            seen.append(block.height)

        def observer_a(block):
            if block.height == 0:
                target.subscribe(late_observer)

        target.subscribe(observer_a)
        blocks = self._source_blocks(2)
        target.add_block(blocks[0])
        assert seen == []  # subscribed during block 0's fan-out
        target.add_block(blocks[1])
        assert seen == [1]


class TestOutputAddressIds:
    def test_aligned_and_memoized_for_ingested_txs(self):
        index, txs = _indexed_payment()
        for tx in (txs["pay"], txs["sweep"]):
            ids = index.output_address_ids(tx)
            assert len(ids) == len(tx.outputs)
            for ident, out in zip(ids, tx.outputs):
                assert index.interner.address_of(ident) == out.address
            assert index.output_address_ids(tx) is ids  # memo hit

    def test_foreign_tx_never_allocates_phantom_ids(self):
        index, txs = _indexed_payment()
        before = len(index.interner)
        foreign = spend(
            [(txs["sweep"], 0)], [(addr("phantom-recipient"), COIN)]
        )
        ids = index.output_address_ids(foreign)
        # Unknown address resolves to -1 and the dense first-sight id
        # space is untouched (snapshot universes depend on it).
        assert ids == (-1,)
        assert len(index.interner) == before

"""ChainIndex ingestion, UTXO discipline, and temporal queries."""

import pytest

from repro.chain.errors import (
    DoubleSpendError,
    MissingInputError,
    UnknownAddressError,
    UnknownTransactionError,
)
from repro.chain.index import ChainIndex
from repro.chain.model import COIN, OutPoint

from tests.helpers import addr, build_chain, coinbase, spend


class TestIngestion:
    def test_basic_accounting(self):
        index, txs = _indexed_payment()
        assert index.tx_count == 4  # two coinbases + pay + sweep
        assert index.height == 1
        assert index.address_count >= 5
        # Supply: two 50 BTC coinbases, minus the 1000 satoshi fee the
        # sweep paid (it vanishes because the test coinbases don't claim
        # fees).
        assert index.utxo_value() == 100 * COIN - 1000

    def test_out_of_order_blocks_rejected(self):
        index = build_chain([[]])
        from repro.chain.model import Block, GENESIS_PREV_HASH

        block = Block.assemble(
            height=5,
            prev_hash=GENESIS_PREV_HASH,
            timestamp=0,
            transactions=[coinbase(addr("x"))],
        )
        with pytest.raises(MissingInputError):
            index.add_block(block)


def _indexed_payment():
    """cb -> pay(a, b); b spends to c.  Returns (index, txs dict)."""
    cb = coinbase(addr("miner-main"))
    pay = spend([(cb, 0)], [(addr("a"), 30 * COIN), (addr("b"), 20 * COIN)])
    sweep = spend([(pay, 1)], [(addr("c"), 20 * COIN - 1000)])
    index = ChainIndex()
    from repro.chain.model import Block, GENESIS_PREV_HASH

    block0 = Block.assemble(
        height=0, prev_hash=GENESIS_PREV_HASH, timestamp=100, transactions=[cb]
    )
    cb1 = coinbase(addr("miner-1"), height=1)
    block1 = Block.assemble(
        height=1, prev_hash=block0.hash, timestamp=700,
        transactions=[cb1, pay, sweep],
    )
    index.add_block(block0)
    index.add_block(block1)
    return index, {"cb": cb, "pay": pay, "sweep": sweep}


class TestQueries:
    def test_tx_lookup(self):
        index, txs = _indexed_payment()
        assert index.tx(txs["pay"].txid) == txs["pay"]
        with pytest.raises(UnknownTransactionError):
            index.tx(b"\x00" * 32)

    def test_location(self):
        index, txs = _indexed_payment()
        loc = index.location(txs["pay"].txid)
        assert loc.height == 1
        assert loc.timestamp == 700
        assert loc.index_in_block == 1

    def test_utxo_tracking(self):
        index, txs = _indexed_payment()
        assert index.is_unspent(OutPoint(txs["pay"].txid, 0))
        assert not index.is_unspent(OutPoint(txs["pay"].txid, 1))
        spender = index.spender_of(OutPoint(txs["pay"].txid, 1))
        assert spender == (txs["sweep"].txid, 0)

    def test_fee(self):
        index, txs = _indexed_payment()
        assert index.fee(txs["sweep"]) == 1000
        assert index.fee(txs["cb"]) == 0

    def test_input_addresses(self):
        index, txs = _indexed_payment()
        assert index.input_addresses(txs["sweep"]) == [addr("b")]
        assert index.input_addresses(txs["cb"]) == []

    def test_address_records(self):
        index, _txs = _indexed_payment()
        record_b = index.address(addr("b"))
        assert record_b.total_received == 20 * COIN
        assert record_b.total_spent == 20 * COIN
        assert record_b.balance == 0
        assert not record_b.is_sink
        record_c = index.address(addr("c"))
        assert record_c.is_sink
        with pytest.raises(UnknownAddressError):
            index.address(addr("nobody"))

    def test_sink_addresses(self):
        index, _txs = _indexed_payment()
        sinks = set(index.sink_addresses())
        assert addr("a") in sinks
        assert addr("c") in sinks
        assert addr("b") not in sinks

    def test_appearances_before(self):
        index, _txs = _indexed_payment()
        assert index.appearances_before(addr("b"), 1) == 0
        assert index.appearances_before(addr("b"), 2) == 1
        assert index.appearances_before(addr("unseen"), 99) == 0

    def test_first_seen(self):
        index, _txs = _indexed_payment()
        assert index.first_seen(addr("b")) == 1
        assert index.first_seen(addr("nobody")) is None


class TestViolations:
    def test_double_spend_rejected(self):
        cb = coinbase(addr("m2"))
        pay1 = spend([(cb, 0)], [(addr("a"), COIN)])
        pay2 = spend([(cb, 0)], [(addr("b"), COIN)])
        with pytest.raises(DoubleSpendError):
            _ingest(cb, pay1, pay2)

    def test_missing_input_rejected(self):
        cb = coinbase(addr("m3"))
        orphan = spend([(coinbase(addr("ghost")), 0)], [(addr("a"), COIN)])
        with pytest.raises(MissingInputError):
            _ingest(cb, orphan)


def _ingest(cb, *txs):
    from repro.chain.model import Block, GENESIS_PREV_HASH

    index = ChainIndex()
    block0 = Block.assemble(
        height=0, prev_hash=GENESIS_PREV_HASH, timestamp=0, transactions=[cb]
    )
    index.add_block(block0)
    cb1 = coinbase(addr("m-next"), height=1)
    block1 = Block.assemble(
        height=1, prev_hash=block0.hash, timestamp=600,
        transactions=[cb1, *txs],
    )
    index.add_block(block1)
    return index


class TestSelfChangeHistory:
    def test_self_change_recorded(self):
        cb = coinbase(addr("m4"))
        # a pays itself (self-change) plus a payment.
        first = spend([(cb, 0)], [(addr("self"), 10 * COIN)])
        selfchange = spend(
            [(first, 0)], [(addr("other"), COIN), (addr("self"), 9 * COIN)]
        )
        index = _ingest(cb, first, selfchange)
        assert index.self_change_heights(addr("self")) == [1]
        assert index.was_self_change_before(addr("self"), 2)
        assert not index.was_self_change_before(addr("self"), 1)
        assert not index.was_self_change_before(addr("other"), 5)

"""Unit tests for the block/transaction object model."""

import pytest

from repro.chain.errors import BlockStructureError
from repro.chain.model import (
    COIN,
    Block,
    GENESIS_PREV_HASH,
    TxOut,
    block_subsidy,
    btc,
    format_btc,
    merkle_root,
)

from tests.helpers import addr, coinbase, spend


class TestSubsidy:
    def test_initial_reward(self):
        assert block_subsidy(0) == 50 * COIN

    def test_halving_at_210k(self):
        assert block_subsidy(209_999) == 50 * COIN
        assert block_subsidy(210_000) == 25 * COIN
        assert block_subsidy(420_000) == 1_250_000_000

    def test_eventually_zero(self):
        assert block_subsidy(64 * 210_000) == 0

    def test_custom_interval(self):
        assert block_subsidy(10, halving_interval=10) == 25 * COIN


class TestAmounts:
    def test_btc_conversion(self):
        assert btc(1) == COIN
        assert btc(0.5) == COIN // 2
        assert btc(0.00000001) == 1

    def test_format_btc(self):
        assert format_btc(COIN) == "1"
        assert format_btc(COIN // 2) == "0.5"
        assert format_btc(0) == "0"
        assert format_btc(-COIN) == "-1"
        assert format_btc(123) == "0.00000123"


class TestMerkle:
    def test_single_txid_is_its_own_root(self):
        txid = b"\x01" * 32
        assert merkle_root([txid]) == txid

    def test_pair_order_matters(self):
        a, b = b"\x01" * 32, b"\x02" * 32
        assert merkle_root([a, b]) != merkle_root([b, a])

    def test_odd_count_duplicates_last(self):
        a, b, c = (bytes([i]) * 32 for i in (1, 2, 3))
        assert merkle_root([a, b, c]) == merkle_root([a, b, c, c])

    def test_empty_rejected(self):
        with pytest.raises(BlockStructureError):
            merkle_root([])


class TestTransaction:
    def test_txid_stable_and_cached(self):
        tx = coinbase(addr("m"))
        assert tx.txid == tx.txid
        assert len(tx.txid) == 32
        assert tx.txid_hex == tx.txid[::-1].hex()

    def test_is_coinbase(self):
        cb = coinbase(addr("m"))
        assert cb.is_coinbase
        child = spend([(cb, 0)], [(addr("x"), COIN)])
        assert not child.is_coinbase

    def test_total_output_value(self):
        cb = coinbase(addr("m"))
        tx = spend([(cb, 0)], [(addr("a"), 10), (addr("b"), 20)])
        assert tx.total_output_value == 30

    def test_output_addresses(self):
        cb = coinbase(addr("m"))
        tx = spend([(cb, 0)], [(addr("a"), 10)])
        assert tx.output_addresses() == [addr("a")]

    def test_outpoint_bounds(self):
        cb = coinbase(addr("m"))
        assert cb.outpoint(0).vout == 0
        with pytest.raises(IndexError):
            cb.outpoint(5)

    def test_distinct_txs_distinct_ids(self):
        assert coinbase(addr("m1")).txid != coinbase(addr("m2")).txid


class TestBlock:
    def test_assemble_sets_merkle_root(self):
        cb = coinbase(addr("m"))
        block = Block.assemble(
            height=0,
            prev_hash=GENESIS_PREV_HASH,
            timestamp=1_300_000_000,
            transactions=[cb],
        )
        assert block.header.merkle_root == merkle_root([cb.txid])
        assert block.coinbase is cb
        assert len(block) == 1

    def test_empty_block_rejected(self):
        with pytest.raises(BlockStructureError):
            Block.assemble(
                height=0,
                prev_hash=GENESIS_PREV_HASH,
                timestamp=0,
                transactions=[],
            )

    def test_block_hash_changes_with_content(self):
        blk1 = Block.assemble(
            height=0, prev_hash=GENESIS_PREV_HASH, timestamp=1,
            transactions=[coinbase(addr("a"))],
        )
        blk2 = Block.assemble(
            height=0, prev_hash=GENESIS_PREV_HASH, timestamp=1,
            transactions=[coinbase(addr("b"))],
        )
        assert blk1.hash != blk2.hash


class TestTxOutAddressMemo:
    def _txout(self):
        from repro.chain import script

        return TxOut(
            value=7, script_pubkey=script.p2pkh_script_for_address(addr("memo"))
        )

    def test_address_memoized_and_equality_unaffected(self):
        out = self._txout()
        assert out.address == addr("memo")
        assert out.address == addr("memo")  # second read hits the memo
        # The memo slot is excluded from equality: a cold and a warm
        # output with the same script compare equal.
        assert out == self._txout()

    def test_pickle_roundtrip_preserves_cold_and_warm_memo(self):
        import pickle

        cold = self._txout()
        revived = pickle.loads(pickle.dumps(cold))
        # The unresolved sentinel pickles by reference, so the revived
        # output resolves its address instead of leaking the sentinel.
        assert revived.address == addr("memo")
        warm = self._txout()
        assert warm.address == addr("memo")
        assert pickle.loads(pickle.dumps(warm)).address == addr("memo")

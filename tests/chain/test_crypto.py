"""Unit tests for hashing, base58check, and simulation keypairs."""

import pytest
from hypothesis import given, strategies as st

from repro.chain import crypto
from repro.chain.errors import Base58Error


class TestHashes:
    def test_sha256d_known_vector(self):
        # sha256d("") = sha256(sha256(""))
        assert crypto.sha256d(b"").hex() == (
            "5df6e0e2761359d30a8275058e299fcc0381534545f55cf43e41983f5d4c9456"
        )

    def test_hash160_is_20_bytes(self):
        assert len(crypto.hash160(b"pubkey")) == 20

    def test_hash160_deterministic(self):
        assert crypto.hash160(b"x") == crypto.hash160(b"x")
        assert crypto.hash160(b"x") != crypto.hash160(b"y")


class TestBase58Check:
    def test_roundtrip(self):
        payload = bytes(range(20))
        encoded = crypto.base58check_encode(payload, version=0)
        version, decoded = crypto.base58check_decode(encoded)
        assert version == 0
        assert decoded == payload

    def test_leading_zeros_preserved(self):
        payload = b"\x00\x00\x01\x02" + b"\x07" * 16
        encoded = crypto.base58check_encode(payload)
        _version, decoded = crypto.base58check_decode(encoded)
        assert decoded == payload

    def test_mainnet_p2pkh_addresses_start_with_1(self):
        address = crypto.pubkey_hash_to_address(b"\x00" * 20)
        assert address.startswith("1")

    def test_checksum_detects_corruption(self):
        address = crypto.KeyPair.from_seed("x").address
        # Flip one character to another alphabet character.
        tampered = address[:-1] + ("2" if address[-1] != "2" else "3")
        with pytest.raises(Base58Error):
            crypto.base58check_decode(tampered)

    def test_invalid_characters_rejected(self):
        with pytest.raises(Base58Error):
            crypto.base58_decode("0OIl")  # not in the base58 alphabet

    def test_too_short_rejected(self):
        with pytest.raises(Base58Error):
            crypto.base58check_decode("1")

    def test_version_byte_out_of_range(self):
        with pytest.raises(Base58Error):
            crypto.base58check_encode(b"\x00" * 20, version=300)

    def test_is_valid_address(self):
        keypair = crypto.KeyPair.from_seed("valid")
        assert crypto.is_valid_address(keypair.address)
        assert not crypto.is_valid_address("not-an-address")
        assert not crypto.is_valid_address("")

    @given(st.binary(min_size=0, max_size=64))
    def test_base58_roundtrip_property(self, data):
        assert crypto.base58_decode(crypto.base58_encode(data)) == data

    @given(st.binary(min_size=20, max_size=20), st.integers(0, 255))
    def test_base58check_roundtrip_property(self, payload, version):
        encoded = crypto.base58check_encode(payload, version)
        assert crypto.base58check_decode(encoded) == (version, payload)


class TestKeyPair:
    def test_deterministic_from_seed(self):
        a = crypto.KeyPair.from_seed("alice")
        b = crypto.KeyPair.from_seed("alice")
        assert a == b
        assert a.address == b.address

    def test_distinct_seeds_distinct_keys(self):
        assert (
            crypto.KeyPair.from_seed("alice").address
            != crypto.KeyPair.from_seed("bob").address
        )

    def test_string_and_bytes_seeds_agree(self):
        assert crypto.KeyPair.from_seed("s") == crypto.KeyPair.from_seed(b"s")

    def test_pubkey_shape(self):
        keypair = crypto.KeyPair.from_seed("shape")
        assert len(keypair.pubkey) == 33
        assert keypair.pubkey[0] == 0x02

    def test_sign_verify(self):
        keypair = crypto.KeyPair.from_seed("signer")
        signature = keypair.sign(b"message")
        assert keypair.verify(b"message", signature)
        assert not keypair.verify(b"other message", signature)

    def test_signature_not_verifiable_by_other_key(self):
        a = crypto.KeyPair.from_seed("a")
        b = crypto.KeyPair.from_seed("b")
        assert not b.verify(b"m", a.sign(b"m"))

    def test_address_matches_pubkey_hash(self):
        keypair = crypto.KeyPair.from_seed("addr")
        assert (
            crypto.address_to_pubkey_hash(keypair.address) == keypair.pubkey_hash
        )

"""Wire-format round-trips and defensive decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.chain import serialize
from repro.chain.errors import SerializationError, TruncatedDataError
from repro.chain.model import Block, GENESIS_PREV_HASH, OutPoint, Transaction, TxIn, TxOut
from repro.chain.serialize import (
    ByteReader,
    block_from_bytes,
    decode_varint,
    encode_varint,
    serialize_block,
    serialize_tx,
    tx_from_bytes,
)

from tests.helpers import addr, coinbase, spend


class TestVarint:
    @pytest.mark.parametrize(
        "value,encoded",
        [
            (0, b"\x00"),
            (0xFC, b"\xfc"),
            (0xFD, b"\xfd\xfd\x00"),
            (0xFFFF, b"\xfd\xff\xff"),
            (0x10000, b"\xfe\x00\x00\x01\x00"),
            (0x100000000, b"\xff\x00\x00\x00\x00\x01\x00\x00\x00"),
        ],
    )
    def test_known_encodings(self, value, encoded):
        assert encode_varint(value) == encoded
        assert decode_varint(ByteReader(encoded)) == value

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            encode_varint(-1)

    def test_non_canonical_rejected(self):
        # 5 encoded with the 0xfd form is non-canonical.
        with pytest.raises(SerializationError):
            decode_varint(ByteReader(b"\xfd\x05\x00"))

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip_property(self, value):
        assert decode_varint(ByteReader(encode_varint(value))) == value


class TestByteReader:
    def test_truncation_error(self):
        reader = ByteReader(b"\x01\x02")
        with pytest.raises(TruncatedDataError):
            reader.read(3)

    def test_sequential_reads(self):
        reader = ByteReader(b"\x01\x02\x03")
        assert reader.read_u8() == 1
        assert reader.read(2) == b"\x02\x03"
        assert reader.remaining == 0


class TestTransactionRoundtrip:
    def test_coinbase_roundtrip(self):
        tx = coinbase(addr("m"))
        again = tx_from_bytes(serialize_tx(tx))
        assert again == tx
        assert again.txid == tx.txid

    def test_multi_io_roundtrip(self):
        cb1, cb2 = coinbase(addr("a")), coinbase(addr("b"))
        tx = spend(
            [(cb1, 0), (cb2, 0)],
            [(addr("x"), 123), (addr("y"), 456), (addr("z"), 789)],
        )
        assert tx_from_bytes(serialize_tx(tx)) == tx

    def test_trailing_bytes_rejected(self):
        raw = serialize_tx(coinbase(addr("m"))) + b"\x00"
        with pytest.raises(SerializationError):
            tx_from_bytes(raw)

    def test_truncated_rejected(self):
        raw = serialize_tx(coinbase(addr("m")))
        with pytest.raises(TruncatedDataError):
            tx_from_bytes(raw[:-2])

    @given(
        st.lists(
            st.tuples(st.integers(0, 2**40), st.integers(0, 50)), min_size=1, max_size=5
        ),
        st.integers(0, 2**31 - 1),
    )
    def test_roundtrip_property(self, outputs, lock_time):
        tx = Transaction(
            inputs=(
                TxIn(prevout=OutPoint(b"\x42" * 32, 7), script_sig=b"\x01\x02"),
            ),
            outputs=tuple(
                TxOut(value=v, script_pubkey=b"\x51" * (n % 20 + 1))
                for v, n in outputs
            ),
            lock_time=lock_time,
        )
        assert tx_from_bytes(serialize_tx(tx)) == tx


class TestBlockRoundtrip:
    def _block(self):
        cb = coinbase(addr("m"))
        child = spend([(cb, 0)], [(addr("x"), 1000)])
        return Block.assemble(
            height=0,
            prev_hash=GENESIS_PREV_HASH,
            timestamp=1_300_000_000,
            transactions=[cb, child],
        )

    def test_roundtrip_preserves_hash(self):
        block = self._block()
        again = block_from_bytes(serialize_block(block), height=0)
        assert again.hash == block.hash
        assert len(again.transactions) == 2

    def test_header_is_80_bytes(self):
        assert len(serialize.serialize_header(self._block().header)) == 80

    def test_trailing_bytes_rejected(self):
        raw = serialize_block(self._block()) + b"junk"
        with pytest.raises(SerializationError):
            block_from_bytes(raw, height=0)

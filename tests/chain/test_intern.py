"""Address interning and the index's id-carrying / observer surfaces."""

import pytest

from repro.chain.intern import AddressInterner
from repro.chain.model import COIN

from tests.helpers import addr, build_chain, coinbase, spend


class TestAddressInterner:
    def test_dense_first_sight_ids(self):
        interner = AddressInterner()
        assert interner.intern("1a") == 0
        assert interner.intern("1b") == 1
        assert interner.intern("1a") == 0  # idempotent
        assert len(interner) == 2
        assert list(interner) == ["1a", "1b"]

    def test_id_of_never_allocates(self):
        interner = AddressInterner()
        assert interner.id_of("ghost") is None
        assert len(interner) == 0
        interner.intern("1x")
        assert interner.id_of("1x") == 0

    def test_roundtrip_and_bulk_lookup(self):
        interner = AddressInterner()
        ids = [interner.intern(a) for a in ("1p", "1q", "1r")]
        assert [interner.address_of(i) for i in ids] == ["1p", "1q", "1r"]
        assert interner.addresses_of(reversed(ids)) == ["1r", "1q", "1p"]
        assert "1p" in interner and "1z" not in interner

    def test_invalid_ids_raise(self):
        interner = AddressInterner()
        interner.intern("1only")
        with pytest.raises(IndexError):
            interner.address_of(1)
        with pytest.raises(IndexError):
            interner.address_of(-1)


class TestIndexInterning:
    def _index(self):
        cb1 = coinbase(addr("ia"))
        cb2 = coinbase(addr("ib"))
        joint = spend(
            [(cb1, 0), (cb2, 0)],
            [(addr("dst"), 70 * COIN), (addr("chg"), 29 * COIN)],
        )
        return build_chain([[cb1], [cb2], [joint]]), joint

    def test_records_carry_dense_ids(self):
        index, _joint = self._index()
        seen = set()
        for record in index.iter_addresses():
            assert record.address_id == index.interner.id_of(record.address)
            assert index.address_by_id(record.address_id) is record
            seen.add(record.address_id)
        assert seen == set(range(index.address_count))

    def test_input_ids_match_string_edge(self):
        index, joint = self._index()
        ids = index.input_address_ids(joint)
        assert index.interner.addresses_of(ids) == index.input_addresses(joint)
        assert index.input_addresses(joint) == [addr("ia"), addr("ib")]
        # Memoized per txid.
        assert index.input_address_ids(joint) is ids

    def test_ids_are_first_sight_ordered(self):
        index, _joint = self._index()
        first_seen = [
            (index.first_seen(a), index.interner.id_of(a))
            for a in index.interner
        ]
        heights = [h for h, _ in first_seen]
        assert heights == sorted(heights)


class TestObserverHook:
    def test_observer_sees_each_block_once_in_order(self):
        from repro.chain.index import ChainIndex

        source = build_chain([[], [], []])
        target = ChainIndex()
        heights: list[int] = []
        unsubscribe = target.subscribe(lambda block: heights.append(block.height))
        target.add_block(source.block_at(0))
        target.add_block(source.block_at(1))
        assert heights == [0, 1]
        unsubscribe()
        target.add_block(source.block_at(2))
        assert heights == [0, 1]

    def test_observer_runs_after_ingestion(self):
        from repro.chain.index import ChainIndex

        source = build_chain([[]])
        target = ChainIndex()
        counts: list[int] = []
        target.subscribe(lambda block: counts.append(target.tx_count))
        target.add_block(source.block_at(0))
        assert counts == [1]  # the block's coinbase is already queryable

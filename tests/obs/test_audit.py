"""The online invariant auditor: clean pipelines audit clean at every
cadence, and seeded corruption is caught within one audit cycle.

The hypothesis property streams randomized worlds with a *strict*
auditor attached at a randomized cadence — any invariant violation
anywhere in the run raises out of ``add_block``, so a pass certifies
zero violations at every audit point.  The corruption cases then mutate
one slot of real component state (a balance, a canonical id, an
aggregate) and assert the next audit reports exactly that check.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.index import ChainIndex
from repro.obs import AuditViolationError, InvariantAuditor
from repro.service import ForensicsService
from repro.simulation import scenarios


def _fresh_service(seed=3, n_blocks=None, **auditor_kwargs):
    """A streamed micro world with its own mutable service + auditor."""
    world = scenarios.micro_economy(seed=seed)
    attack = world.extras.get("attack")
    index = ChainIndex()
    service = ForensicsService(
        index, tags=attack.tags if attack is not None else None
    )
    auditor = InvariantAuditor(service, **auditor_kwargs)
    blocks = world.blocks if n_blocks is None else world.blocks[:n_blocks]
    for block in blocks:
        index.add_block(block)
    return service, auditor


class TestCleanPipelinesAuditClean:
    @settings(deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n_blocks=st.integers(min_value=6, max_value=30),
        n_users=st.integers(min_value=3, max_value=8),
        cadence=st.sampled_from([1, 2, 3, 5, 8]),
    )
    def test_random_scenarios_zero_violations_at_every_cadence(
        self, seed, n_blocks, n_users, cadence
    ):
        world = scenarios.micro_economy(
            seed=seed, n_blocks=n_blocks, n_users=n_users
        )
        index = ChainIndex()
        service = ForensicsService(index, tags=None)
        auditor = InvariantAuditor(
            service, audit_every=cadence, strict=True
        )
        for block in world.blocks:
            index.add_block(block)  # strict: a violation raises here
        assert auditor.audits_run == len(world.blocks) // cadence
        assert auditor.total_violations == 0
        final = auditor.audit_now(full=True)
        assert final.ok, final.as_dict()

    def test_cadence_counts_and_detach(self):
        service, auditor = _fresh_service(audit_every=4, strict=True)
        n_blocks = service.height + 1
        assert auditor.audits_run == n_blocks // 4
        auditor.detach()
        world = scenarios.micro_economy(seed=3)
        # Re-streaming a fresh copy of the same chain after detach: no
        # further audits fire (index rejects duplicates, so use a new
        # service for the negative control).
        before = auditor.audits_run
        auditor.audit_now()
        assert auditor.audits_run == before + 1

    def test_full_audit_batch_cross_checks_every_cluster(self):
        service, auditor = _fresh_service(audit_every=0)
        report = auditor.audit_now(full=True)
        assert report.ok
        aggregates = next(
            check for check in report.checks if check.name == "aggregates"
        )
        n_clusters = service.aggregates.cluster_count
        assert f"{n_clusters} cluster(s) cross-checked" in aggregates.detail

    def test_zero_cadence_never_fires(self):
        _service, auditor = _fresh_service(audit_every=0)
        assert auditor.audits_run == 0

    def test_negative_cadence_rejected(self):
        world = scenarios.micro_economy(seed=3, n_blocks=6)
        service = ForensicsService.from_world(world)
        with pytest.raises(ValueError):
            InvariantAuditor(service, audit_every=-1)


class TestSeededCorruptionDetected:
    """Each case mutates one slot of live state and expects the *next*
    audit cycle to attribute the damage to the right check."""

    def test_mutated_balance_slot(self):
        service, auditor = _fresh_service(audit_every=0)
        service.balances._balances[1] += 7
        report = auditor.audit_now()
        assert not report.ok
        balance = next(
            check
            for check in report.checks
            if check.name == "balance_conservation"
        )
        assert balance.violations
        assert "differ from the event-log replay" in balance.detail

    def test_forged_canonical_id(self):
        service, auditor = _fresh_service(audit_every=0)
        view = service.aggregates
        view._flush()
        root = view._uf.find(0)
        view._min_member[root] = view._min_member[root] + 999
        report = auditor.audit_now()
        assert not report.ok
        partition = next(
            check for check in report.checks if check.name == "partition"
        )
        assert partition.violations

    def test_corrupted_aggregate_balance(self):
        service, auditor = _fresh_service(audit_every=0)
        view = service.aggregates
        view._flush()
        root = view._uf.find(0)
        view._balance[root] += 5
        report = auditor.audit_now(full=True)
        assert not report.ok
        aggregates = next(
            check for check in report.checks if check.name == "aggregates"
        )
        assert aggregates.violations

    def test_strict_mode_raises_and_still_records(self):
        service, auditor = _fresh_service(audit_every=0, strict=True)
        service.balances._balances[1] += 7
        with pytest.raises(AuditViolationError) as excinfo:
            auditor.audit_now()
        assert excinfo.value.report.violations >= 1
        assert auditor.last_report is excinfo.value.report
        assert auditor.total_violations >= 1

    def test_strict_cadence_raises_within_one_cycle(self):
        """Corruption mid-stream aborts ingest at the next audit point."""
        world = scenarios.micro_economy(seed=3)
        index = ChainIndex()
        service = ForensicsService(index, tags=None)
        InvariantAuditor(service, audit_every=4, strict=True)
        corrupted_at = None
        with pytest.raises(AuditViolationError):
            for block in world.blocks:
                index.add_block(block)
                if block.height == 17:  # between audit points
                    service.balances._balances[0] += 1
                    corrupted_at = block.height
                assert (
                    corrupted_at is None
                    or block.height < corrupted_at + 4
                ), "audit cycle passed without detecting the corruption"

    def test_non_strict_degrades_to_report(self):
        service, auditor = _fresh_service(audit_every=0, strict=False)
        service.balances._balances[1] += 7
        report = auditor.audit_now()
        assert not report.ok
        assert auditor.last_report is report
        health = service.health_report()
        audit_component = health.component("audit")
        assert audit_component.status == "failing"
        assert health.status == "failing"


class TestAuditTelemetry:
    def test_metrics_and_flight_span_recorded(self):
        world = scenarios.micro_economy(seed=3, n_blocks=12)
        from repro.experiments import instrumented_service
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        service = instrumented_service(world, metrics=metrics)
        auditor = InvariantAuditor(service)
        report = auditor.audit_now()
        assert report.ok
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["audit.checks_total"] == len(
            report.checks
        )
        for check in report.checks:
            key = f"audit.violations_total{{check={check.name}}}"
            assert snapshot["counters"][key] == 0
            summary = snapshot["histograms"][
                f"audit.seconds{{check={check.name}}}"
            ]
            assert summary["count"] == 1
        spans = [
            span
            for span in metrics.flight.dump()
            if span["kind"] == "audit"
        ]
        assert len(spans) == 1
        assert spans[0]["violations"] == 0

    def test_report_shape(self):
        _service, auditor = _fresh_service(audit_every=0, n_blocks=12)
        report = auditor.audit_now()
        payload = report.as_dict()
        assert payload["ok"] is True
        assert payload["violations"] == 0
        assert {check["name"] for check in payload["checks"]} == {
            "balance_conservation",
            "partition",
            "aggregates",
            "shadow_fold",
        }
        assert payload["seconds"] == pytest.approx(
            sum(check["seconds"] for check in payload["checks"])
        )

"""The component health model: grading, optional components, rollup.

Each case drives :func:`collect_health` over a real service and pins
one grading rule — the worst-component rollup, the optional
snapshot/audit components, the injectable clock for snapshot age, and
the ``health.*`` gauges an enabled registry carries away.
"""

from repro.chain.index import ChainIndex
from repro.obs import InvariantAuditor, MetricsRegistry, render_health
from repro.obs.health import (
    CACHE_GRADE_LOOKUPS,
    DEGRADED,
    FAILING,
    MAX_SNAPSHOT_AGE_SECONDS,
    OK,
    collect_health,
)
from repro.service import ForensicsService, Query
from repro.simulation import scenarios
from repro.storage import StateStore


def _service(seed=3, **kwargs):
    world = scenarios.micro_economy(seed=seed)
    return ForensicsService.from_world(world, **kwargs)


class TestComponentGrading:
    def test_healthy_service_is_all_ok(self):
        report = collect_health(_service())
        assert report.status == OK
        assert {entry.component for entry in report.components} == {
            "chain", "engine", "aggregates", "views", "cache",
        }
        assert all(entry.status == OK for entry in report.components)

    def test_empty_chain_degraded(self):
        service = ForensicsService(ChainIndex(), tags=None)
        report = collect_health(service)
        assert report.component("chain").status == DEGRADED
        assert report.status == DEGRADED

    def test_batch_fallback_aggregates_degraded(self):
        world = scenarios.micro_economy(seed=3)
        service = ForensicsService.from_world(
            world, differential_aggregates=False
        )
        entry = collect_health(service).component("aggregates")
        assert entry.status == DEGRADED
        assert "batch fallback" in entry.summary

    def test_open_label_backlog_threshold(self):
        service = _service()
        report = collect_health(service, open_label_backlog=0)
        entry = report.component("engine")
        if service.engine.open_label_count:
            assert entry.status == DEGRADED
            assert "backlog" in entry.summary
        assert collect_health(service).component("engine").status == OK

    def test_cache_graded_only_after_enough_lookups(self):
        service = _service()
        assert collect_health(service).component("cache").status == OK
        # Miss-only traffic (every query distinct, none consulting the
        # shared rankings) past the grading floor drops the hit rate to
        # zero — only then is it graded.
        interner = service.index.interner
        for ident in range(min(CACHE_GRADE_LOOKUPS + 1, len(interner))):
            service.answer(
                Query("balance_of", (interner.address_of(ident),))
            )
        stats = service.cache.stats()
        assert stats["hits"] + stats["misses"] >= CACHE_GRADE_LOOKUPS
        assert stats["hit_rate"] < 0.05
        assert collect_health(service).component("cache").status == DEGRADED

    def test_rollup_is_worst_component(self):
        service = _service()
        auditor = InvariantAuditor(service)
        service.balances._balances[1] += 7
        auditor.audit_now()
        report = collect_health(service, auditor=auditor)
        assert report.component("audit").status == FAILING
        assert report.status == FAILING


class TestOptionalComponents:
    def test_store_and_auditor_absent_by_default(self):
        report = collect_health(_service())
        assert report.component("snapshots") is None
        assert report.component("audit") is None

    def test_empty_store_degraded(self, tmp_path):
        store = StateStore(tmp_path / "snapshots")
        entry = collect_health(_service(), store=store).component(
            "snapshots"
        )
        assert entry.status == DEGRADED
        assert "no snapshots" in entry.summary

    def test_snapshot_age_with_injectable_clock(self, tmp_path):
        service = _service()
        store = StateStore(tmp_path / "snapshots")
        store.snapshot(service)
        newest = store.latest()
        fresh = collect_health(
            service, store=store, clock=lambda: newest.created_unix + 10
        ).component("snapshots")
        assert fresh.status == OK
        assert fresh.details["behind_blocks"] == 0
        stale = collect_health(
            service,
            store=store,
            clock=lambda: newest.created_unix
            + MAX_SNAPSHOT_AGE_SECONDS
            + 60,
        ).component("snapshots")
        assert stale.status == DEGRADED

    def test_auditor_attached_before_first_audit(self):
        service = _service()
        auditor = InvariantAuditor(service)
        entry = collect_health(service, auditor=auditor).component("audit")
        assert entry.status == OK
        assert "no audit run yet" in entry.summary
        auditor.audit_now()
        entry = collect_health(service, auditor=auditor).component("audit")
        assert entry.status == OK
        assert "clean" in entry.summary


class TestSurfacing:
    def test_service_stats_carries_health(self):
        stats = _service().stats()
        assert stats["health"]["status"] == OK
        components = {
            entry["component"] for entry in stats["health"]["components"]
        }
        assert "chain" in components

    def test_service_health_report_includes_attached_auditor(self):
        service = _service()
        InvariantAuditor(service)  # registers itself as service.auditor
        report = service.health_report()
        assert report.component("audit") is not None

    def test_enabled_registry_gets_health_gauges(self):
        world = scenarios.micro_economy(seed=3, n_blocks=12)
        from repro.experiments import instrumented_service

        metrics = MetricsRegistry()
        service = instrumented_service(world, metrics=metrics)
        collect_health(service)
        gauges = metrics.snapshot()["gauges"]
        assert gauges["health.overall"] == 0
        assert gauges["health.status{component=chain}"] == 0

    def test_render_health_lists_every_component(self):
        report = collect_health(_service())
        rendered = render_health(report.as_dict())
        for entry in report.components:
            assert entry.component in rendered
        assert "ok" in rendered

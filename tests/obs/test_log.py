"""The JSON-lines event logger: leveling, bounding, null default.

Unit cases pin the record schema and the bounded-field guarantees; the
end-to-end case streams a world with a logger attached and checks the
pipeline's own events land (the event catalogue lives in
``docs/observability.md``).
"""

import json

import pytest

from repro.chain.index import ChainIndex
from repro.obs import NULL_LOGGER, EventLogger, JsonLinesLogger
from repro.service import ForensicsService
from repro.simulation import scenarios


def _records(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


class TestJsonLinesLogger:
    def test_record_schema(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonLinesLogger(path, clock=lambda: 123.5) as log:
            log.info("snapshot_written", height=7, seconds=0.25)
        (record,) = _records(path)
        assert record == {
            "ts": 123.5,
            "level": "info",
            "event": "snapshot_written",
            "height": 7,
            "seconds": 0.25,
        }

    def test_min_level_filters_before_serialization(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonLinesLogger(path, min_level="warning") as log:
            log.debug("block_ingested", height=0)
            log.info("snapshot_written", height=1)
            log.warning("slow", seconds=9.0)
            log.error("audit_violation", check="partition")
        events = [record["event"] for record in _records(path)]
        assert events == ["slow", "audit_violation"]

    def test_unknown_level_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonLinesLogger(tmp_path / "x.jsonl", min_level="loud")

    def test_field_count_bounded_with_marker(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonLinesLogger(path, max_fields=2) as log:
            log.info("wide", a=1, b=2, c=3, d=4)
        (record,) = _records(path)
        assert record["truncated_fields"] == 2
        kept = set(record) - {"ts", "level", "event", "truncated_fields"}
        assert len(kept) == 2

    def test_long_values_truncated(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonLinesLogger(path, max_chars=8) as log:
            log.info("clipped", detail="x" * 100)
        (record,) = _records(path)
        assert record["detail"] == "x" * 8 + "…"

    def test_non_json_values_rendered_via_repr(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonLinesLogger(path) as log:
            log.info("odd", value={1, 2}, flag=True, none=None)
        (record,) = _records(path)
        assert isinstance(record["value"], str)
        assert record["flag"] is True
        assert record["none"] is None

    def test_appends_across_instances(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonLinesLogger(path) as log:
            log.info("first")
        with JsonLinesLogger(path) as log:
            log.info("second")
        assert [r["event"] for r in _records(path)] == ["first", "second"]


class TestNullLogger:
    def test_disabled_and_inert(self):
        assert NULL_LOGGER.enabled is False
        assert isinstance(NULL_LOGGER, EventLogger)
        NULL_LOGGER.debug("x", a=1)
        NULL_LOGGER.error("y")
        NULL_LOGGER.close()

    def test_default_service_logger_is_null(self):
        world = scenarios.micro_economy(seed=3, n_blocks=6)
        service = ForensicsService.from_world(world)
        assert service.log is NULL_LOGGER


class TestPipelineEvents:
    def test_ingest_emits_block_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        world = scenarios.micro_economy(seed=3, n_blocks=8)
        index = ChainIndex()
        with JsonLinesLogger(path, min_level="debug") as log:
            ForensicsService(index, tags=None, log=log)
            for block in world.blocks:
                index.add_block(block)
        records = _records(path)
        ingested = [
            r for r in records if r["event"] == "block_ingested"
        ]
        assert [r["height"] for r in ingested] == list(
            range(len(world.blocks))
        )
        assert all(r["level"] == "debug" for r in ingested)

    def test_subscriber_failure_logged(self, tmp_path):
        path = tmp_path / "events.jsonl"
        world = scenarios.micro_economy(seed=3, n_blocks=4)
        index = ChainIndex()
        with JsonLinesLogger(path, min_level="debug") as log:
            ForensicsService(index, tags=None, log=log)

            def explode(delta):
                raise RuntimeError("boom")

            index.subscribe_deltas(explode, name="bad-observer")
            with pytest.raises(RuntimeError):
                index.add_block(world.blocks[0])
        errors = [
            r
            for r in _records(path)
            if r["event"] == "subscriber_error"
        ]
        assert errors
        assert errors[0]["level"] == "error"
        assert errors[0]["subscriber"] == "bad-observer"
        assert "boom" in errors[0]["error"]

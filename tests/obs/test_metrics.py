"""The telemetry substrate: registry, instruments, flight ring, rendering.

These pin the contracts the instrumented pipeline relies on: instrument
identity under ``(name, labels)`` keying, the disabled registry's
true-no-op behavior (shared singletons, nothing retained), snapshot
shape, the flight recorder's ring bound, and the sum-consistency helper
``total_seconds`` the overhead bench builds its coverage check on.
"""

import pytest

from repro.obs import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    FlightRecorder,
    Histogram,
    MetricsRegistry,
    next_request_id,
    render_flight,
    render_snapshot,
)
from repro.obs.metrics import _NULL_INSTRUMENT


class TestInstruments:
    def test_counter_monotonic(self):
        counter = MetricsRegistry().counter("x")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_gauge_set_outright(self):
        gauge = MetricsRegistry().gauge("x")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3

    def test_histogram_accounting(self):
        hist = Histogram()
        for value in (0.001, 0.002, 0.004, 0.1):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == pytest.approx(0.107)
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.1)
        assert hist.mean == pytest.approx(0.107 / 4)

    def test_histogram_percentiles_ordered_and_bounded(self):
        hist = Histogram()
        for i in range(1, 101):
            hist.observe(i / 1000.0)  # 1ms .. 100ms
        p50, p95, p99 = (hist.percentile(q) for q in (50, 95, 99))
        assert p50 <= p95 <= p99
        assert hist.min <= p50
        assert p99 <= hist.max

    def test_histogram_overflow_past_last_bound(self):
        hist = Histogram(bounds=(1.0, 2.0))
        hist.observe(50.0)
        assert hist.count == 1
        assert hist.percentile(99) == pytest.approx(50.0)

    def test_empty_histogram_summary(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["mean"] is None
        assert summary["p99"] is None

    def test_summary_keys(self):
        hist = Histogram()
        hist.observe(0.5)
        assert set(hist.summary()) == {
            "count", "total", "mean", "min", "max", "p50", "p95", "p99",
        }

    def test_default_bucket_sets_ascend(self):
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
        assert list(COUNT_BUCKETS) == sorted(COUNT_BUCKETS)


class TestRegistry:
    def test_instruments_keyed_by_name_and_labels(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")
        assert registry.counter("a", view="x") is not registry.counter("a")
        # Label order is irrelevant to identity.
        assert registry.histogram("h", a=1, b=2) is registry.histogram(
            "h", b=2, a=1
        )

    def test_snapshot_renders_prometheus_style_keys(self):
        registry = MetricsRegistry()
        registry.counter("ingest.errors", subscriber="engine").inc(2)
        registry.gauge("depth").set(9)
        registry.histogram("fold.seconds", view="taint").observe(0.25)
        snapshot = registry.snapshot()
        assert snapshot["enabled"] is True
        assert snapshot["counters"] == {
            "ingest.errors{subscriber=engine}": 2
        }
        assert snapshot["gauges"] == {"depth": 9}
        summary = snapshot["histograms"]["fold.seconds{view=taint}"]
        assert summary["count"] == 1
        assert summary["total"] == pytest.approx(0.25)

    def test_gauge_fn_sampled_at_snapshot_time(self):
        registry = MetricsRegistry()
        box = {"value": 1}
        registry.gauge_fn("box.value", lambda: box["value"])
        assert registry.snapshot()["gauges"]["box.value"] == 1
        box["value"] = 42
        assert registry.snapshot()["gauges"]["box.value"] == 42

    def test_total_seconds_sums_across_label_sets(self):
        registry = MetricsRegistry()
        registry.histogram("fanout", subscriber="engine").observe(0.5)
        registry.histogram("fanout", subscriber="taint").observe(0.25)
        registry.histogram("other").observe(10.0)
        assert registry.total_seconds("fanout") == pytest.approx(0.75)
        assert registry.total_seconds("missing") == 0.0

    def test_trace_times_into_histogram_and_flight(self):
        registry = MetricsRegistry()
        with registry.trace("phase.seconds", phase="warm"):
            pass
        snapshot = registry.snapshot()
        summary = snapshot["histograms"]["phase.seconds{phase=warm}"]
        assert summary["count"] == 1
        (span,) = registry.flight.dump()
        assert span["kind"] == "stage"
        assert span["stage"] == "phase.seconds"
        assert span["seconds"] >= 0.0


class TestDisabledRegistry:
    def test_factories_hand_out_shared_noop_singleton(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is _NULL_INSTRUMENT
        assert registry.gauge("b") is _NULL_INSTRUMENT
        assert registry.histogram("c") is _NULL_INSTRUMENT
        # Mutations vanish; nothing is retained anywhere.
        registry.counter("a").inc(100)
        registry.histogram("c").observe(5.0)
        registry.gauge_fn("d", lambda: 1)
        snapshot = registry.snapshot()
        assert snapshot["enabled"] is False
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}

    def test_flight_recorder_disabled(self):
        registry = MetricsRegistry(enabled=False)
        registry.flight.record("block", height=0)
        assert len(registry.flight) == 0
        assert registry.flight.dump() == []

    def test_disabled_trace_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        with registry.trace("phase.seconds"):
            pass
        assert registry.snapshot()["histograms"] == {}
        assert len(registry.flight) == 0

    def test_null_registry_is_disabled(self):
        assert NULL_REGISTRY.enabled is False
        assert NULL_REGISTRY.counter("x") is _NULL_INSTRUMENT


class TestFlightRecorder:
    def test_ring_bound_keeps_newest(self):
        flight = FlightRecorder(capacity=4)
        for height in range(10):
            flight.record("block", height=height)
        assert flight.capacity == 4
        assert len(flight) == 4
        dump = flight.dump()
        assert [span["height"] for span in dump] == [6, 7, 8, 9]
        assert all(span["kind"] == "block" for span in dump)

    def test_dump_returns_copies(self):
        flight = FlightRecorder()
        flight.record("block", height=0)
        flight.dump()[0]["height"] = 99
        assert flight.dump()[0]["height"] == 0


class TestRequestIds:
    def test_unique_and_prefixed(self):
        first, second = next_request_id(), next_request_id()
        assert first != second
        assert first.startswith("req-")
        assert second.startswith("req-")


class TestRendering:
    def test_snapshot_table_formats_by_unit(self):
        registry = MetricsRegistry()
        registry.counter("engine.merges").inc(3)
        registry.histogram("ingest.index_seconds").observe(0.002)
        registry.histogram("engine.h1_pairs", buckets=COUNT_BUCKETS).observe(
            269.0
        )
        rendered = render_snapshot(registry.snapshot())
        assert "engine.merges" in rendered
        assert "2.00ms" in rendered  # durations format as time...
        assert "269" in rendered
        assert "269.000s" not in rendered  # ...counts never do

    def test_empty_snapshot_and_flight(self):
        assert render_snapshot({}) == "no metrics recorded"
        assert render_flight([]) == "flight recorder: empty"

    def test_flight_tail(self):
        spans = [{"kind": "block", "height": h} for h in range(30)]
        rendered = render_flight(spans, tail=2)
        assert "height=29" in rendered
        assert "height=0" not in rendered

"""Metric-catalogue drift guard: the pipeline and ``docs/metrics.md``
must agree.

One fully instrumented end-to-end run (ingest, queries, aggregate
flushes, snapshot/restore/verify, an audit, a health collection)
gathers every metric name and flight-span kind actually emitted; each
must appear in the catalogue.  For the observability families this PR
owns (``audit.*``, ``health.*``) the check also runs in reverse — a
documented name that is never emitted is drift too.
"""

import re
from pathlib import Path

import pytest

from repro.experiments import instrumented_service
from repro.obs import InvariantAuditor, MetricsRegistry
from repro.obs.health import collect_health
from repro.service import Query
from repro.simulation import scenarios
from repro.storage import StateStore

DOCS = Path(__file__).resolve().parents[2] / "docs" / "metrics.md"

_NAME = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+$")


def documented_names() -> set[str]:
    """Every backticked dotted lowercase token in the catalogue."""
    names = set()
    for span in re.findall(r"`([^`]+)`", DOCS.read_text()):
        span = re.sub(r"\{[^}]*\}", "", span)
        for token in span.split(" / "):
            if _NAME.match(token):
                names.add(token)
    return names


@pytest.fixture(scope="module")
def emitted(tmp_path_factory):
    """Metric names + flight kinds from one instrumented everything-run."""
    world = scenarios.micro_economy(seed=3)
    metrics = MetricsRegistry()
    service = instrumented_service(world, metrics=metrics)
    interner = service.index.interner
    horizon = max(0, service.height // 2)
    service.answer_many(
        [
            Query("top_clusters", (5, "balance")),
            Query("cluster_of", (interner.address_of(0),)),
            Query("balance_of", (interner.address_of(1),)),
            # Historical horizon twice: the first replays the delta log
            # (timetravel.replay_* + the `timetravel` flight span), the
            # second hits the horizon memo (timetravel.memo_hits).
            Query("top_clusters", (5, "size", horizon)),
            Query("cluster_profile", (interner.address_of(0), horizon)),
        ]
    )
    store = StateStore(
        tmp_path_factory.mktemp("snapshots"), metrics=metrics
    )
    store.snapshot(service)
    manifest = store.latest()
    store.restore(manifest)
    store.verify_snapshot(manifest)
    auditor = InvariantAuditor(service)
    auditor.audit_now()
    collect_health(service, store=store, auditor=auditor)

    snapshot = metrics.snapshot()
    names = set()
    for family in ("counters", "gauges", "histograms"):
        for key in snapshot[family]:
            names.add(re.sub(r"\{[^}]*\}", "", key))
    kinds = {span["kind"] for span in metrics.flight.dump()}
    return names, kinds


class TestCatalogueDrift:
    def test_every_emitted_metric_is_documented(self, emitted):
        names, _kinds = emitted
        undocumented = names - documented_names()
        assert not undocumented, (
            f"emitted but missing from docs/metrics.md: "
            f"{sorted(undocumented)}"
        )

    def test_every_emitted_flight_kind_is_documented(self, emitted):
        _names, kinds = emitted
        text = DOCS.read_text()
        missing = {kind for kind in kinds if f"`{kind}`" not in text}
        assert not missing, (
            f"flight span kinds missing from docs/metrics.md: "
            f"{sorted(missing)}"
        )

    def test_documented_observability_families_are_emitted(self, emitted):
        names, _kinds = emitted
        owned = {
            name
            for name in documented_names()
            if name.startswith(("audit.", "health."))
        }
        assert owned, "docs/metrics.md documents no audit.*/health.* names"
        stale = owned - names
        assert not stale, (
            f"documented in docs/metrics.md but never emitted: "
            f"{sorted(stale)}"
        )

    def test_run_covered_the_families_under_guard(self, emitted):
        """The fixture must actually exercise audit + health, else the
        reverse check proves nothing."""
        names, kinds = emitted
        assert any(name.startswith("audit.") for name in names)
        assert any(name.startswith("health.") for name in names)
        assert "audit" in kinds

"""``repro doctor`` deep diagnostics: clean state passes, one flipped
byte fails — the contract the nightly CI corruption drill asserts.
"""

import json

import pytest

from repro.experiments import warm_service
from repro.obs.doctor import run_doctor
from repro.simulation import scenarios


@pytest.fixture()
def state_dir(tmp_path):
    """A durable state dir (blocks + baseline snapshot) for a micro
    world, exactly as ``repro serve --state-dir`` lays it out."""
    world = scenarios.micro_economy(seed=3)
    warm = warm_service(world, tmp_path)
    warm.checkpoint()
    return tmp_path


def _flip_one_byte(path):
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))


class TestCleanStateDir:
    def test_doctor_passes_and_reports(self, state_dir):
        report = run_doctor(state_dir)
        assert report.ok, report.problems
        assert report.exit_code == 0
        assert report.snapshots
        assert all(not entry["problems"] for entry in report.snapshots)
        assert report.restored_height is not None
        assert report.audit["ok"] is True
        assert report.health["status"] != "failing"
        rendered = report.render()
        assert "result: HEALTHY" in rendered
        assert "audit: clean" in rendered

    def test_report_serializes(self, state_dir):
        payload = run_doctor(state_dir).as_dict()
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["ok"] is True
        assert round_tripped["state_dir"] == str(state_dir)


class TestCorruptionDetected:
    def test_flipped_segment_byte_fails(self, state_dir):
        segment = sorted(
            (state_dir / "snapshots").glob("snap-*/*.seg")
        )[0]
        _flip_one_byte(segment)
        report = run_doctor(state_dir)
        assert not report.ok
        assert report.exit_code == 1
        assert any("checksum" in problem for problem in report.problems)
        assert "PROBLEM" in report.render()

    def test_corrupted_snapshot_state_fails_full_audit(self, state_dir):
        """Checksums intact but state inconsistent: rewrite one
        snapshot segment with forged balances (and a recomputed
        checksum) — the doctor's full audit catches what integrity
        verification cannot."""
        import numpy as np

        from repro.storage.segments import read_segment, write_segment

        store_root = state_dir / "snapshots"
        manifest_path = sorted(store_root.glob("snap-*/MANIFEST.json"))[0]
        manifest = json.loads(manifest_path.read_text())
        record = manifest["segments"]["balances"]
        segment_path = manifest_path.parent / record["file"]
        state = read_segment(segment_path, expected_name="balances")
        forged = np.frombuffer(state["balances"], dtype="<i8").copy()
        forged[0] += 7
        state["balances"] = forged.tobytes()
        manifest["segments"]["balances"] = write_segment(
            manifest_path.parent, "balances", state
        )
        manifest_path.write_text(json.dumps(manifest, indent=2))

        report = run_doctor(state_dir)
        assert not report.ok
        assert any("audit" in problem for problem in report.problems)

    def test_missing_snapshots_dir(self, tmp_path):
        report = run_doctor(tmp_path)
        assert not report.ok
        assert report.exit_code == 1
        assert any(
            "no snapshots directory" in problem
            for problem in report.problems
        )

    def test_unreadable_manifest_reported(self, state_dir):
        manifest = sorted(
            (state_dir / "snapshots").glob("snap-*/MANIFEST.json")
        )[0]
        manifest.write_text("not json")
        report = run_doctor(state_dir)
        assert not report.ok
        assert any(
            "unreadable or missing manifest" in problem
            for problem in report.problems
        )

"""CSV/JSON/GraphML exports."""

import csv
import json

import networkx as nx

from repro.io.export import (
    export_clusters_csv,
    export_naming_json,
    export_peel_chain_json,
    export_tags_csv,
)
from repro.io.graphml import export_user_graph_graphml
from repro.tagging.tags import TagStore, make_tag


class TestClusterExport:
    def test_csv_roundtrip(self, default_view, tmp_path):
        path = tmp_path / "clusters.csv"
        rows = export_clusters_csv(default_view.clustering, path, min_size=2)
        assert rows > 0
        with open(path) as fh:
            reader = csv.DictReader(fh)
            first = next(reader)
        assert set(first) == {"address", "cluster_id", "cluster_size", "name"}
        assert int(first["cluster_size"]) >= 2

    def test_named_clusters_carry_names(self, default_view, tmp_path):
        path = tmp_path / "named.csv"
        export_clusters_csv(
            default_view.clustering,
            path,
            name_of_cluster=default_view.naming.name_of_cluster,
            min_size=3,
        )
        with open(path) as fh:
            names = {row["name"] for row in csv.DictReader(fh)}
        assert any(name for name in names if name)


class TestTagExport:
    def test_tags_csv(self, tmp_path):
        store = TagStore([make_tag("1a", "Mt Gox"), make_tag("1b", "BTC-e")])
        path = tmp_path / "tags.csv"
        rows = export_tags_csv(store, path)
        assert rows == 2
        with open(path) as fh:
            entities = {row["entity"] for row in csv.DictReader(fh)}
        assert entities == {"Mt Gox", "BTC-e"}


class TestPeelChainExport:
    def test_json_structure(self, silkroad_view, tmp_path):
        hoard = silkroad_view.world.extras["hoard"]
        tracker = silkroad_view.peeling_tracker()
        chain = tracker.follow_address(
            hoard.state.chain_start_addresses[0], max_hops=10
        )
        path = tmp_path / "chain.json"
        export_peel_chain_json(
            chain, path, name_of_address=silkroad_view.naming.name_of_address
        )
        doc = json.loads(path.read_text())
        assert doc["hop_count"] == 10
        assert len(doc["hops"]) == 10
        assert all("txid" in hop for hop in doc["hops"])


class TestNamingExport:
    def test_naming_json(self, default_view, tmp_path):
        path = tmp_path / "naming.json"
        export_naming_json(default_view.naming, path)
        doc = json.loads(path.read_text())
        assert doc["named_cluster_count"] > 0
        assert doc["clusters"][0]["size"] >= doc["clusters"][-1]["size"]


class TestGraphML:
    def test_graphml_loads_back(self, default_view, tmp_path):
        graph = default_view.user_graph()
        path = tmp_path / "graph.graphml"
        cleaned = export_user_graph_graphml(graph, path, min_edge_value=0)
        loaded = nx.read_graphml(path)
        assert loaded.number_of_nodes() == cleaned.number_of_nodes()
        assert loaded.number_of_edges() == cleaned.number_of_edges()

    def test_min_edge_filter(self, default_view, tmp_path):
        graph = default_view.user_graph()
        path = tmp_path / "graph2.graphml"
        cleaned = export_user_graph_graphml(
            graph, path, min_edge_value=10**12
        )
        assert cleaned.number_of_edges() < graph.number_of_edges()

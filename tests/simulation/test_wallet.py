"""Wallet key/coin management."""

import random

import pytest

from repro.chain.model import OutPoint
from repro.simulation.wallet import InsufficientFundsError, Wallet


def _wallet():
    return Wallet("tester", rng=random.Random(1))


def _fake_outpoint(n: int) -> OutPoint:
    return OutPoint(bytes([n]) * 32, 0)


class TestAddresses:
    def test_fresh_addresses_unique(self):
        wallet = _wallet()
        addresses = {wallet.fresh_address() for _ in range(20)}
        assert len(addresses) == 20

    def test_deterministic_given_owner(self):
        a = Wallet("same-owner").fresh_address()
        b = Wallet("same-owner").fresh_address()
        assert a == b

    def test_kind_tracking(self):
        wallet = _wallet()
        receive = wallet.fresh_address()
        change = wallet.fresh_address(kind="change")
        assert change in wallet.change_addresses
        assert receive not in wallet.change_addresses
        assert wallet.last_change_address() == change

    def test_last_change_none_initially(self):
        assert _wallet().last_change_address() is None

    def test_reused_receive_address(self):
        wallet = _wallet()
        first = wallet.fresh_address()
        assert wallet.reused_receive_address() == first

    def test_reused_receive_mints_when_empty(self):
        wallet = _wallet()
        address = wallet.reused_receive_address()
        assert wallet.owns(address)

    def test_on_new_address_callback(self):
        seen = []
        wallet = Wallet("cb-owner")
        wallet._on_new_address = lambda address, owner: seen.append((address, owner))
        address = wallet.fresh_address()
        assert seen == [(address, "cb-owner")]


class TestCoins:
    def test_credit_and_balance(self):
        wallet = _wallet()
        address = wallet.fresh_address()
        wallet.credit(_fake_outpoint(1), 100, address)
        wallet.credit(_fake_outpoint(2), 50, address)
        assert wallet.balance == 150
        assert wallet.coin_count == 2

    def test_credit_foreign_address_rejected(self):
        wallet = _wallet()
        with pytest.raises(KeyError):
            wallet.credit(_fake_outpoint(1), 1, "1NotMyAddress")

    def test_double_credit_rejected(self):
        wallet = _wallet()
        address = wallet.fresh_address()
        wallet.credit(_fake_outpoint(1), 1, address)
        with pytest.raises(ValueError):
            wallet.credit(_fake_outpoint(1), 1, address)

    def test_debit(self):
        wallet = _wallet()
        address = wallet.fresh_address()
        wallet.credit(_fake_outpoint(1), 100, address)
        coin = wallet.debit(_fake_outpoint(1))
        assert coin.value == 100
        assert wallet.balance == 0
        with pytest.raises(KeyError):
            wallet.debit(_fake_outpoint(1))

    def test_coin_at(self):
        wallet = _wallet()
        address = wallet.fresh_address()
        wallet.credit(_fake_outpoint(3), 42, address)
        assert wallet.coin_at(address).value == 42
        assert wallet.coin_at(wallet.fresh_address()) is None


class TestSelection:
    def _funded(self):
        wallet = _wallet()
        address = wallet.fresh_address()
        for i, value in enumerate((10, 30, 20), start=1):
            wallet.credit(_fake_outpoint(i), value, address)
        return wallet

    def test_fifo_selection(self):
        wallet = self._funded()
        coins = wallet.select_coins(35)
        assert [c.value for c in coins] == [10, 30]

    def test_largest_first_selection(self):
        wallet = self._funded()
        coins = wallet.select_coins(35, prefer_largest=True)
        assert [c.value for c in coins] == [30, 20]

    def test_insufficient_funds(self):
        wallet = self._funded()
        with pytest.raises(InsufficientFundsError) as exc_info:
            wallet.select_coins(1000)
        assert exc_info.value.available == 60

    def test_non_positive_amount_rejected(self):
        with pytest.raises(ValueError):
            self._funded().select_coins(0)

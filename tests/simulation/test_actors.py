"""Actor behaviours: pools, exchanges, gambling, mixers, gateways."""

import pytest

from repro.chain.model import COIN
from repro.simulation.actors import (
    BEHAVIOUR_RETURN_SAME,
    BEHAVIOUR_STEAL,
    CasinoSite,
    DiceGame,
    Exchange,
    MiningPool,
    Mixer,
    PaymentGateway,
    UserActor,
    Vendor,
    WalletService,
)
from repro.simulation.builder import build_payment
from repro.simulation.economy import Economy
from repro.simulation.params import EconomyParams, GamblingParams


def _economy(n_blocks=200):
    economy = Economy(EconomyParams(seed=3, n_blocks=n_blocks, n_users=0))
    pool = MiningPool("Pool")
    economy.register(pool, hashrate=1.0)
    return economy, pool


def _fund(economy, pool, actor, amount):
    """Mine and transfer ``amount`` to an actor."""
    while pool.wallet.balance < amount + 10_000:
        economy.mine_block()
    built = build_payment(
        pool.wallet, [(actor.payment_address(), amount)], fee=1000, rng=pool.rng
    )
    economy.submit(built, pool.wallet)
    economy.mine_block()


class TestMiningPool:
    def test_payout_round_pays_members(self):
        economy, pool = _economy()
        user = UserActor("member")
        economy.register(user)
        pool.add_member(user)
        for _ in range(30):
            economy.mine_block()
        pool.step(pool.params.payout_interval)  # force a payout round
        economy.mine_block()
        assert user.wallet.balance > 0


class TestExchange:
    def test_deposit_withdraw_cycle(self):
        economy, pool = _economy()
        exchange = Exchange("Ex", n_segments=2)
        economy.register(exchange)
        _fund(economy, pool, exchange, 40 * COIN)
        destination_wallet = economy.create_wallet("Ex")  # throwaway holder
        destination = destination_wallet.fresh_address()
        exchange.request_withdrawal(destination, 5 * COIN)
        exchange.step(1)
        economy.mine_block()
        assert destination_wallet.balance == 5 * COIN

    def test_consolidation_chains_deposits(self):
        economy, pool = _economy()
        exchange = Exchange("Ex2", n_segments=1)
        economy.register(exchange)
        for _ in range(3):
            _fund(economy, pool, exchange, 10 * COIN)
        before = exchange._deposit_wallet.coin_count
        exchange._consolidate_deposits()
        economy.mine_block()
        # deposits merged into the persistent hot address
        assert exchange._hot_address is not None
        hot_coin = exchange._deposit_wallet.coin_at(exchange._hot_address)
        assert hot_coin is not None

    def test_invalid_withdrawal_amount(self):
        economy, _pool = _economy()
        exchange = Exchange("Ex3")
        economy.register(exchange)
        with pytest.raises(ValueError):
            exchange.request_withdrawal("1x", 0)


class TestDiceGame:
    def test_winning_payout_returns_to_bettor_address(self):
        economy, pool = _economy()
        dice = DiceGame("Dice", GamblingParams(win_prob=1.0))
        economy.register(dice)
        user = UserActor("gambler")
        economy.register(user)
        _fund(economy, pool, user, 10 * COIN)
        coin = user.wallet.coins()[0]
        built = build_payment(
            user.wallet,
            [(dice.bet_address(), COIN)],
            fee=1000,
            rng=user.rng,
            coins=[coin],
        )
        economy.submit(built, user.wallet)
        dice.place_bet(coin.address, COIN)
        # Fund the house so it can pay 2x.
        _fund(economy, pool, dice, 10 * COIN)
        dice.step(5)
        economy.mine_block()
        record = economy.build_index().address(coin.address)
        assert record.total_received > 10 * COIN  # original + payout

    def test_bet_address_is_stable(self):
        economy, _pool = _economy()
        dice = DiceGame("Dice2")
        economy.register(dice)
        assert dice.bet_address() == dice.bet_address()

    def test_invalid_bet_rejected(self):
        economy, _pool = _economy()
        dice = DiceGame("Dice3")
        economy.register(dice)
        with pytest.raises(ValueError):
            dice.place_bet("1x", 0)


class TestMixer:
    def _mix_setup(self, behaviour):
        economy, pool = _economy()
        mixer = Mixer("Mix", behaviour=behaviour, delay_blocks=1)
        economy.register(mixer)
        user = UserActor("mix-user")
        economy.register(user)
        _fund(economy, pool, user, 10 * COIN)
        intake = mixer.intake_address()
        built = build_payment(
            user.wallet, [(intake, 2 * COIN)], fee=1000, rng=user.rng
        )
        tx = economy.submit(built, user.wallet)
        vout = next(
            i for i, out in enumerate(tx.outputs) if out.address == intake
        )
        return_address = user.wallet.fresh_address()
        mixer.request_mix(tx.outpoint(vout), 2 * COIN, return_address)
        economy.mine_block()
        return economy, mixer, user, return_address, tx.outpoint(vout)

    def test_steal_never_pays(self):
        economy, mixer, user, _return_address, _paid = self._mix_setup(
            BEHAVIOUR_STEAL
        )
        balance_before = user.wallet.balance
        for height in range(5):
            mixer.step(economy.height)
            economy.mine_block()
        assert user.wallet.balance == balance_before

    def test_return_same_sends_same_coin_back(self):
        economy, mixer, user, _return_address, paid = self._mix_setup(
            BEHAVIOUR_RETURN_SAME
        )
        for _ in range(4):
            mixer.step(economy.height)
            economy.mine_block()
        index = economy.build_index()
        spender = index.spender_of(paid)
        assert spender is not None  # the very coin we paid in moved back

    def test_bad_behaviour_rejected(self):
        with pytest.raises(ValueError):
            Mixer("Bad", behaviour="creative")


class TestGatewayVendors:
    def test_gateway_owns_sale_addresses(self):
        economy, _pool = _economy()
        gateway = PaymentGateway("Gateway")
        economy.register(gateway)
        vendor = Vendor("Shop", gateway=gateway)
        economy.register(vendor)
        sale_address = vendor.sale_address(COIN)
        assert economy.ground_truth.owner_of(sale_address) == "Gateway"

    def test_direct_vendor_owns_sale_addresses(self):
        economy, _pool = _economy()
        vendor = Vendor("DirectShop")
        economy.register(vendor)
        assert (
            economy.ground_truth.owner_of(vendor.sale_address(COIN))
            == "DirectShop"
        )

    def test_gateway_settles_to_merchant(self):
        economy, pool = _economy()
        gateway = PaymentGateway("Gw2", settle_interval=1)
        economy.register(gateway)
        vendor = Vendor("Shop2", gateway=gateway)
        economy.register(vendor)
        sale_address = vendor.sale_address(5 * COIN)
        # fund a buyer and purchase
        buyer = UserActor("buyer")
        economy.register(buyer)
        _fund(economy, pool, buyer, 20 * COIN)
        built = build_payment(
            buyer.wallet, [(sale_address, 5 * COIN)], fee=1000, rng=buyer.rng
        )
        economy.submit(built, buyer.wallet)
        economy.mine_block()
        gateway.step(1)
        economy.mine_block()
        assert vendor.wallet.balance > 0


class TestWalletServiceAndCasino:
    def test_wallet_service_withdrawal(self):
        economy, pool = _economy()
        service = WalletService("Hosted")
        economy.register(service)
        _fund(economy, pool, service, 30 * COIN)
        holder = economy.create_wallet("Hosted")
        destination = holder.fresh_address()
        service.request_withdrawal(destination, 3 * COIN)
        service.step(1)
        economy.mine_block()
        assert holder.balance == 3 * COIN

    def test_casino_withdrawal(self):
        economy, pool = _economy()
        casino = CasinoSite("Casino")
        economy.register(casino)
        _fund(economy, pool, casino, 30 * COIN)
        holder = economy.create_wallet("Casino")
        destination = holder.fresh_address()
        casino.request_withdrawal(destination, 2 * COIN)
        casino.step(1)
        economy.mine_block()
        assert holder.balance == 2 * COIN

"""Property-based invariants of the simulated economy.

Whatever the seed and scale, a generated world must satisfy the
consensus-shaped conservation laws — these are the properties that make
the synthetic chain a faithful stand-in for the real one.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chain.model import block_subsidy
from repro.chain.validation import validate_chain
from repro.core.heuristic1 import h1_statistics
from repro.simulation import scenarios


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000))
def test_any_seed_yields_valid_chain(seed):
    world = scenarios.micro_economy(seed=seed, n_blocks=60, n_users=6)
    report = validate_chain(world.blocks)
    assert report.ok, report.problems[:3]


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000))
def test_utxo_value_equals_total_subsidy(seed):
    """Conservation: fees circulate back through coinbases, so the UTXO
    set holds exactly the sum of block subsidies."""
    world = scenarios.micro_economy(seed=seed, n_blocks=50, n_users=5)
    subsidies = sum(block_subsidy(b.height) for b in world.blocks)
    assert world.index.utxo_value() == subsidies


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000))
def test_wallet_balances_match_index(seed):
    """Every actor's wallet view agrees with the chain."""
    world = scenarios.micro_economy(seed=seed, n_blocks=50, n_users=5)
    index = world.index
    mismatches = []
    for actor in world.economy.actors():
        wallet_balance = actor.wallet.balance
        chain_balance = sum(
            index.address(a).balance
            for a in actor.wallet.addresses
            if index.has_address(a)
        )
        # Wallet may hold credits for not-yet-mined mempool txs; the
        # scenario mines everything, so views must agree exactly.
        if wallet_balance != chain_balance:
            mismatches.append((actor.name, wallet_balance, chain_balance))
    # Actors with several wallets (exchanges) track them separately;
    # compare only single-wallet actors for exactness.
    single = [m for m in mismatches if m[0] not in
              {a.name for a in world.economy.actors_in_category("exchanges")}]
    assert not single, single[:3]


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000))
def test_h1_cluster_count_bounded_by_entities_and_addresses(seed):
    world = scenarios.micro_economy(seed=seed, n_blocks=60, n_users=6)
    stats = h1_statistics(world.index)
    # Never fewer clusters than true entities with spends (H1 cannot
    # merge distinct users absent shared inputs), never more than
    # addresses.
    assert stats.spender_clusters <= world.index.address_count
    assert stats.max_users_upper_bound <= world.index.address_count


def test_subsidy_schedule_respected_in_blocks():
    world = scenarios.micro_economy(seed=0, n_blocks=40)
    for block in world.blocks:
        claimed = block.coinbase.total_output_value
        assert claimed >= block_subsidy(block.height)  # subsidy + fees

"""Economy coordinator: mining, submission, determinism, ground truth."""

import pytest

from repro.chain.model import COIN, block_subsidy
from repro.chain.validation import validate_chain
from repro.simulation.actors import MiningPool, UserActor
from repro.simulation.builder import build_payment
from repro.simulation.economy import Economy
from repro.simulation.params import EconomyParams
from repro.simulation import scenarios


def _tiny_economy(seed=0):
    economy = Economy(EconomyParams(seed=seed, n_blocks=30, n_users=0))
    pool = MiningPool("TestPool")
    economy.register(pool, hashrate=1.0)
    user = UserActor("tester")
    economy.register(user)
    pool.add_member(user)
    return economy, pool, user


class TestRegistration:
    def test_duplicate_actor_rejected(self):
        economy, _pool, _user = _tiny_economy()
        with pytest.raises(ValueError):
            economy.register(UserActor("tester"))

    def test_wallet_requires_registered_entity(self):
        economy, _pool, _user = _tiny_economy()
        with pytest.raises(KeyError):
            economy.create_wallet("stranger")

    def test_actor_lookup(self):
        economy, pool, user = _tiny_economy()
        assert economy.actor("TestPool") is pool
        assert economy.actors_in_category("users") == [user]


class TestMiningAndFlow:
    def test_coinbase_pays_pool(self):
        economy, pool, _user = _tiny_economy()
        block = economy.mine_block()
        assert block.coinbase.outputs[0].value == block_subsidy(0)
        assert pool.wallet.balance == block_subsidy(0)

    def test_no_miner_raises(self):
        economy = Economy(EconomyParams(n_blocks=5))
        with pytest.raises(RuntimeError):
            economy.mine_block()

    def test_submit_moves_coins_between_wallets(self):
        economy, pool, user = _tiny_economy()
        economy.mine_block()
        destination = user.wallet.fresh_address()
        built = build_payment(
            pool.wallet, [(destination, 10 * COIN)], fee=1000, rng=pool.rng
        )
        tx = economy.submit(built, pool.wallet)
        assert user.wallet.balance == 10 * COIN
        assert tx in economy.mempool
        record = economy.change_truth[tx.txid]
        assert record.change_address == built.change_address
        block = economy.mine_block()
        # fee flows into the block reward
        assert block.coinbase.outputs[0].value == block_subsidy(1) + 1000

    def test_ground_truth_tracks_ownership(self):
        economy, pool, user = _tiny_economy()
        address = user.wallet.fresh_address()
        assert economy.ground_truth.owner_of(address) == "tester"
        assert economy.wallet_of_address(address) is user.wallet

    def test_run_produces_valid_chain(self):
        economy, _pool, _user = _tiny_economy()
        economy.run()
        assert len(economy.blocks) == 30
        report = validate_chain(
            economy.blocks, halving_interval=economy.params.halving_interval
        )
        assert report.ok, report.problems[:3]


class TestDeterminism:
    def test_same_seed_same_chain(self):
        world_a = scenarios.micro_economy(seed=99, n_blocks=60)
        world_b = scenarios.micro_economy(seed=99, n_blocks=60)
        hashes_a = [b.hash for b in world_a.blocks]
        hashes_b = [b.hash for b in world_b.blocks]
        assert hashes_a == hashes_b

    def test_different_seed_different_chain(self):
        world_a = scenarios.micro_economy(seed=1, n_blocks=60)
        world_b = scenarios.micro_economy(seed=2, n_blocks=60)
        assert [b.hash for b in world_a.blocks] != [b.hash for b in world_b.blocks]


class TestStepHooks:
    def test_hooks_run_each_block(self):
        economy, _pool, _user = _tiny_economy()
        heights = []
        economy.add_step_hook(lambda eco, height: heights.append(height))
        economy.run(5)
        assert heights == [0, 1, 2, 3, 4]

"""Transaction builder: change idioms, fees, signing."""

import random

import pytest

from repro.chain import script
from repro.chain.model import COIN, OutPoint
from repro.simulation.builder import (
    CHANGE_FIXED,
    CHANGE_FRESH,
    CHANGE_NONE,
    CHANGE_RECENT,
    CHANGE_REUSE,
    CHANGE_SELF,
    DUST,
    build_payment,
    build_sweep,
    choose_change_kind,
)
from repro.simulation.params import ChangePolicy
from repro.simulation.wallet import Wallet


def _funded_wallet(values=(5 * COIN, 3 * COIN)):
    wallet = Wallet("builder-test", rng=random.Random(7))
    address = wallet.fresh_address()
    for i, value in enumerate(values, start=1):
        wallet.credit(OutPoint(bytes([i]) * 32, 0), value, address)
    return wallet, address


RECIPIENT = Wallet("recipient").fresh_address()


class TestChangeKinds:
    def test_fresh_change(self):
        wallet, _funding = _funded_wallet()
        built = build_payment(
            wallet, [(RECIPIENT, COIN)], fee=1000, change_kind=CHANGE_FRESH
        )
        assert built.change_kind == CHANGE_FRESH
        assert built.change_address in wallet.change_addresses
        assert built.fee == 1000
        assert built.tx.total_output_value == sum(
            c.value for c in built.spent_coins
        ) - 1000

    def test_self_change(self):
        wallet, funding = _funded_wallet()
        built = build_payment(
            wallet, [(RECIPIENT, COIN)], change_kind=CHANGE_SELF
        )
        assert built.change_address == funding

    def test_reuse_change(self):
        wallet, funding = _funded_wallet()
        built = build_payment(
            wallet, [(RECIPIENT, COIN)], change_kind=CHANGE_REUSE
        )
        assert built.change_address == funding  # only receive address

    def test_recent_change_falls_back_to_fresh_first_time(self):
        wallet, _funding = _funded_wallet()
        built = build_payment(
            wallet, [(RECIPIENT, COIN)], change_kind=CHANGE_RECENT
        )
        assert built.change_kind == CHANGE_FRESH
        second = build_payment(
            wallet, [(RECIPIENT, COIN)], change_kind=CHANGE_RECENT
        )
        assert second.change_address == built.change_address

    def test_fixed_change_address(self):
        wallet, _funding = _funded_wallet()
        hot = wallet.fresh_address(kind="hot")
        built = build_payment(
            wallet, [(RECIPIENT, COIN)], change_address=hot
        )
        assert built.change_kind == CHANGE_FIXED
        assert built.change_address == hot

    def test_fixed_change_must_be_owned(self):
        wallet, _funding = _funded_wallet()
        with pytest.raises(ValueError):
            build_payment(wallet, [(RECIPIENT, COIN)], change_address=RECIPIENT)

    def test_exact_spend_no_change(self):
        wallet, _funding = _funded_wallet(values=(COIN,))
        built = build_payment(
            wallet,
            [(RECIPIENT, COIN - 500)],
            fee=500,
            change_kind=CHANGE_NONE,
        )
        assert built.change_address is None
        assert len(built.tx.outputs) == 1

    def test_none_with_change_falls_back_to_fresh(self):
        wallet, _funding = _funded_wallet()
        built = build_payment(
            wallet, [(RECIPIENT, COIN)], change_kind=CHANGE_NONE
        )
        assert built.change_kind == CHANGE_FRESH
        assert built.change_address is not None

    def test_dust_change_folded_into_fee(self):
        wallet, _funding = _funded_wallet(values=(COIN,))
        built = build_payment(
            wallet,
            [(RECIPIENT, COIN - 600 - DUST)],
            fee=600,
            change_kind=CHANGE_FRESH,
        )
        assert built.change_address is None
        assert built.fee == 600 + DUST

    def test_unknown_kind_rejected(self):
        wallet, _funding = _funded_wallet()
        with pytest.raises(ValueError):
            build_payment(wallet, [(RECIPIENT, COIN)], change_kind="bogus")


class TestValidation:
    def test_empty_payments_rejected(self):
        wallet, _funding = _funded_wallet()
        with pytest.raises(ValueError):
            build_payment(wallet, [])

    def test_non_positive_payment_rejected(self):
        wallet, _funding = _funded_wallet()
        with pytest.raises(ValueError):
            build_payment(wallet, [(RECIPIENT, 0)])

    def test_negative_fee_rejected(self):
        wallet, _funding = _funded_wallet()
        with pytest.raises(ValueError):
            build_payment(wallet, [(RECIPIENT, COIN)], fee=-1)

    def test_pinned_coins_must_cover(self):
        wallet, _funding = _funded_wallet(values=(COIN,))
        coins = wallet.coins()
        with pytest.raises(ValueError):
            build_payment(wallet, [(RECIPIENT, 2 * COIN)], coins=coins)


class TestSigning:
    def test_inputs_carry_verifiable_signatures(self):
        wallet, funding = _funded_wallet()
        built = build_payment(wallet, [(RECIPIENT, COIN)])
        for txin, coin in zip(built.tx.inputs, built.spent_coins):
            signature, pubkey = script.parse_sig_script(txin.script_sig)
            keypair = wallet.key_for(coin.address)
            assert pubkey == keypair.pubkey


class TestSweep:
    def test_sweep_all_coins(self):
        wallet, _funding = _funded_wallet()
        destination = wallet.fresh_address(kind="hot")
        built = build_sweep(wallet, destination, fee=1000)
        assert len(built.tx.outputs) == 1
        assert built.tx.outputs[0].value == 8 * COIN - 1000
        assert built.change_address is None

    def test_sweep_requires_coins(self):
        wallet = Wallet("empty")
        with pytest.raises(ValueError):
            build_sweep(wallet, wallet.fresh_address())

    def test_sweep_fee_must_be_covered(self):
        wallet, _funding = _funded_wallet(values=(100,))
        with pytest.raises(ValueError):
            build_sweep(wallet, wallet.fresh_address(), fee=200)


class TestChoosePolicy:
    def test_distribution_roughly_matches_policy(self):
        policy = ChangePolicy(fresh=0.5, self_change=0.3, reuse=0.1, recent=0.1)
        rng = random.Random(42)
        counts = {}
        for _ in range(4000):
            kind = choose_change_kind(policy, rng)
            counts[kind] = counts.get(kind, 0) + 1
        assert abs(counts[CHANGE_FRESH] / 4000 - 0.5) < 0.05
        assert abs(counts[CHANGE_SELF] / 4000 - 0.3) < 0.05

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            ChangePolicy(fresh=0.9, self_change=0.3, reuse=0.1, recent=0.0)
        with pytest.raises(ValueError):
            ChangePolicy(fresh=-0.1, self_change=0.0, reuse=0.0, recent=0.0)

"""Ground-truth registry semantics."""

import pytest

from repro.simulation.ground_truth import GroundTruth


def _registry():
    gt = GroundTruth()
    gt.register_entity("Mt Gox", "exchanges")
    gt.register_entity("alice", "users")
    gt.register_address("1gox1", "Mt Gox")
    gt.register_address("1gox2", "Mt Gox")
    gt.register_address("1alice", "alice")
    return gt


class TestRegistration:
    def test_owner_lookup(self):
        gt = _registry()
        assert gt.owner_of("1gox1") == "Mt Gox"
        assert gt.owner_of("1nobody") is None

    def test_category_lookup(self):
        gt = _registry()
        assert gt.category_of("Mt Gox") == "exchanges"
        assert gt.category_of_address("1alice") == "users"
        assert gt.category_of("ghost") is None

    def test_unknown_entity_rejected(self):
        gt = _registry()
        with pytest.raises(KeyError):
            gt.register_address("1x", "ghost")

    def test_reassignment_rejected(self):
        gt = _registry()
        with pytest.raises(ValueError):
            gt.register_address("1gox1", "alice")

    def test_category_conflict_rejected(self):
        gt = _registry()
        with pytest.raises(ValueError):
            gt.register_entity("Mt Gox", "vendors")

    def test_idempotent_reregistration_ok(self):
        gt = _registry()
        gt.register_entity("Mt Gox", "exchanges")
        gt.register_address("1gox1", "Mt Gox")


class TestQueries:
    def test_same_owner(self):
        gt = _registry()
        assert gt.same_owner("1gox1", "1gox2")
        assert not gt.same_owner("1gox1", "1alice")
        assert not gt.same_owner("1unknown", "1unknown")

    def test_addresses_of(self):
        gt = _registry()
        assert gt.addresses_of("Mt Gox") == {"1gox1", "1gox2"}
        assert gt.addresses_of("ghost") == frozenset()

    def test_entities_in_category(self):
        gt = _registry()
        assert gt.entities_in_category("exchanges") == ["Mt Gox"]
        assert gt.entities_in_category("nothing") == []

    def test_true_partition(self):
        gt = _registry()
        partition = gt.true_partition()
        assert partition["Mt Gox"] == {"1gox1", "1gox2"}
        assert len(partition) == 2

    def test_counts(self):
        gt = _registry()
        assert gt.address_count == 3
        assert gt.entity_count == 2

"""Canned worlds: structure and lifecycle checks (uses shared fixtures)."""

from repro.chain.model import COIN
from repro.chain.validation import validate_chain
from repro.simulation.params import DICE_GAMES


class TestMicroWorld:
    def test_chain_validates(self, micro_world):
        assert validate_chain(micro_world.blocks).ok

    def test_roster_registered(self, micro_world):
        gt = micro_world.ground_truth
        assert gt.category_of("Mt Gox") == "exchanges"
        assert gt.category_of("Satoshi Dice") == "gambling"
        assert gt.category_of("Silk Road") == "vendors"

    def test_users_active(self, micro_world):
        index = micro_world.index
        assert index.tx_count > len(micro_world.blocks)  # beyond coinbases


class TestDefaultWorld:
    def test_full_roster_present(self, default_world):
        gt = default_world.ground_truth
        for name in ("Deepbit", "Instawallet", "BTC-e", "BitInstant",
                     "Coinabul", "Seals with Clubs", "Wikileaks",
                     "Bitcoin Savings & Trust"):
            assert gt.category_of(name) is not None, name

    def test_attack_installed(self, default_world):
        attack = default_world.extras["attack"]
        assert attack.stats.transactions_made > 50
        assert attack.tags.address_count > 50

    def test_attack_tags_are_accurate(self, default_world):
        """Own-transaction tags must agree with ground truth (the
        gateway case maps vendors to Bitpay, which ground truth also
        does, since the gateway owns the sale address)."""
        gt = default_world.ground_truth
        attack = default_world.extras["attack"]
        wrong = [
            tag
            for tag in attack.tags.all_tags()
            if gt.owner_of(tag.address) != tag.entity
        ]
        assert wrong == []

    def test_dice_send_back_happens(self, default_world):
        """Some address must receive a payment whose inputs are all
        dice-game addresses (the send-back idiom)."""
        gt = default_world.ground_truth
        index = default_world.index
        dice_addresses = set()
        for name in DICE_GAMES:
            dice_addresses |= gt.addresses_of(name)
        found = False
        for tx, _loc in index.iter_transactions():
            if tx.is_coinbase:
                continue
            senders = index.input_addresses(tx)
            if senders and all(s in dice_addresses for s in senders):
                recipients = [
                    o.address for o in tx.outputs
                    if o.address and o.address not in dice_addresses
                ]
                if recipients:
                    found = True
                    break
        assert found


class TestSilkroadWorld:
    def test_hoard_lifecycle_completed(self, silkroad_world):
        hoard = silkroad_world.extras["hoard"]
        state = hoard.state
        assert state.hoard_address is not None
        assert len(state.deposits) >= 5
        assert len(state.withdrawal_addresses) >= 4
        assert state.final_address is not None
        assert len(state.chain_start_addresses) == 3
        assert all(chain.done for chain in state.chains)

    def test_hoard_received_aggregate_deposits(self, silkroad_world):
        hoard = silkroad_world.extras["hoard"]
        index = silkroad_world.index
        deposit_tx = index.tx(hoard.state.deposits[0])
        assert len(deposit_tx.inputs) >= 2  # funds of many addresses combined
        assert len(deposit_tx.outputs) == 1

    def test_hoard_drained_after_dissolution(self, silkroad_world):
        hoard = silkroad_world.extras["hoard"]
        record = silkroad_world.index.address(hoard.state.hoard_address)
        assert record.balance == 0

    def test_chains_peel_to_services(self, silkroad_world):
        hoard = silkroad_world.extras["hoard"]
        labels = {
            record.recipient_label
            for chain in hoard.state.chains
            for record in chain.records
        }
        assert "Mt Gox" in labels  # the Table 2 headliner

    def test_chain_validates(self, silkroad_world):
        assert validate_chain(silkroad_world.blocks).ok

"""Tag store semantics: confidence tiers, conflicts, merging."""

import pytest

from repro.tagging.tags import (
    SOURCE_MANUAL,
    SOURCE_OWN,
    SOURCE_PUBLIC,
    Tag,
    TagStore,
    make_tag,
)


class TestTag:
    def test_default_confidences_ordered(self):
        own = make_tag("1a", "X", SOURCE_OWN)
        manual = make_tag("1a", "X", SOURCE_MANUAL)
        public = make_tag("1a", "X", SOURCE_PUBLIC)
        assert own.confidence > manual.confidence > public.confidence

    def test_confidence_bounds(self):
        with pytest.raises(ValueError):
            Tag("1a", "X", SOURCE_OWN, confidence=0.0)
        with pytest.raises(ValueError):
            Tag("1a", "X", SOURCE_OWN, confidence=1.5)


class TestStore:
    def test_lookup(self):
        store = TagStore([make_tag("1a", "Mt Gox")])
        assert "1a" in store
        assert store.entity_of("1a") == "Mt Gox"
        assert store.entity_of("1b") is None
        assert store.address_count == 1

    def test_conflict_resolution_prefers_confidence(self):
        store = TagStore(
            [
                make_tag("1a", "WrongService", SOURCE_PUBLIC),
                make_tag("1a", "RightService", SOURCE_OWN),
            ]
        )
        assert store.entity_of("1a") == "RightService"
        assert store.conflicts() == ["1a"]

    def test_as_mapping_confidence_filter(self):
        store = TagStore(
            [
                make_tag("1a", "A", SOURCE_OWN),
                make_tag("1b", "B", SOURCE_PUBLIC),
            ]
        )
        assert store.as_mapping() == {"1a": "A", "1b": "B"}
        assert store.as_mapping(min_confidence=0.9) == {"1a": "A"}

    def test_addresses_of(self):
        store = TagStore(
            [make_tag("1a", "A"), make_tag("1b", "A"), make_tag("1c", "C")]
        )
        assert store.addresses_of("A") == {"1a", "1b"}

    def test_entities(self):
        store = TagStore([make_tag("1a", "A"), make_tag("1b", "B")])
        assert store.entities() == {"A", "B"}

    def test_merged_with(self):
        a = TagStore([make_tag("1a", "A")])
        b = TagStore([make_tag("1b", "B")])
        merged = a.merged_with(b)
        assert merged.address_count == 2
        assert a.address_count == 1  # originals untouched

    def test_len_counts_all_tags(self):
        store = TagStore(
            [make_tag("1a", "A", SOURCE_OWN), make_tag("1a", "A", SOURCE_PUBLIC)]
        )
        assert len(store) == 2
        assert store.address_count == 1

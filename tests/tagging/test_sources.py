"""Public tag crawl: coverage, mislabeling, determinism."""

import pytest

from repro.tagging.sources import PublicTagCrawl, manual_theft_tags
from repro.tagging.tags import SOURCE_PUBLIC


class TestCrawl:
    def test_yields_public_tags(self, micro_world):
        store = PublicTagCrawl(micro_world, seed=4).crawl()
        assert store.address_count > 0
        assert all(t.source == SOURCE_PUBLIC for t in store.all_tags())

    def test_deterministic(self, micro_world):
        a = PublicTagCrawl(micro_world, seed=4).crawl()
        b = PublicTagCrawl(micro_world, seed=4).crawl()
        assert a.as_mapping() == b.as_mapping()

    def test_mislabeling_injected(self, micro_world):
        gt = micro_world.ground_truth
        store = PublicTagCrawl(
            micro_world, seed=4, mislabel_rate=0.5, coverage=0.3
        ).crawl()
        wrong = sum(
            1
            for t in store.all_tags()
            if gt.owner_of(t.address) != t.entity
        )
        assert wrong > 0

    def test_zero_mislabel_rate_is_clean(self, micro_world):
        gt = micro_world.ground_truth
        store = PublicTagCrawl(micro_world, seed=4, mislabel_rate=0.0).crawl()
        assert all(
            gt.owner_of(t.address) == t.entity for t in store.all_tags()
        )

    def test_criminals_not_self_advertised(self, micro_world):
        gt = micro_world.ground_truth
        store = PublicTagCrawl(micro_world, seed=4, mislabel_rate=0.0).crawl()
        assert not any(
            gt.category_of(t.entity) == "crime" for t in store.all_tags()
        )

    def test_bad_rate_rejected(self, micro_world):
        with pytest.raises(ValueError):
            PublicTagCrawl(micro_world, mislabel_rate=2.0)


class TestManualTheftTags:
    def test_empty_without_thefts(self, micro_world):
        assert len(manual_theft_tags(micro_world)) == 0

"""Cluster naming: propagation, conflicts, coverage accounting."""

from repro.core.clustering import Clustering
from repro.core.union_find import UnionFind
from repro.tagging.naming import ClusterNaming
from repro.tagging.tags import SOURCE_OWN, SOURCE_PUBLIC, TagStore, make_tag


def _clustering(groups):
    uf = UnionFind()
    for group in groups:
        uf.union_all(group)
    return Clustering(uf=uf, heuristics="test")


class TestNaming:
    def test_transitive_taint(self):
        clustering = _clustering([["a1", "a2", "a3"]])
        tags = TagStore([make_tag("a1", "Mt Gox")])
        naming = ClusterNaming(clustering, tags)
        assert naming.name_of_address("a3") == "Mt Gox"
        assert naming.name_of_address("unknown") is None

    def test_confidence_weighted_vote(self):
        clustering = _clustering([["x1", "x2", "x3"]])
        tags = TagStore(
            [
                make_tag("x1", "Noise", SOURCE_PUBLIC),
                make_tag("x2", "Signal", SOURCE_OWN),
            ]
        )
        naming = ClusterNaming(clustering, tags)
        cluster = naming.named_clusters()[0]
        assert cluster.name == "Signal"
        assert cluster.has_conflict
        assert "Noise" in cluster.conflicting_entities

    def test_many_public_tags_outvote_one(self):
        clustering = _clustering([["y1", "y2", "y3", "y4"]])
        tags = TagStore(
            [
                make_tag("y1", "Popular", SOURCE_PUBLIC),
                make_tag("y2", "Popular", SOURCE_PUBLIC),
                make_tag("y3", "Popular", SOURCE_PUBLIC),
                make_tag("y4", "Lonely", SOURCE_PUBLIC),
            ]
        )
        naming = ClusterNaming(clustering, tags)
        assert naming.named_clusters()[0].name == "Popular"

    def test_clusters_named_per_entity(self):
        clustering = _clustering([["g1", "g2"], ["h1", "h2"]])
        tags = TagStore([make_tag("g1", "Gox"), make_tag("h1", "Gox")])
        naming = ClusterNaming(clustering, tags)
        assert len(naming.clusters_named("Gox")) == 2

    def test_addresses_of_entity(self):
        clustering = _clustering([["k1", "k2"], ["m1"]])
        tags = TagStore([make_tag("k1", "K")])
        naming = ClusterNaming(clustering, tags)
        assert naming.addresses_of("K") == {"k1", "k2"}
        assert naming.addresses_of("nobody") == set()

    def test_report_amplification(self):
        clustering = _clustering([["p1", "p2", "p3", "p4", "p5"]])
        tags = TagStore([make_tag("p1", "P")])
        report = ClusterNaming(clustering, tags).report()
        assert report.named_cluster_count == 1
        assert report.named_address_count == 5
        assert report.hand_tagged_address_count == 1
        assert report.amplification == 5.0

    def test_naming_on_simulated_world_is_accurate(self, default_view):
        """Propagated names should rarely contradict ground truth."""
        naming = default_view.naming
        gt = default_view.world.ground_truth
        checked = wrong = 0
        for cluster in naming.named_clusters():
            members = [
                a
                for a in default_view.clustering.uf.iter_items()
                if default_view.clustering.uf.find(a) == cluster.root
            ]
            for address in members[:50]:
                owner = gt.owner_of(address)
                if owner is None:
                    continue
                checked += 1
                if owner != cluster.name:
                    wrong += 1
        assert checked > 100
        assert wrong / checked < 0.05

"""Re-identification attack behaviour on the default world."""

from repro.tagging.tags import SOURCE_OWN


class TestAttack:
    def test_engages_whole_roster(self, default_world):
        attack = default_world.extras["attack"]
        roster = default_world.extras["roster"]
        all_services = {
            actor.name for actors in roster.values() for actor in actors
        }
        engaged = attack.stats.services_engaged
        missing = all_services - engaged
        assert len(missing) <= 2, f"unengaged services: {missing}"

    def test_tags_are_own_source(self, default_world):
        attack = default_world.extras["attack"]
        assert all(t.source == SOURCE_OWN for t in attack.tags.all_tags())

    def test_deposit_and_payout_tagging(self, default_world):
        attack = default_world.extras["attack"]
        assert attack.stats.deposits > 10
        assert attack.stats.payouts_observed > 10
        # Payout observation tags *input* addresses of service payments:
        # so we must have more tagged addresses than deposits alone.
        assert attack.tags.address_count > attack.stats.deposits

    def test_mining_pools_tagged_via_payouts(self, default_world):
        """Pool payout inputs get tagged with the pool's name."""
        attack = default_world.extras["attack"]
        gt = default_world.ground_truth
        pool_tags = [
            t
            for t in attack.tags.all_tags()
            if gt.category_of(t.entity) == "mining"
        ]
        assert pool_tags, "no pool addresses tagged"

    def test_dice_bet_addresses_tagged(self, default_world):
        attack = default_world.extras["attack"]
        entities = attack.tags.entities()
        assert "Satoshi Dice" in entities

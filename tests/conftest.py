"""Shared fixtures: simulated worlds are expensive, so they are built
once per session and shared read-only across tests.

Also registers the hypothesis settings profiles: ``default`` (library
defaults — the per-commit CI budget) and ``nightly`` (many more
examples, no deadline — the scheduled workflow's deep sweep over the
property suites).  Select with ``HYPOTHESIS_PROFILE=nightly``.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.pipeline import AnalystView
from repro.simulation import scenarios

settings.register_profile("default", settings())
settings.register_profile(
    "nightly",
    max_examples=400,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(scope="session")
def micro_world():
    """A small full-stack world (~150 blocks, trimmed roster)."""
    return scenarios.micro_economy(seed=11)


@pytest.fixture(scope="session")
def default_world():
    """The full Table 1 roster world used by the §3/§4 experiments."""
    return scenarios.default_economy(seed=5, n_blocks=400, n_users=40)


@pytest.fixture(scope="session")
def default_view(default_world):
    """Analyst pipeline over the default world."""
    return AnalystView.build(default_world)


@pytest.fixture(scope="session")
def silkroad_world():
    """A shortened Silk Road world (hoard + 3 peel chains)."""
    return scenarios.silkroad_world(seed=3, n_blocks=900, n_users=50, chain_hops=60)


@pytest.fixture(scope="session")
def silkroad_view(silkroad_world):
    return AnalystView.build(silkroad_world)

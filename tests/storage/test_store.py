"""StateStore lifecycle: capture, discovery, retention, recovery."""

import pytest

from repro import experiments
from repro.chain.blockfile import BlockFileWriter
from repro.chain.index import ChainIndex
from repro.obs import MetricsRegistry
from repro.service import ForensicsService
from repro.simulation import scenarios
from repro.storage import (
    COMPONENTS,
    OPTIONAL_COMPONENTS,
    NoSnapshotError,
    SnapshotIntegrityError,
    SnapshotPolicy,
    StateStore,
    StorageError,
    read_manifest,
)


@pytest.fixture(scope="module")
def world():
    return scenarios.micro_economy(seed=13, n_blocks=50, n_users=8)


@pytest.fixture()
def served(world):
    """A cold service streaming the world's chain, with watched thefts."""
    index = ChainIndex()
    service = ForensicsService(index, tags=None)
    for block in world.blocks[:30]:
        index.add_block(block)
    experiments.watch_synthetic_thefts(service)
    for block in world.blocks[30:]:
        index.add_block(block)
    return service


class TestSnapshotCapture:
    def test_snapshot_writes_manifest_and_all_segments(self, tmp_path, served):
        store = StateStore(tmp_path)
        path = store.snapshot(served)
        manifest = read_manifest(path)
        assert manifest.height == served.height
        assert set(manifest.segments) == set(COMPONENTS + OPTIONAL_COMPONENTS)
        for record in manifest.segments.values():
            assert (path / record["file"]).stat().st_size == record["bytes"]
        assert manifest.chain["tx_count"] == served.index.tx_count

    def test_empty_service_rejected(self, tmp_path):
        service = ForensicsService(ChainIndex(), tags=None)
        with pytest.raises(StorageError, match="no blocks"):
            StateStore(tmp_path).snapshot(service)

    def test_detached_component_rejected(self, tmp_path, world):
        index = ChainIndex()
        service = ForensicsService(index, tags=None)
        for block in world.blocks[:5]:
            index.add_block(block)
        service.balances.detach()
        index.add_block(world.blocks[5])
        with pytest.raises(StorageError, match="balances"):
            StateStore(tmp_path).snapshot(service)

    def test_re_snapshot_same_height_replaces(self, tmp_path, served):
        store = StateStore(tmp_path)
        first = store.snapshot(served)
        second = store.snapshot(served)
        assert first == second
        assert len(store.snapshots()) == 1

    def test_no_scratch_left_behind(self, tmp_path, served):
        store = StateStore(tmp_path)
        store.snapshot(served)
        assert not list(tmp_path.glob(".tmp-*"))


class TestDiscoveryAndRetention:
    def test_snapshots_sorted_and_invalid_skipped(self, tmp_path, world):
        store = StateStore(tmp_path)
        index = ChainIndex()
        service = ForensicsService(index, tags=None)
        for block in world.blocks[:10]:
            index.add_block(block)
        store.snapshot(service)
        for block in world.blocks[10:20]:
            index.add_block(block)
        store.snapshot(service)
        (tmp_path / "snap-99999999").mkdir()  # aborted: no manifest
        heights = [m.height for m in store.snapshots()]
        assert heights == [9, 19]
        assert store.latest().height == 19

    def test_prune_keeps_newest(self, tmp_path, world):
        store = StateStore(tmp_path)
        index = ChainIndex()
        service = ForensicsService(index, tags=None)
        for i, block in enumerate(world.blocks[:30]):
            index.add_block(block)
            if (i + 1) % 10 == 0:
                store.snapshot(service)
        assert [m.height for m in store.snapshots()] == [9, 19, 29]
        removed = store.prune(2)
        assert [m.height for m in store.snapshots()] == [19, 29]
        assert len(removed) == 1
        with pytest.raises(ValueError):
            store.prune(0)

    def test_policy_snapshots_every_n_and_retains_k(self, tmp_path, world):
        index = ChainIndex()
        service = ForensicsService(index, tags=None)
        store = StateStore(tmp_path)
        policy = SnapshotPolicy(store, every=10, retain=2).attach(service)
        for block in world.blocks:
            index.add_block(block)
        assert policy.snapshots_taken == 5  # heights 9, 19, 29, 39, 49
        assert [m.height for m in store.snapshots()] == [39, 49]
        policy.detach()

    def test_policy_attach_twice_rejected(self, tmp_path, world):
        index = ChainIndex()
        service = ForensicsService(index, tags=None)
        policy = SnapshotPolicy(StateStore(tmp_path), every=10).attach(service)
        with pytest.raises(StorageError, match="attached"):
            policy.attach(service)


class TestRecovery:
    def test_restore_empty_store_raises(self, tmp_path):
        with pytest.raises(NoSnapshotError):
            StateStore(tmp_path).restore()

    def test_restore_round_trips_stats_and_queries(self, tmp_path, served, world):
        store = StateStore(tmp_path)
        store.snapshot(served)
        restored = store.restore()
        assert restored.height == served.height
        assert restored.index.tx_count == served.index.tx_count
        assert restored.index.address_count == served.index.address_count
        queries = experiments.generate_query_workload(
            served, n_queries=80, seed=5
        )
        assert served.answer_many(queries) == restored.answer_many(queries)

    def test_restore_missing_segment_fails_closed(self, tmp_path, served):
        store = StateStore(tmp_path)
        path = store.snapshot(served)
        (path / "engine.seg").unlink()
        with pytest.raises(SnapshotIntegrityError):
            store.restore()

    def test_restore_corrupt_segment_fails_closed(self, tmp_path, served):
        store = StateStore(tmp_path)
        path = store.snapshot(served)
        target = path / "balances.seg"
        raw = bytearray(target.read_bytes())
        raw[len(raw) // 2] ^= 0x10
        target.write_bytes(bytes(raw))
        with pytest.raises(SnapshotIntegrityError):
            store.restore()

    def test_warm_start_tail_replays_to_tip(self, tmp_path, world):
        blocks_dir = tmp_path / "blocks"
        BlockFileWriter(blocks_dir).write_chain(world.blocks)
        index = ChainIndex()
        service = ForensicsService(index, tags=None)
        store = StateStore(tmp_path / "snapshots")
        for block in world.blocks[:35]:
            index.add_block(block)
        store.snapshot(service)
        warm = store.warm_start(blocks_dir)
        assert warm.snapshot_height == 34
        assert warm.tail_blocks == len(world.blocks) - 35
        assert warm.height == len(world.blocks) - 1
        assert warm.service.index.tx_count == world.index.tx_count

    def test_restored_service_keeps_streaming(self, tmp_path, world):
        index = ChainIndex()
        service = ForensicsService(index, tags=None)
        store = StateStore(tmp_path)
        for block in world.blocks[:20]:
            index.add_block(block)
        store.snapshot(service)
        restored = store.restore()
        for block in world.blocks[20:]:
            restored.index.add_block(block)
        assert restored.height == world.index.height
        assert restored.engine.height == world.index.height
        assert restored.balances.height == world.index.height


class TestWarmServiceWorkflow:
    """The --state-dir workflow behind `repro serve`/`repro query`."""

    def test_cold_then_warm_then_mid_chain(self, tmp_path, world):
        first = experiments.warm_service(world, tmp_path)
        assert first.cold and first.snapshot_height is None
        assert first.service.height == world.index.height

        second = experiments.warm_service(world, tmp_path)
        assert not second.cold
        assert second.snapshot_height == world.index.height
        assert second.tail_blocks == 0

        # Simulate a mid-chain restart: regress the newest snapshot to a
        # prefix by snapshotting a prefix service into the same store.
        import shutil

        for manifest in second.store.snapshots():
            shutil.rmtree(manifest.directory)
        prefix_index = ChainIndex()
        prefix_service = ForensicsService(prefix_index, tags=None)
        for block in world.blocks[:25]:
            prefix_index.add_block(block)
        second.store.snapshot(prefix_service)

        third = experiments.warm_service(world, tmp_path)
        assert not third.cold
        assert third.snapshot_height == 24
        assert third.tail_blocks == world.index.height - 24
        assert third.service.height == world.index.height

    def test_mismatched_chain_fails_closed(self, tmp_path):
        world_a = scenarios.micro_economy(seed=1, n_blocks=20, n_users=5)
        world_b = scenarios.micro_economy(seed=2, n_blocks=20, n_users=5)
        experiments.warm_service(world_a, tmp_path)
        import shutil

        shutil.rmtree(tmp_path / "blocks")
        BlockFileWriter(tmp_path / "blocks").write_chain(world_b.blocks)
        with pytest.raises(StorageError, match="different"):
            experiments.warm_service(world_b, tmp_path)

    def test_mismatched_longer_world_rejected_before_any_write(self, tmp_path):
        """A foreign world must be rejected *before* its blocks are
        appended — otherwise the original state dir is corrupted even
        though the call raised."""
        world_a = scenarios.micro_economy(seed=1, n_blocks=20, n_users=5)
        world_b = scenarios.micro_economy(seed=2, n_blocks=30, n_users=5)
        experiments.warm_service(world_a, tmp_path)
        before = {
            path.name: path.read_bytes()
            for path in (tmp_path / "blocks").glob("blk*.dat")
        }
        with pytest.raises(StorageError, match="different"):
            experiments.warm_service(world_b, tmp_path)
        after = {
            path.name: path.read_bytes()
            for path in (tmp_path / "blocks").glob("blk*.dat")
        }
        assert after == before  # nothing was appended
        # The original world still warm-starts cleanly.
        again = experiments.warm_service(world_a, tmp_path)
        assert not again.cold
        assert again.service.height == world_a.index.height

    def test_checkpoint_persists_new_taint_cases(self, tmp_path, world):
        first = experiments.warm_service(world, tmp_path)
        experiments.watch_synthetic_thefts(first.service)
        labels = first.service.taint.labels
        assert labels
        first.checkpoint()
        second = experiments.warm_service(world, tmp_path)
        assert second.service.taint.labels == labels
        for label in labels:
            assert (
                second.service.trace_taint(label)
                == first.service.trace_taint(label)
            )


class TestClockAndTelemetry:
    """``created_unix`` comes from the injected wall clock; durations are
    monotonic measurements; the metrics registry sees every capture,
    recovery, and integrity failure."""

    def test_created_unix_pinned_by_injected_clock(self, tmp_path, served):
        store = StateStore(tmp_path, clock=lambda: 1_234_567_890.5)
        path = store.snapshot(served)
        assert read_manifest(path).created_unix == 1_234_567_890.5

    def test_duration_fields_recorded(self, tmp_path, served):
        store = StateStore(tmp_path)
        assert store.last_snapshot_seconds is None
        assert store.last_restore_seconds is None
        store.snapshot(served)
        assert store.last_snapshot_seconds > 0.0
        assert store.last_restore_seconds is None
        store.restore()
        assert store.last_restore_seconds > 0.0

    def test_snapshot_and_restore_metrics(self, tmp_path, served):
        metrics = MetricsRegistry()
        store = StateStore(tmp_path, metrics=metrics)
        path = store.snapshot(served)
        segment_bytes = sum(
            record["bytes"]
            for record in read_manifest(path).segments.values()
        )
        store.restore()
        snapshot = metrics.snapshot()
        assert snapshot["histograms"]["store.snapshot_seconds"]["count"] == 1
        assert snapshot["histograms"]["store.restore_seconds"]["count"] == 1
        assert snapshot["counters"]["store.snapshot_bytes"] == segment_bytes
        assert snapshot["counters"]["store.restore_bytes"] == segment_bytes
        kinds = [span["kind"] for span in metrics.flight.dump()]
        assert kinds == ["snapshot", "restore"]
        for span in metrics.flight.dump():
            assert span["height"] == served.height
            assert span["bytes"] == segment_bytes

    def test_integrity_failure_counted(self, tmp_path, served):
        metrics = MetricsRegistry()
        store = StateStore(tmp_path, metrics=metrics)
        path = store.snapshot(served)
        target = path / "engine.seg"
        raw = bytearray(target.read_bytes())
        raw[len(raw) // 2] ^= 0x10
        target.write_bytes(bytes(raw))
        with pytest.raises(SnapshotIntegrityError):
            store.restore()
        counters = metrics.snapshot()["counters"]
        assert counters["store.integrity_failures"] == 1
        # A failed restore records no duration or success telemetry.
        assert store.last_restore_seconds is None
        assert "store.restore_bytes" not in counters

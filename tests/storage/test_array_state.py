"""Array-backed durable state: bytes round-trips and legacy shapes.

The version-3 snapshot layout stores every dense per-id array as one
raw little-endian int64 buffer.  Three contracts are pinned here:

* **byte-equal round trip** — ``export_state`` → ``from_state`` →
  ``export_state`` reproduces the original payload bit for bit, for
  every array-backed component (union-find, balance/activity views,
  cluster aggregates);
* **legacy shapes restore** — the pre-columnar version-1/2 state dicts
  (plain Python lists, no ``version`` key) are still accepted by every
  ``from_state``, and restore to the same observable state;
* **manifest gate** — version-2 manifests stay readable alongside the
  current version 3; anything else fails closed.
"""

import json

import pytest

from repro.chain.index import ChainIndex
from repro.core.incremental import IncrementalClusteringEngine
from repro.core.union_find import IntUnionFind
from repro.service.aggregates import ClusterAggregateView, TOP_CLUSTER_METRICS
from repro.service.views import ActivityView, BalanceView
from repro.simulation import large_scale_blocks
from repro.storage.errors import SnapshotIntegrityError
from repro.storage.manifest import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    SUPPORTED_VERSIONS,
    read_manifest,
)


@pytest.fixture(scope="module")
def streamed():
    """One small high-merge chain streamed into every fold consumer."""
    index = ChainIndex()
    engine = IncrementalClusteringEngine(index)
    balances = BalanceView(index)
    activity = ActivityView(index)
    aggregates = ClusterAggregateView(index, engine=engine)
    for block in large_scale_blocks(30, seed=7):
        index.add_block(block)
    assert aggregates.cluster_count > 0  # force the flush
    return index, engine, balances, activity, aggregates


class TestByteEqualRoundTrip:
    def test_union_find(self, streamed):
        _index, engine, *_ = streamed
        state = engine._uf.export_state()
        assert isinstance(state["parent"], bytes)
        restored = IntUnionFind.from_state(state)
        assert restored.export_state() == state
        assert restored.component_sizes() == engine._uf.component_sizes()

    def test_balance_view(self, streamed):
        index, _engine, balances, *_ = streamed
        state = balances.export_state()
        assert state["version"] == 2
        assert isinstance(state["balances"], bytes)
        restored = BalanceView.from_state(index, state, follow=False)
        assert restored.export_state() == state

    def test_activity_view(self, streamed):
        index, _engine, _balances, activity, _aggregates = streamed
        state = activity.export_state()
        assert isinstance(state["tx_counts"], bytes)
        restored = ActivityView.from_state(index, state, follow=False)
        assert restored.export_state() == state

    def test_aggregate_view(self, streamed):
        index, engine, _balances, _activity, aggregates = streamed
        state = aggregates.export_state()
        assert isinstance(state["balance"], bytes)
        restored = ClusterAggregateView.from_state(
            index, state, engine=engine, follow=False
        )
        assert restored.export_state() == state
        for metric in TOP_CLUSTER_METRICS:
            assert restored.ranking(metric) == aggregates.ranking(metric)


class TestLegacyShapesRestore:
    """Version-1/2 snapshots carried Python lists; they must restore to
    the same observable state the bytes shape does."""

    def test_union_find_list_state(self, streamed):
        _index, engine, *_ = streamed
        uf = engine._uf
        legacy = {
            "parent": [uf._parent[i] for i in range(len(uf))],
            "size": [uf._size[i] for i in range(len(uf))],
            "components": uf.component_count,
            "log": [list(entry) for entry in uf.log_prefix(uf.checkpoint())],
        }
        restored = IntUnionFind.from_state(legacy)
        assert restored.component_sizes() == uf.component_sizes()
        assert restored.export_state() == uf.export_state()

    def test_union_find_rejects_misaligned_lists(self):
        with pytest.raises(ValueError):
            IntUnionFind.from_state(
                {"parent": [0, 1], "size": [1], "components": 2, "log": []}
            )

    def test_balance_view_v1_state(self, streamed):
        index, _engine, balances, *_ = streamed
        v1 = {
            "height": balances.height,
            "balances": balances._balances.tolist(),
            "events": [
                balances.events_at(h) for h in range(balances.height + 1)
            ],
            "coinbase": [
                balances.coinbase_at(h) for h in range(balances.height + 1)
            ],
            "supply": [
                balances.supply_at(h) for h in range(balances.height + 1)
            ],
        }
        restored = BalanceView.from_state(index, v1, follow=False)
        assert restored.export_state() == balances.export_state()

    def test_activity_view_v1_state(self, streamed):
        index, _engine, _balances, activity, _aggregates = streamed
        v1 = {
            "height": activity.height,
            "tx_counts": activity._tx_counts.tolist(),
            "first_seen": activity._first_seen.tolist(),
            "last_seen": activity._last_seen.tolist(),
        }
        restored = ActivityView.from_state(index, v1, follow=False)
        assert restored.export_state() == activity.export_state()

    def test_aggregate_view_v1_state(self, streamed):
        index, engine, _balances, _activity, aggregates = streamed
        uf = aggregates._uf
        v1 = {
            "height": aggregates.height,
            "uf": {
                "parent": [uf._parent[i] for i in range(len(uf))],
                "size": [uf._size[i] for i in range(len(uf))],
                "components": uf.component_count,
                "log": [
                    list(entry) for entry in uf.log_prefix(uf.checkpoint())
                ],
            },
            "balance": aggregates._balance.tolist(),
            "tx_count": aggregates._tx_count.tolist(),
            "first_seen": aggregates._first.tolist(),
            "last_seen": aggregates._last.tolist(),
            "min_member": aggregates._min_member.tolist(),
        }
        restored = ClusterAggregateView.from_state(
            index, v1, engine=engine, follow=False
        )
        assert restored.export_state() == aggregates.export_state()


class TestManifestVersionGate:
    def test_current_and_previous_versions_supported(self):
        assert MANIFEST_VERSION == 4
        assert SUPPORTED_VERSIONS == {2, 3, 4}

    def _snapshot_dir(self, tmp_path):
        from repro.service import ForensicsService
        from repro.storage import StateStore

        index = ChainIndex()
        service = ForensicsService(index, tags=None)
        for block in large_scale_blocks(4, seed=1):
            index.add_block(block)
        store = StateStore(tmp_path / "snapshots")
        return store.snapshot(service)

    def _rewrite_version(self, directory, version):
        path = directory / MANIFEST_NAME
        raw = json.loads(path.read_text())
        raw["format_version"] = version
        path.write_text(json.dumps(raw))

    def test_version_2_manifest_still_reads(self, tmp_path):
        directory = self._snapshot_dir(tmp_path)
        self._rewrite_version(directory, 2)
        assert read_manifest(directory).format_version == 2

    def test_unknown_version_fails_closed(self, tmp_path):
        directory = self._snapshot_dir(tmp_path)
        self._rewrite_version(directory, 99)
        with pytest.raises(SnapshotIntegrityError):
            read_manifest(directory)

"""Segment and manifest format: round-trip, versioning, fail-closed reads."""

import json

import pytest

from repro.storage import (
    SnapshotIntegrityError,
    SnapshotManifest,
    read_manifest,
    read_segment,
    write_manifest,
    write_segment,
)
from repro.storage.manifest import MANIFEST_NAME
from repro.storage.segments import SEGMENT_MAGIC, segment_filename


@pytest.fixture
def state():
    return {
        "version": 1,
        "numbers": list(range(100)),
        "pairs": [(i, bytes([i])) for i in range(20)],
        "table": {b"\x00" * 32: (3, 7)},
    }


class TestSegmentRoundtrip:
    def test_write_then_read(self, tmp_path, state):
        record = write_segment(tmp_path, "chain", state)
        path = tmp_path / record["file"]
        assert path.name == segment_filename("chain")
        assert path.stat().st_size == record["bytes"]
        loaded = read_segment(
            path, expected_name="chain", expected_sha256=record["sha256"]
        )
        assert loaded == state

    def test_plain_data_types_survive_exactly(self, tmp_path, state):
        record = write_segment(tmp_path, "chain", state)
        loaded = read_segment(tmp_path / record["file"])
        assert isinstance(loaded["pairs"][0], tuple)
        assert isinstance(loaded["numbers"], list)
        assert loaded["table"][b"\x00" * 32] == (3, 7)


class TestSegmentFailsClosed:
    def _write(self, tmp_path, state):
        record = write_segment(tmp_path, "chain", state)
        return tmp_path / record["file"], record

    def test_flipped_payload_bit(self, tmp_path, state):
        path, _record = self._write(tmp_path, state)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotIntegrityError, match="checksum"):
            read_segment(path)

    def test_truncated_file(self, tmp_path, state):
        path, _record = self._write(tmp_path, state)
        path.write_bytes(path.read_bytes()[:-40])
        with pytest.raises(SnapshotIntegrityError):
            read_segment(path)

    def test_wrong_magic(self, tmp_path, state):
        path, _record = self._write(tmp_path, state)
        raw = bytearray(path.read_bytes())
        assert raw[:4] == SEGMENT_MAGIC
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotIntegrityError, match="magic"):
            read_segment(path)

    def test_wrong_component_name(self, tmp_path, state):
        path, _record = self._write(tmp_path, state)
        with pytest.raises(SnapshotIntegrityError, match="component"):
            read_segment(path, expected_name="engine")

    def test_manifest_sha_mismatch(self, tmp_path, state):
        """A self-consistent segment swapped in from elsewhere is caught
        by the manifest's expected checksum."""
        path, _record = self._write(tmp_path, state)
        other_dir = tmp_path / "other"
        other_dir.mkdir()
        other = write_segment(other_dir, "chain", {"version": 1})
        with pytest.raises(SnapshotIntegrityError, match="manifest"):
            read_segment(path, expected_sha256=other["sha256"])


class TestManifest:
    def _manifest(self):
        return SnapshotManifest(
            height=41,
            chain={"tx_count": 10, "address_count": 4, "tip_timestamp": 99},
            segments={"chain": {"file": "chain.seg", "bytes": 1, "sha256": "ab"}},
            created_unix=1_700_000_000.0,
        )

    def test_roundtrip(self, tmp_path):
        write_manifest(tmp_path, self._manifest())
        loaded = read_manifest(tmp_path)
        assert loaded.height == 41
        assert loaded.chain["tx_count"] == 10
        assert loaded.segments["chain"]["file"] == "chain.seg"
        assert loaded.directory == tmp_path

    def test_missing_manifest_is_integrity_error(self, tmp_path):
        with pytest.raises(SnapshotIntegrityError, match="missing"):
            read_manifest(tmp_path)

    def test_unknown_format_version_rejected(self, tmp_path):
        write_manifest(tmp_path, self._manifest())
        path = tmp_path / MANIFEST_NAME
        raw = json.loads(path.read_text())
        raw["format_version"] = 999
        path.write_text(json.dumps(raw))
        with pytest.raises(SnapshotIntegrityError, match="version"):
            read_manifest(tmp_path)

    def test_garbage_json_rejected(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(SnapshotIntegrityError):
            read_manifest(tmp_path)

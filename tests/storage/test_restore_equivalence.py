"""The restore contract, property-style: snapshot at *every* height h,
restore + tail-replay to the tip, and demand the result is
indistinguishable from the never-restarted service — clustering,
balances, taint, activity, the differential cluster aggregates (their
segment round-trips and the rankings/profiles they serve are
byte-equal), and the whole query surface.

This is the storage layer's analogue of PR 1's incremental==batch and
PR 2's view==batch properties: recovery must not be a new code path
with new answers, and because tail replay runs through the normal
observer fan-out, equality here is exact (same roots, same floats,
same tuples), not merely shape-compatible.
"""

import pytest

from repro import experiments
from repro.chain.blockfile import BlockFileWriter
from repro.chain.index import ChainIndex
from repro.service import ForensicsService, Query
from repro.service.queries import TOP_CLUSTER_METRICS
from repro.simulation import scenarios
from repro.storage import StateStore


N_BLOCKS = 36


@pytest.fixture(scope="module")
def world():
    return scenarios.micro_economy(seed=21, n_blocks=N_BLOCKS, n_users=6)


@pytest.fixture(scope="module")
def reference_and_store(world, tmp_path_factory):
    """One cold service streamed to the tip, snapshotted at every height."""
    root = tmp_path_factory.mktemp("every-height")
    blocks_dir = root / "blocks"
    BlockFileWriter(blocks_dir).write_chain(world.blocks)
    store = StateStore(root / "snapshots")
    index = ChainIndex()
    service = ForensicsService(index, tags=None)
    watched = False
    for block in world.blocks:
        index.add_block(block)
        if not watched and block.height >= N_BLOCKS // 3:
            # Watch thefts early so most snapshots carry live taint state.
            experiments.watch_synthetic_thefts(service)
            watched = True
        store.snapshot(service)
    assert len(store.snapshots()) == len(world.blocks)
    return service, store, blocks_dir


def _assert_equivalent(reference, restored):
    height = reference.height
    assert restored.height == height
    # Engine: identical accounting at every horizon, identical partition.
    for h in range(height + 1):
        assert reference.engine.snapshot(h) == restored.engine.snapshot(h), h
    ref_clusters = reference.clustering
    new_clusters = restored.clustering
    assert (
        ref_clusters.uf.component_sizes() == new_clusters.uf.component_sizes()
    )
    # Balances: dense array, issuance, and the per-height event log.
    for ident in range(reference.index.address_count):
        assert reference.balances.balance_of_id(
            ident
        ) == restored.balances.balance_of_id(ident), ident
    for h in range(height + 1):
        assert reference.balances.events_at(h) == restored.balances.events_at(h)
        assert reference.balances.coinbase_at(h) == restored.balances.coinbase_at(h)
    assert reference.balances.supply == restored.balances.supply
    # Activity: counts and seen-ranges per id.
    for ident in range(reference.index.address_count):
        assert reference.activity.tx_count_of_id(
            ident
        ) == restored.activity.tx_count_of_id(ident)
        assert reference.activity.seen_range_of_id(
            ident
        ) == restored.activity.seen_range_of_id(ident)
    # Taint: every watched case, exactly.
    assert reference.taint.labels == restored.taint.labels
    for label in reference.taint.labels:
        assert reference.taint.result_for(label) == restored.taint.result_for(
            label
        ), label
    # Differential cluster aggregates: the restored view (base arrays
    # from the segment + overlay rebuilt off the restored engine's open
    # labels) must rank identically, and the ranked/profiled answers it
    # serves must be byte-equal to the never-restarted service's.
    assert restored.aggregates.height == reference.aggregates.height == height
    for by in TOP_CLUSTER_METRICS:
        assert reference.aggregates.ranking(by) == restored.aggregates.ranking(
            by
        ), by
        query = Query("top_clusters", (12, by))
        assert repr(reference.answer(query)) == repr(restored.answer(query))
    interner = reference.index.interner
    for ident in range(0, len(interner), 11):
        query = Query("cluster_profile", (interner.address_of(ident),))
        assert repr(reference.answer(query)) == repr(restored.answer(query))
    # The full query surface, answered in a mixed batch.
    queries = experiments.generate_query_workload(
        reference, n_queries=60, seed=11
    )
    assert reference.answer_many(queries) == restored.answer_many(queries)


def test_restore_and_tail_replay_equals_cold_service_at_every_height(
    reference_and_store,
):
    reference, store, blocks_dir = reference_and_store
    for manifest in store.snapshots():
        warm = store.warm_start(blocks_dir, snapshot=manifest)
        assert warm.snapshot_height == manifest.height
        assert warm.tail_blocks == reference.height - manifest.height
        if not warm.service.taint.labels:
            # Snapshots predating the watch don't carry the cases — a
            # watch is an operator action, not chain state.  Re-issuing
            # it lands on identical state (watch catch-up == streaming,
            # the PR 2 view property), which this equivalence then pins.
            experiments.watch_synthetic_thefts(warm.service)
        _assert_equivalent(reference, warm.service)


def test_restored_service_streams_like_cold_from_any_height(
    reference_and_store, world
):
    """Restoring and then feeding blocks by hand (no block files) is the
    same as tail replay — the restore is to *live* state."""
    reference, store, _blocks_dir = reference_and_store
    manifest = store.snapshots()[len(world.blocks) // 2]
    restored = store.restore(manifest)
    for block in world.blocks[manifest.height + 1 :]:
        restored.index.add_block(block)
    _assert_equivalent(reference, restored)

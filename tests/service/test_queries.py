"""The query API: correctness vs batch, memoization, invalidation."""

import pytest

from repro.chain.index import ChainIndex
from repro.chain.model import COIN
from repro.pipeline import AnalystView
from repro.service import ForensicsService, Query, parse_query
from repro.service.cache import QueryCache
from repro.simulation import scenarios

from tests.helpers import addr, build_chain, coinbase, spend


@pytest.fixture(scope="module")
def small_world():
    return scenarios.micro_economy(seed=13, n_blocks=60, n_users=8)


@pytest.fixture(scope="module")
def analyst(small_world):
    return AnalystView.build(small_world)


@pytest.fixture(scope="module")
def service(small_world, analyst):
    return ForensicsService(
        small_world.index,
        tags=analyst.tags,
        dice_addresses=analyst.dice_addresses,
    )


def _sample_addresses(index, n=40):
    interner = index.interner
    step = max(1, len(interner) // n)
    return [interner.address_of(i) for i in range(0, len(interner), step)]


class TestAnswersAgainstBatch:
    def test_cluster_of_induces_batch_partition(self, service, analyst):
        batch = analyst.clustering
        addresses = _sample_addresses(service.index)
        for a in addresses:
            for b in addresses:
                assert (
                    service.cluster_of(a) == service.cluster_of(b)
                ) == batch.same_cluster(a, b), (a, b)

    def test_balance_of_matches_records(self, service):
        for a in _sample_addresses(service.index):
            assert service.balance_of(a) == service.index.address(a).balance

    def test_cluster_balance_sums_members(self, service):
        clusters = service.clustering.clusters()
        index = service.index
        interner = index.interner
        for a in _sample_addresses(index, n=10):
            members = clusters[service.clustering.uf.find(a)]
            expected = sum(index.address(m).balance for m in members)
            assert service.cluster_balance(a) == expected
            # The public cluster id is canonical: the minimum member id.
            assert service.cluster_of(a) == min(
                interner.id_of(m) for m in members
            )

    def test_top_clusters_by_size_matches_largest_clusters(self, service):
        expected = service.clustering.largest_clusters(5)
        answered = [(root, size) for root, size, _name in service.top_clusters(5)]
        assert {s for _r, s in answered} == {s for _r, s in expected}

    def test_cluster_profile_fields(self, service):
        a = _sample_addresses(service.index, n=5)[1]
        profile = service.cluster_profile(a)
        assert profile["address"] == a
        assert profile["cluster"] == service.cluster_of(a)
        assert profile["balance"] == service.balance_of(a)
        assert profile["cluster_balance"] == service.cluster_balance(a)
        assert profile["cluster_size"] >= 1
        assert profile["tx_count"] >= 1
        assert 0 <= profile["first_seen"] <= profile["last_seen"]

    def test_unknown_address_answers(self, service):
        unknown = addr("never-on-chain")
        assert service.cluster_of(unknown) is None
        assert service.balance_of(unknown) == 0
        assert service.cluster_balance(unknown) is None
        assert service.cluster_profile(unknown) is None

    def test_trace_taint_matches_batch_result(self, service):
        from repro.analysis.taint import TaintTracker

        index = service.index
        theft_tx = next(
            tx for tx, _loc in index.iter_transactions() if not tx.is_coinbase
        )
        service.watch_theft("heist", [theft_tx.txid])
        answer = service.trace_taint("heist")
        batch = TaintTracker(
            index, name_of_address=service.taint.name_of_address
        ).propagate(
            list(service.taint.case("heist").sources), max_txs=10 ** 9
        )
        assert answer["initial_taint"] == batch.initial_taint
        assert answer["unspent_taint"] == pytest.approx(batch.unspent_taint)
        assert dict(answer["reached"]) == pytest.approx(
            batch.taint_at_entities
        )

    def test_trace_taint_unwatched_label(self, service):
        assert service.trace_taint("no-such-case") is None

    def test_answer_many_matches_individual_answers(self, service):
        addresses = _sample_addresses(service.index, n=8)
        queries = []
        for a in addresses:
            queries.append(Query("cluster_of", (a,)))
            queries.append(Query("balance_of", (a,)))
            queries.append(Query("cluster_profile", (a,)))
        queries.append(Query("top_clusters", (5, "balance")))
        batch_answers = service.answer_many(queries)
        assert len(batch_answers) == len(queries)
        for query, answer in zip(queries, batch_answers):
            assert service.answer(query) == answer

    def test_unknown_kind_rejected(self, service):
        with pytest.raises(ValueError, match="unknown query kind"):
            service.answer(Query("who_is", ("x",)))


class TestCacheBehaviour:
    def _service_over(self, target):
        return ForensicsService(target)

    def _streaming_world(self):
        cb = coinbase(addr("q/a"))
        pay = spend(
            [(cb, 0)],
            [(addr("q/b"), 30 * COIN), (addr("q/c"), 20 * COIN)],
        )
        sweep = spend([(pay, 0)], [(addr("q/d"), 30 * COIN)])
        return build_chain([[cb], [pay], [sweep]])

    def test_repeat_query_hits_cache(self):
        source = self._streaming_world()
        service = self._service_over(source)
        query = Query("cluster_profile", (addr("q/b"),))
        first = service.answer(query)
        hits_before = service.cache.hits
        assert service.answer(query) is first  # memo: identical object
        assert service.cache.hits == hits_before + 1

    def test_new_block_invalidates(self):
        source = self._streaming_world()
        target = ChainIndex()
        service = self._service_over(target)
        target.add_block(source.block_at(0))
        target.add_block(source.block_at(1))
        assert service.balance_of(addr("q/b")) == 30 * COIN
        # New block spends q/b's coin: the old answer must not be served.
        target.add_block(source.block_at(2))
        assert service.balance_of(addr("q/b")) == 0
        assert service.balance_of(addr("q/d")) == 30 * COIN
        # The stale entry still exists under the old height key — usable
        # for time-travel-style repeats, never for the new tip.
        assert (1, Query("balance_of", (addr("q/b"),))) in service.cache
        assert (2, Query("balance_of", (addr("q/b"),))) in service.cache

    def test_watch_at_unchanged_tip_invalidates_taint_answers(self):
        source = self._streaming_world()
        service = self._service_over(source)
        assert service.trace_taint("loot") is None  # cached: unwatched
        pay_txid = source.block_at(1).transactions[1].txid
        service.watch_theft("loot", [pay_txid])
        # Same height, but the watch set changed: no stale None.
        answer = service.trace_taint("loot")
        assert answer is not None
        assert answer["initial_taint"] == 50 * COIN

    def test_aggregates_rebuilt_after_new_block(self):
        source = self._streaming_world()
        target = ChainIndex()
        service = self._service_over(target)
        target.add_block(source.block_at(0))
        target.add_block(source.block_at(1))
        top_before = service.top_clusters(3, by="balance")
        target.add_block(source.block_at(2))
        top_after = service.top_clusters(3, by="balance")
        balances_before = dict(
            (root, value) for root, value, _ in top_before
        )
        balances_after = dict(
            (root, value) for root, value, _ in top_after
        )
        assert balances_before != balances_after

    def test_lru_eviction(self):
        cache = QueryCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.evictions == 1
        assert "a" not in cache
        assert cache.lookup("b") == (True, 2)
        assert cache.hit_rate == 1.0
        assert cache.lookup("a") == (False, None)  # evicted
        assert cache.hit_rate == 0.5

    def test_cache_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            QueryCache(maxsize=0)


class TestSharedRankingIndex:
    """top_clusters and cluster_profile share one sorted index per
    (height, metric) instead of re-ranking per distinct (n, by) pair.

    Pins the *batch fallback* path (``differential_aggregates=False``):
    with the live aggregate view attached, rankings come from its
    per-metric indexes and the ``_agg:ranking:*`` entries are never
    built (tests/service/test_cluster_aggregates.py pins both paths
    equal)."""

    def test_distinct_n_share_one_ranking(self, small_world):
        service = ForensicsService(
            small_world.index, differential_aggregates=False
        )
        five = service.top_clusters(5, by="size")
        key = (service.height, Query("_agg:ranking:size"))
        assert key in service.cache
        misses_after_build = service.cache.misses
        ten = service.top_clusters(10, by="size")
        twenty = service.top_clusters(20, by="size")
        # Different n answers are prefixes of the same shared order...
        assert ten[:5] == five
        assert twenty[:10] == ten
        # ...and no second ranking aggregate was ever built: the only
        # misses after the first build are the new (n, by) answer keys.
        assert service.cache.misses == misses_after_build + 2

    def test_each_metric_gets_its_own_ranking(self, small_world):
        service = ForensicsService(
            small_world.index, differential_aggregates=False
        )
        for by in ("size", "balance", "activity"):
            assert service.top_clusters(3, by=by)
            assert (service.height, Query(f"_agg:ranking:{by}")) in service.cache

    def test_ranking_matches_direct_sort(self, small_world):
        service = ForensicsService(
            small_world.index, differential_aggregates=False
        )
        uf = service.clustering.uf
        canonical: dict[int, int] = {}
        for ident in range(len(uf)):
            canonical.setdefault(uf.find_root(ident), ident)
        sizes = {
            canonical[root]: size
            for root, size in service.clustering.component_sizes().items()
        }
        expected = sorted(sizes.items(), key=lambda kv: (-kv[1], kv[0]))[:8]
        answered = [
            (cid, value) for cid, value, _name in service.top_clusters(8)
        ]
        assert answered == expected

    def test_profile_rank_reads_shared_index(self, small_world):
        service = ForensicsService(
            small_world.index, differential_aggregates=False
        )
        ranked = service.top_clusters(1, by="size")
        top_cluster = ranked[0][0]
        # The canonical id is itself a member id of the cluster.
        member = small_world.index.interner.address_of(top_cluster)
        profile = service.cluster_profile(member)
        assert profile["cluster_rank"] == 1
        assert profile["cluster"] == top_cluster

    def test_unknown_metric_still_rejected(self, small_world):
        for differential in (False, True):
            service = ForensicsService(
                small_world.index, differential_aggregates=differential
            )
            with pytest.raises(ValueError, match="metric"):
                service.answer(Query("top_clusters", (3, "charisma")))


class TestParsing:
    def test_parse_address_queries(self):
        assert parse_query(["cluster-of", "1abc"]) == Query(
            "cluster_of", ("1abc",)
        )
        assert parse_query(["balance_of", "1abc"]) == Query(
            "balance_of", ("1abc",)
        )

    def test_parse_top_clusters_defaults(self):
        assert parse_query(["top-clusters"]) == Query("top_clusters", (10, "size"))
        assert parse_query(["top-clusters", "5", "balance"]) == Query(
            "top_clusters", (5, "balance")
        )
        with pytest.raises(ValueError, match="metric"):
            parse_query(["top-clusters", "5", "bogus"])

    def test_parse_taint_label_rejoined(self):
        assert parse_query(["trace-taint", "Silk", "Road", "seizure"]) == Query(
            "trace_taint", ("Silk Road seizure",)
        )

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            parse_query([])
        with pytest.raises(ValueError):
            parse_query(["cluster-of"])
        with pytest.raises(ValueError, match="unknown query kind"):
            parse_query(["frobnicate", "x"])

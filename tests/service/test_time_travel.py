"""Replayed horizons == batch rebuild, for every kind at every height.

The time-travel contract behind the per-height aggregate delta log:
``top_clusters`` / ``cluster_profile`` / ``cluster_balance`` /
``cluster_of`` at any ``height <= tip`` must answer byte-equal whether
they replay a sparse checkpoint forward (``time_travel=True``, the
default) or fall back to the batch ``_agg@h`` rebuild
(``time_travel=False``).  The hypothesis case randomizes the scenario,
so the sweep covers H1-only heights, open-overlay horizons (a §4.2
window mid-flight at ``h``), voids, expiries, and base merges landing
between checkpoints; the restore case pins the same equality after a
manifest-v4 snapshot round trip, whose ``time_travel`` segment seeds
the replay base from serialized arrays rather than a live fold.

A second class pins the naming-epoch cache key (the staleness fix that
rides along with this log): name-bearing kinds re-key when a
structural naming drain bumps the epoch at an unchanged tip, so a
merge can never keep serving a pre-merge cluster name out of the
query cache.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.blockfile import BlockFileWriter
from repro.chain.index import ChainIndex
from repro.chain.model import COIN
from repro.service import ForensicsService, Query
from repro.service.queries import TOP_CLUSTER_METRICS
from repro.simulation import scenarios
from repro.storage import StateStore

from tests.helpers import addr, build_chain, coinbase, spend


def historical_queries(index, height: int) -> list[Query]:
    """Every historical kind at one height, over a spread of addresses."""
    queries = [
        Query("top_clusters", (8, by, height)) for by in TOP_CLUSTER_METRICS
    ]
    interner = index.interner
    step = max(1, len(interner) // 5)
    for ident in range(0, len(interner), step):
        address = interner.address_of(ident)
        for kind in ("cluster_of", "cluster_balance", "cluster_profile"):
            queries.append(Query(kind, (address, height)))
    return queries


def assert_replay_equals_batch(fast, base) -> None:
    """Exhaustive sweep: both services answer every historical kind at
    every height, and every answer pair is repr-equal (exact values,
    exact ranking order, exact names — not merely shape-compatible)."""
    assert fast.height == base.height
    assert fast.aggregates.covers(0)
    for height in range(fast.height + 1):
        for query in historical_queries(fast.index, height):
            assert repr(fast.answer(query)) == repr(base.answer(query)), (
                height,
                query,
            )


class TestReplayedEqualsBatchAtEveryHeight:
    @settings(deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10 ** 6),
        n_blocks=st.integers(min_value=6, max_value=20),
        n_users=st.integers(min_value=3, max_value=6),
    )
    def test_random_scenarios(self, seed, n_blocks, n_users):
        world = scenarios.micro_economy(
            seed=seed, n_blocks=n_blocks, n_users=n_users
        )
        fast = ForensicsService.from_world(world)
        base = ForensicsService.from_world(world, time_travel=False)
        assert_replay_equals_batch(fast, base)

    def test_micro_world_with_tags(self, micro_world):
        """Naming in play: historical top-cluster rows and profiles
        carry as-of-height cluster names on both paths."""
        fast = ForensicsService.from_world(micro_world)
        base = ForensicsService.from_world(micro_world, time_travel=False)
        assert_replay_equals_batch(fast, base)


class TestReplayedEqualsBatchAfterRestore:
    def test_every_height_after_v4_round_trip(self, tmp_path):
        """Snapshot -> restore -> the restored replay path answers every
        historical kind at every height equal to a batch service that
        never restarted."""
        world = scenarios.micro_economy(seed=5, n_blocks=20, n_users=5)
        BlockFileWriter(tmp_path / "blocks").write_chain(world.blocks)
        store = StateStore(tmp_path / "snapshots")
        fast = ForensicsService.from_world(world)
        assert fast.aggregates.covers(0)
        # Warm one horizon before the snapshot so the export is taken
        # from a view whose replay machinery has actually run.
        assert fast.cluster_profile(
            world.index.interner.address_of(0), height=fast.height // 2
        )
        store.snapshot(fast)

        restored = store.restore(follow=False)
        base = ForensicsService.from_world(world, time_travel=False)
        assert_replay_equals_batch(restored, base)


class TestNamingEpochCacheKeys:
    """The staleness regression: name-bearing kinds must re-key when the
    aggregate view's naming epoch moves, even at an unchanged tip."""

    def _service(self):
        cb_a = coinbase(addr("epoch/a"))
        cb_b = coinbase(addr("epoch/b"))
        merge = spend(
            [(cb_a, 0), (cb_b, 0)], [(addr("epoch/c"), 80 * COIN)]
        )
        source = build_chain([[cb_a], [cb_b], [merge]])
        target = ChainIndex()
        service = ForensicsService(target)
        for height in range(3):
            target.add_block(source.block_at(height))
        return service

    def test_epoch_bump_re_keys_name_bearing_kinds(self):
        service = self._service()
        engine = service.queries
        view = service.aggregates
        named = [
            Query("top_clusters", (5, "size")),
            Query("cluster_profile", (addr("epoch/a"),)),
        ]
        for query in named:
            before = engine._cache_key(query)
            view.naming_epoch += 1
            assert engine._cache_key(query) != before, query.kind
        # Name-free kinds stay keyed on the tip alone.
        unnamed = Query("cluster_balance", (addr("epoch/a"),))
        before = engine._cache_key(unnamed)
        view.naming_epoch += 1
        assert engine._cache_key(unnamed) == before

    def test_epoch_bump_forces_recompute_at_unchanged_tip(self):
        service = self._service()
        query = Query("top_clusters", (5, "size"))
        first = service.answer(query)
        # The first answer drains naming churn (which may bump the
        # epoch); from here the key is stable, so a repeat is a pure hit.
        service.answer(query)
        hits = service.cache.hits
        assert service.answer(query) == first
        assert service.cache.hits == hits + 1
        # An epoch bump at the same tip invalidates: the repeat misses
        # (recomputes against current names) instead of serving the
        # pre-drain entry.
        misses = service.cache.misses
        service.aggregates.naming_epoch += 1
        assert service.answer(query) == first
        assert service.cache.misses == misses + 1

"""Kernelized folds == scalar reference folds, at every height.

The vectorized fold kernels (``np.add.at`` scatters in the balance and
activity views, the batched per-flush churn fold in the cluster
aggregate view) must change *nothing but speed*: each test streams one
chain into paired kernel/scalar twins and compares their observable
state — balances, incidence counts, first/last-seen, per-root
aggregates, rankings — block by block.

Chains come from the large-scale generator (dense co-spends, heavy
merging, fresh-address churn) with hypothesis-drawn shape parameters,
so the comparison sweeps many fold orders, merge patterns, and flush
cadences rather than one golden scenario.
"""

from hypothesis import given, settings, strategies as st

from repro.chain.index import ChainIndex
from repro.core.incremental import IncrementalClusteringEngine
from repro.service.aggregates import ClusterAggregateView, TOP_CLUSTER_METRICS
from repro.service.views import ActivityView, BalanceView
from repro.simulation import large_scale_blocks


def _chain(seed, n_blocks, txs_per_block, reuse):
    return list(
        large_scale_blocks(
            n_blocks,
            seed=seed,
            txs_per_block=txs_per_block,
            outputs_per_tx=3,
            reuse_probability=reuse,
        )
    )


_SHAPES = {
    "seed": st.integers(0, 2**16),
    "n_blocks": st.integers(2, 25),
    "txs_per_block": st.integers(1, 6),
    "reuse": st.floats(0.0, 0.9),
}


class TestViewKernelsMatchScalar:
    @settings(max_examples=20, deadline=None)
    @given(**_SHAPES)
    def test_balance_and_activity_twins_agree_at_every_height(
        self, seed, n_blocks, txs_per_block, reuse
    ):
        index = ChainIndex()
        bal_k = BalanceView(index, use_kernels=True)
        bal_s = BalanceView(index, use_kernels=False)
        act_k = ActivityView(index, use_kernels=True)
        act_s = ActivityView(index, use_kernels=False)
        for block in _chain(seed, n_blocks, txs_per_block, reuse):
            index.add_block(block)
            assert bal_k.supply == bal_s.supply
            assert bal_k._balances.tolist() == bal_s._balances.tolist()
            assert act_k._tx_counts.tolist() == act_s._tx_counts.tolist()
            assert act_k._first_seen.tolist() == act_s._first_seen.tolist()
            assert act_k._last_seen.tolist() == act_s._last_seen.tolist()

    @settings(max_examples=20, deadline=None)
    @given(**_SHAPES)
    def test_balance_events_and_queries_agree(
        self, seed, n_blocks, txs_per_block, reuse
    ):
        index = ChainIndex()
        bal_k = BalanceView(index, use_kernels=True)
        bal_s = BalanceView(index, use_kernels=False)
        blocks = _chain(seed, n_blocks, txs_per_block, reuse)
        for block in blocks:
            index.add_block(block)
        for height in range(len(blocks)):
            assert bal_k.events_at(height) == bal_s.events_at(height)

        class _IdentityPartition:
            find_root = staticmethod(lambda ident: ident)

        identity = _IdentityPartition()
        assert bal_k.cluster_balances(identity) == bal_s.cluster_balances(
            identity
        )


class TestAggregateKernelsMatchScalar:
    @settings(max_examples=15, deadline=None)
    @given(flush_every=st.integers(1, 9), **_SHAPES)
    def test_aggregate_twins_agree_at_every_flush(
        self, flush_every, seed, n_blocks, txs_per_block, reuse
    ):
        """The batched churn fold must land every sum/min/max at the
        same post-merge root the scalar per-block fold does, across
        arbitrary flush cadences (batch size = merge-fold interleaving).
        """
        index = ChainIndex()
        engine = IncrementalClusteringEngine(index)
        agg_k = ClusterAggregateView(index, engine=engine, use_kernels=True)
        agg_s = ClusterAggregateView(index, engine=engine, use_kernels=False)
        blocks = _chain(seed, n_blocks, txs_per_block, reuse)
        for block in blocks:
            index.add_block(block)
            if (block.height + 1) % flush_every and (
                block.height != len(blocks) - 1
            ):
                continue
            # Any query flushes the queued blocks in both twins.
            assert agg_k.cluster_count == agg_s.cluster_count
            for metric in TOP_CLUSTER_METRICS:
                assert agg_k.ranking(metric) == agg_s.ranking(metric)
            roots = agg_k._uf.component_sizes()
            assert roots == agg_s._uf.component_sizes()
            for root in roots:
                assert agg_k._balance[root] == agg_s._balance[root]
                assert agg_k._tx_count[root] == agg_s._tx_count[root]
                assert agg_k._first[root] == agg_s._first[root]
                assert agg_k._last[root] == agg_s._last[root]
                assert agg_k._min_member[root] == agg_s._min_member[root]


class TestH1PairKernelMatchesScalar:
    @settings(max_examples=20, deadline=None)
    @given(**_SHAPES)
    def test_engine_partition_equals_per_tx_union_chains(
        self, seed, n_blocks, txs_per_block, reuse
    ):
        """The engine's per-block ``union_many(h1_a, h1_b)`` pair batch
        must leave the same partition *and the same merge log* as the
        per-transaction chain unions it replaced."""
        from repro.core.union_find import IntUnionFind

        index = ChainIndex()
        engine = IncrementalClusteringEngine(index)
        deltas = []
        index.subscribe_deltas(deltas.append)
        for block in _chain(seed, n_blocks, txs_per_block, reuse):
            index.add_block(block)
        reference = IntUnionFind()
        for delta in deltas:
            reference.ensure(delta.max_id + 1)
            for txd in delta.txs:
                if not txd.is_coinbase and txd.input_ids:
                    reference.union_many(txd.input_ids)
        live = engine._uf
        assert live.component_count == reference.component_count
        assert live.log_prefix(live.checkpoint()) == reference.log_prefix(
            reference.checkpoint()
        )
        assert live.component_sizes() == reference.component_sizes()

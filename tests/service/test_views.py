"""Materialized views: streamed state == batch recomputation, per height.

The PR 1 contract extended to the serving layer: stream a world's chain
block by block into a fresh index with views attached and, at *every*
height, compare each view's warm state against a from-scratch
recomputation over the prefix — balances against the address records,
activity against a full transaction walk, taint against a fresh batch
propagation.
"""

import numpy as np
import pytest

from repro.analysis.balances import BalanceAnalyzer
from repro.analysis.taint import TaintTracker
from repro.chain.index import ChainIndex
from repro.chain.model import COIN, OutPoint
from repro.pipeline import AnalystView
from repro.service.views import ActivityView, BalanceView, TaintView
from repro.simulation import scenarios
from repro.simulation.params import FIGURE2_CATEGORIES

from tests.helpers import addr, build_chain, coinbase, spend


@pytest.fixture(scope="module")
def small_world():
    return scenarios.micro_economy(seed=13, n_blocks=60, n_users=8)


def _batch_activity(index):
    """Ground truth for ActivityView: full transaction walk."""
    counts: dict[int, int] = {}
    first: dict[int, int] = {}
    last: dict[int, int] = {}
    for tx, location in index.iter_transactions():
        involved = set(index.input_address_ids(tx))
        involved.update(i for i in index.output_address_ids(tx) if i >= 0)
        for ident in involved:
            counts[ident] = counts.get(ident, 0) + 1
            first.setdefault(ident, location.height)
            last[ident] = location.height
    return counts, first, last


class TestViewEqualsBatchAtEveryHeight:
    """The satellite property test: view state at h == batch at h."""

    def test_balance_and_activity_views(self, small_world):
        source = small_world.index
        target = ChainIndex()
        balances = BalanceView(target)
        activity = ActivityView(target)
        for height in range(source.height + 1):
            target.add_block(source.block_at(height))
            assert balances.height == activity.height == height
            # Balances: every record in the prefix index is the batch
            # recomputation of that address's balance at this height.
            for record in target.iter_addresses():
                assert (
                    balances.balance_of_id(record.address_id) == record.balance
                ), (height, record.address)
            supply = sum(
                tx.total_output_value
                for block in target.blocks
                for tx in block.transactions
                if tx.is_coinbase
            )
            assert balances.supply == balances.supply_at(height) == supply
            # Activity: counts and seen-ranges match a full tx walk.
            counts, first, last = _batch_activity(target)
            for ident, count in counts.items():
                assert activity.tx_count_of_id(ident) == count, height
                assert activity.seen_range_of_id(ident) == (
                    first[ident],
                    last[ident],
                ), height

    def test_taint_view(self, small_world):
        source = small_world.index
        # Seed: every output of the first few non-coinbase transactions.
        sources = []
        for tx, _location in source.iter_transactions():
            if tx.is_coinbase:
                continue
            sources.extend(OutPoint(tx.txid, v) for v in range(len(tx.outputs)))
            if len(sources) >= 4:
                break
        assert sources, "world has no spends to taint"
        # A stable namer (tag-style lookups), as the service wires it.
        analyst = AnalystView.build(small_world)
        tag_map = analyst.tags.as_mapping()
        target = ChainIndex()
        view = TaintView(target, name_of_address=tag_map.get)
        watched = False
        for height in range(source.height + 1):
            target.add_block(source.block_at(height))
            if not watched and all(op.txid in target for op in sources):
                view.watch("loot", sources)
                watched = True
            if not watched:
                continue
            case = view.case("loot")
            batch = TaintTracker(
                target, name_of_address=tag_map.get
            ).propagate(list(sources), max_txs=10 ** 9)
            assert case.initial_taint == batch.initial_taint, height
            assert case.txs_processed == batch.txs_processed, height
            assert case.taint == pytest.approx(batch.taint_by_outpoint), height
            assert case.at_entities == pytest.approx(
                batch.taint_at_entities
            ), height
        assert watched

    def test_figure2_series_streams_identically(self, small_world):
        analyst = AnalystView.build(small_world)
        batch = analyst.balance_series(samples=48)
        streamed = analyst.balance_series(samples=48, streaming=True)
        assert batch.heights == streamed.heights
        assert np.array_equal(batch.supply, streamed.supply)
        assert np.array_equal(batch.sink_balance, streamed.sink_balance)
        for category in FIGURE2_CATEGORIES:
            assert np.array_equal(
                batch.by_category[category], streamed.by_category[category]
            ), category


class TestViewMechanics:
    def _chain(self):
        cb = coinbase(addr("view/a"))
        pay = spend(
            [(cb, 0)],
            [(addr("view/b"), 30 * COIN), (addr("view/c"), 20 * COIN)],
        )
        return build_chain([[cb], [pay], []])

    def test_catch_up_equals_streaming(self):
        source = self._chain()
        caught_up = BalanceView(source)
        target = ChainIndex()
        streamed = BalanceView(target)
        for height in range(source.height + 1):
            target.add_block(source.block_at(height))
        assert caught_up.balance_of(addr("view/b")) == 30 * COIN
        assert streamed.balance_of(addr("view/b")) == 30 * COIN
        assert streamed.balance_of(addr("view/a")) == 0
        assert streamed.height == caught_up.height == source.height

    def test_out_of_order_stream_rejected(self):
        source = self._chain()
        target = ChainIndex()
        view = BalanceView(target)
        view.detach()
        target.add_block(source.block_at(0))
        with pytest.raises(ValueError, match="order"):
            view._observe_delta(source.block_delta(2))

    def test_detach_freezes_state(self):
        source = self._chain()
        target = ChainIndex()
        view = ActivityView(target)
        target.add_block(source.block_at(0))
        view.detach()
        target.add_block(source.block_at(1))
        assert view.height == 0

    def test_cluster_balances_consistent_with_components(self, small_world):
        analyst = AnalystView.build(small_world)
        view = BalanceView(small_world.index)
        partition = analyst.clustering.uf
        rollup = view.cluster_balances(partition)
        components = partition.components()
        index = small_world.index
        for root, members in components.items():
            expected = sum(index.address(a).balance for a in members)
            assert rollup.get(root, 0) == expected

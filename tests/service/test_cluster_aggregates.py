"""Differential cluster aggregates == batch ``_agg`` rebuild, per height.

The tentpole property, in the PR 1/PR 2 style: stream a world's chain
block by block with the :class:`ClusterAggregateView` folding deltas,
and at *every* height compare its state against the batch full rebuild
over the tip partition — per-cluster balances, activity, sizes, and the
complete :class:`ClusterRanking` order for every metric in
``TOP_CLUSTER_METRICS``.  Cluster identity is canonical (minimum member
address id), so equality here is exact object equality, not merely
shape-compatible.

The hypothesis case randomizes the simulated scenario (seed, length,
roster size), so the sweep covers H1-only blocks, H2 births, §4.2 wait
voids, window expiries, and merges folding previously independent
aggregates — under ``HYPOTHESIS_PROFILE=nightly`` it runs hundreds of
worlds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.chain.index import ChainIndex
from repro.service import ClusterAggregateView, ClusterRanking, ForensicsService, Query
from repro.service.queries import TOP_CLUSTER_METRICS
from repro.simulation import scenarios


def batch_cluster_aggregates(service):
    """The batch full-rebuild ground truth at the service's tip, keyed
    by canonical cluster id: (sizes, balances, activity)."""
    uf = service.clustering.uf
    canonical: dict[int, int] = {}
    for ident in range(len(uf)):
        canonical.setdefault(uf.find_root(ident), ident)
    sizes = {
        canonical[root]: size
        for root, size in uf.component_sizes().items()
    }
    balances = {
        canonical[root]: balance
        for root, balance in service.balances.cluster_balances(uf).items()
    }
    activity = {
        canonical[root]: rollup
        for root, rollup in service.activity.cluster_activity(uf).items()
    }
    return sizes, balances, activity


def batch_ranking(metric: dict) -> ClusterRanking:
    order = tuple(sorted(metric.items(), key=lambda kv: (-kv[1], kv[0])))
    return ClusterRanking(
        order=order,
        rank_of={cid: rank for rank, (cid, _v) in enumerate(order, 1)},
    )


def assert_view_equals_batch(service):
    view = service.aggregates
    assert view.height == service.height
    sizes, balances, activity = batch_cluster_aggregates(service)
    assert view.ranking("size") == batch_ranking(sizes)
    assert view.ranking("balance") == batch_ranking(balances)
    assert view.ranking("activity") == batch_ranking(
        {cid: rollup.tx_count for cid, rollup in activity.items()}
    )
    for cid, size in sizes.items():
        assert view.size_of_cluster(cid) == size
        assert view.balance_of_cluster(cid) == balances.get(cid, 0)
        assert view.activity_of_cluster(cid) == activity.get(cid)


class TestDifferentialEqualsBatchAtEveryHeight:
    @settings(deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10 ** 6),
        n_blocks=st.integers(min_value=6, max_value=30),
        n_users=st.integers(min_value=3, max_value=8),
    )
    def test_random_scenarios(self, seed, n_blocks, n_users):
        world = scenarios.micro_economy(
            seed=seed, n_blocks=n_blocks, n_users=n_users
        )
        target = ChainIndex()
        service = ForensicsService(target, tags=None)
        for block in world.blocks:
            target.add_block(block)
            assert_view_equals_batch(service)

    def test_default_world_with_tags(self, micro_world):
        """One full-roster streamed pass with naming in play: every
        cluster-level answer is byte-equal between the differential
        path and a batch-only service, at every height."""
        attack = micro_world.extras.get("attack")
        tags = attack.tags if attack is not None else None
        diff_index, batch_index = ChainIndex(), ChainIndex()
        diff = ForensicsService(diff_index, tags=tags)
        batch = ForensicsService(
            batch_index, tags=tags, differential_aggregates=False
        )
        assert diff.aggregates is not None
        assert batch.aggregates is None
        for block in micro_world.blocks[:48]:
            diff_index.add_block(block)
            batch_index.add_block(block)
            for by in TOP_CLUSTER_METRICS:
                query = Query("top_clusters", (20, by))
                assert repr(diff.answer(query)) == repr(batch.answer(query))
            interner = diff_index.interner
            for ident in range(0, len(interner), 9):
                address = interner.address_of(ident)
                for kind in (
                    "cluster_of",
                    "cluster_balance",
                    "cluster_profile",
                ):
                    query = Query(kind, (address,))
                    assert repr(diff.answer(query)) == repr(
                        batch.answer(query)
                    ), (block.height, kind, address)


class TestIncrementalClusterNames:
    def test_incremental_names_equal_full_rebuild_at_every_height(
        self, micro_world
    ):
        """The live-view naming path patches its name map from the
        view's dirty-root drain; at every height it must equal a
        from-scratch build (fresh QueryEngine, empty naming state) —
        merges, group dissolutions, and voids included."""
        from repro.service.queries import QueryEngine

        attack = micro_world.extras.get("attack")
        tags = attack.tags if attack is not None else None
        assert tags is not None and len(tags) > 0
        target = ChainIndex()
        service = ForensicsService(target, tags=tags)
        for block in micro_world.blocks[:80]:
            target.add_block(block)
            incremental = service.queries._cluster_names()
            # Fresh engine: no cached placements, full build.  Runs
            # after the incremental build so it cannot steal the
            # single-consumer dirty drain.
            full = QueryEngine(service)._build_cluster_names()
            assert incremental == full, block.height

    def test_tags_added_after_first_build_are_picked_up(self, micro_world):
        """The tag store is append-only but live: a tag added after the
        first name build must flow into later heights on the live-view
        path (the entries snapshot rebuilds on count change)."""
        from repro.tagging.tags import Tag

        attack = micro_world.extras.get("attack")
        tags = attack.tags if attack is not None else None
        target = ChainIndex()
        service = ForensicsService(target, tags=tags)
        blocks = micro_world.blocks
        for block in blocks[:30]:
            target.add_block(block)
        before = service.queries._cluster_names()
        # Tag an address that already has a cluster but no name yet.
        interner = target.interner
        named_cids = set(before)
        victim = None
        for ident in range(len(interner)):
            cid = service.aggregates.cluster_id_of(ident)
            if cid is not None and cid not in named_cids:
                victim = interner.address_of(ident)
                break
        assert victim is not None
        tags.add(Tag(address=victim, entity="Late Entity", source="user",
                     confidence=1.0))
        target.add_block(blocks[30])
        after = service.queries._cluster_names()
        late_cid = service.aggregates.cluster_id_of(interner.id_of(victim))
        assert after.get(late_cid) == "Late Entity"
        # And the incremental state stays equal to a full rebuild.
        from repro.service.queries import QueryEngine

        assert after == QueryEngine(service)._build_cluster_names()


class TestMergeHookAndTimeTravel:
    def test_view_survives_interleaved_time_travel(self, micro_world):
        """The engine's snapshot()/cluster_as_of() brackets roll its
        merge log back and forth between blocks; the view's per-height
        deltas must be immune (the brackets restore the log exactly)."""
        target = ChainIndex()
        service = ForensicsService(target, tags=None)
        for block in micro_world.blocks[:36]:
            target.add_block(block)
            height = block.height
            # Exercise rollback/replay across the whole clustered range.
            service.engine.snapshot(height // 2)
            service.engine.cluster_as_of(max(0, height - 3))
            service.top_clusters(5, by="balance")
        assert_view_equals_batch(service)

    def test_view_requires_engine_ahead(self, micro_world):
        """Attaching the view to an index the engine does not follow
        fails loudly instead of folding stale deltas."""
        source = micro_world.index
        target = ChainIndex()
        service = ForensicsService(target, tags=None)
        service.engine.detach()
        with pytest.raises(ValueError, match="attach ClusterAggregateView"):
            target.add_block(source.block_at(0))

    def test_fold_retraction_refused(self, micro_world):
        """The view's base partition is never rolled back; a retraction
        surfacing at its merge cursor is a bug, not a silent unfold.
        Folding is lazily flushed, so the refusal surfaces on the first
        query after the rollback, not inside ``add_block``."""
        target = ChainIndex()
        service = ForensicsService(target, tags=None)
        view = service.aggregates
        fed = 0
        for block in micro_world.blocks:
            target.add_block(block)
            view.cluster_count  # flush the queued block
            fed += 1
            if view._uf.checkpoint() > 0:  # some base merges happened
                break
        assert view._uf.checkpoint() > 0
        view._uf.rollback(0)
        target.add_block(micro_world.index.block_at(fed))
        with pytest.raises(RuntimeError, match="rolled back"):
            view.cluster_count


class TestFallbackBelowLiveHeight:
    def test_detached_view_falls_back_to_batch_rebuild(self, micro_world):
        """A view frozen below the tip must not serve stale rankings:
        the query engine falls back to the batch ``_agg`` rebuild and
        still answers exactly."""
        source = micro_world.index
        target = ChainIndex()
        service = ForensicsService(target, tags=None)
        reference = ForensicsService(
            ChainIndex(), tags=None, differential_aggregates=False
        )
        for block in micro_world.blocks[:20]:
            target.add_block(block)
            reference.index.add_block(block)
        service.aggregates.detach()
        for block in micro_world.blocks[20:24]:
            target.add_block(block)
            reference.index.add_block(block)
        assert service.aggregates.height == 19
        assert service.height == 23
        assert service.queries._live_aggregates() is None
        for by in TOP_CLUSTER_METRICS:
            assert service.top_clusters(10, by=by) == reference.top_clusters(
                10, by=by
            )
        # The fallback built the batch aggregates under _agg:* keys.
        assert (
            service.height,
            Query("_agg:ranking:size"),
        ) in service.cache

    def test_stats_report_cluster_count_only_when_live(self, micro_world):
        target = ChainIndex()
        service = ForensicsService(target, tags=None)
        for block in micro_world.blocks[:10]:
            target.add_block(block)
        live = service.stats()
        assert live["clusters"] == service.aggregates.cluster_count > 0
        service.aggregates.detach()
        target.add_block(micro_world.index.block_at(10))
        assert service.stats()["clusters"] is None


class TestDirtyRootCursors:
    """Per-cursor dirty-root delivery: multiple naming consumers (the
    query engine's name aggregate, the invariant auditor) each observe
    every dirty root exactly once, without starving one another."""

    def _stream(self, world, n_blocks, *hooks):
        """Stream ``n_blocks``, invoking each hook after every block;
        returns the service."""
        target = ChainIndex()
        service = ForensicsService(target, tags=None)
        for block in world.blocks[:n_blocks]:
            target.add_block(block)
            for hook in hooks:
                hook(service.aggregates)
        return service

    def test_two_cursors_both_observe_all_dirty_roots(self, micro_world):
        target = ChainIndex()
        service = ForensicsService(target, tags=None)
        view = service.aggregates
        first = view.naming_cursor()
        second = view.naming_cursor()
        seen_first: set[int] = set()
        seen_second: set[int] = set()
        for block in micro_world.blocks[:30]:
            target.add_block(block)
            # Interleave drain cadences: first drains per block, second
            # every third block — the backlog must still be complete.
            seen_first |= view.drain_naming_dirty(first)
            if block.height % 3 == 2:
                seen_second |= view.drain_naming_dirty(second)
        seen_second |= view.drain_naming_dirty(second)
        assert seen_first == seen_second
        assert seen_first  # folds happened; churn was reported

    def test_drain_clears_only_the_draining_cursor(self, micro_world):
        target = ChainIndex()
        service = ForensicsService(target, tags=None)
        view = service.aggregates
        first = view.naming_cursor()
        second = view.naming_cursor()
        for block in micro_world.blocks[:30]:
            target.add_block(block)
        drained = view.drain_naming_dirty(first)
        assert drained
        assert view.drain_naming_dirty(first) == set()
        # The other consumer still holds its full backlog.
        assert view.drain_naming_dirty(second) == drained

    def test_cursorless_drain_keeps_working(self, micro_world):
        """The pre-cursor single-consumer API: drains with no cursor
        argument share one lazily registered default cursor."""
        target = ChainIndex()
        service = ForensicsService(target, tags=None)
        view = service.aggregates
        for block in micro_world.blocks[:30]:
            target.add_block(block)
        drained = view.drain_naming_dirty()
        assert drained
        assert view.drain_naming_dirty() == set()

    def test_released_cursor_stops_accumulating(self, micro_world):
        target = ChainIndex()
        service = ForensicsService(target, tags=None)
        view = service.aggregates
        cursor = view.naming_cursor()
        for block in micro_world.blocks[:8]:
            target.add_block(block)
        view.release_naming_cursor(cursor)
        view.drain_naming_dirty()  # distributes pending to cursors
        assert cursor.dirty == set()

    def test_new_cursor_sees_only_future_churn(self, micro_world):
        target = ChainIndex()
        service = ForensicsService(target, tags=None)
        view = service.aggregates
        for block in micro_world.blocks[:12]:
            target.add_block(block)
        view.drain_naming_dirty()  # flush + distribute everything so far
        late = view.naming_cursor()
        assert view.drain_naming_dirty(late) == set()

    def test_query_names_and_auditor_coexist(self, micro_world):
        """End to end: the query engine's incremental name aggregate and
        a strict auditor both follow naming churn through their own
        cursors, and the incremental name map still equals a
        from-scratch build at every audited height."""
        from repro.obs import InvariantAuditor
        from repro.service.queries import QueryEngine

        attack = micro_world.extras.get("attack")
        tags = attack.tags if attack is not None else None
        target = ChainIndex()
        service = ForensicsService(target, tags=tags)
        auditor = InvariantAuditor(service, audit_every=5, strict=True)
        for block in micro_world.blocks[:40]:
            target.add_block(block)
            incremental = service.queries._cluster_names()
            assert incremental == QueryEngine(
                service
            )._build_cluster_names(), block.height
        assert auditor.audits_run == 8
        assert auditor.total_violations == 0

"""Exact :class:`QueryCache` accounting under batch dispatch.

The cache's hit/miss/eviction counters feed the ``cache.*`` sampled
gauges and the CLI's ``cache_hit_rate`` — so their values must be
*exact*, not merely monotone.  These tests script a workload whose
every lookup is predictable: :meth:`QueryEngine.answer` performs
exactly one ``lookup`` per query (plus one ``put`` per miss), batch
grouping in :meth:`answer_many` changes dispatch *order* but never the
lookup count, and a tip advance re-keys everything (height-keyed
entries, invalidation by construction).

Query kinds are restricted to the live-aggregate fast path
(``balance_of`` / ``cluster_of`` / ``cluster_balance``) so no hidden
``_agg:*`` rebuild traffic perturbs the arithmetic.
"""

import pytest

from repro.chain.index import ChainIndex
from repro.chain.model import COIN
from repro.obs import MetricsRegistry
from repro.service import ForensicsService
from repro.service.queries import Query

from tests.helpers import addr, build_chain, coinbase, spend


@pytest.fixture()
def source():
    cb = coinbase(addr("acct/a"))
    pay = spend(
        [(cb, 0)],
        [(addr("acct/b"), 30 * COIN), (addr("acct/c"), 20 * COIN)],
    )
    sweep = spend([(pay, 0)], [(addr("acct/d"), 30 * COIN)])
    return build_chain([[cb], [pay], [sweep]])


def _counts(service):
    cache = service.cache
    return (cache.hits, cache.misses, cache.evictions)


class TestExactAccounting:
    def test_batch_with_repeats_then_rerun(self, source):
        target = ChainIndex()
        service = ForensicsService(target, metrics=MetricsRegistry())
        target.add_block(source.block_at(0))
        target.add_block(source.block_at(1))
        assert _counts(service) == (0, 0, 0)

        batch = [
            Query("balance_of", (addr("acct/b"),)),
            Query("cluster_of", (addr("acct/b"),)),
            Query("balance_of", (addr("acct/b"),)),  # in-batch repeat
            Query("balance_of", (addr("acct/c"),)),
        ]
        answers = service.answer_many(batch)
        # Grouping preserves input order in the answers...
        assert answers[0] == 30 * COIN
        assert answers[2] == 30 * COIN
        assert answers[3] == 20 * COIN
        assert answers[1] is not None
        # ...and costs exactly one lookup per query: three distinct keys
        # miss, the in-batch repeat hits.
        assert _counts(service) == (1, 3, 0)

        # Unchanged tip: the identical batch is pure hits.
        assert service.answer_many(batch) == answers
        assert _counts(service) == (5, 3, 0)

    def test_tip_advance_rekeys_every_entry(self, source):
        target = ChainIndex()
        service = ForensicsService(target)
        target.add_block(source.block_at(0))
        target.add_block(source.block_at(1))
        batch = [
            Query("balance_of", (addr("acct/b"),)),
            Query("balance_of", (addr("acct/d"),)),
        ]
        stale = service.answer_many(batch)
        assert stale == [30 * COIN, 0]
        assert _counts(service) == (0, 2, 0)

        # The new block spends acct/b's coin into acct/d: both answers
        # must be recomputed (misses), never served stale.
        target.add_block(source.block_at(2))
        assert service.answer_many(batch) == [0, 30 * COIN]
        assert _counts(service) == (0, 4, 0)
        # Old entries survive under the old height key (time-travel
        # repeats), so the rerun at the new tip is pure hits.
        assert service.answer_many(batch) == [0, 30 * COIN]
        assert _counts(service) == (2, 4, 0)

    def test_eviction_counted_and_evicted_key_misses_again(self, source):
        service = ForensicsService(source, cache_size=2)
        queries = [
            Query("balance_of", (addr(f"acct/{label}"),))
            for label in ("b", "c", "d")
        ]
        for query in queries:
            service.answer(query)
        # Three distinct keys through a 2-slot LRU: the first key was
        # evicted by the third put.
        assert _counts(service) == (0, 3, 1)
        service.answer(queries[0])
        assert _counts(service) == (0, 4, 2)
        service.answer(queries[0])
        assert _counts(service) == (1, 4, 2)

    def test_cache_gauges_sample_live_counters(self, source):
        metrics = MetricsRegistry()
        service = ForensicsService(source, metrics=metrics)
        batch = [
            Query("balance_of", (addr("acct/d"),)),
            Query("balance_of", (addr("acct/d"),)),
        ]
        service.answer_many(batch)
        gauges = metrics.snapshot()["gauges"]
        assert gauges["cache.hits"] == service.cache.hits == 1
        assert gauges["cache.misses"] == service.cache.misses == 1
        assert gauges["cache.evictions"] == 0
        assert gauges["cache.entries"] == len(service.cache) == 1
        assert gauges["cache.hit_rate"] == pytest.approx(0.5)


class TestRequestIdPropagation:
    def test_batch_spans_share_one_minted_request_id(self, source):
        metrics = MetricsRegistry()
        service = ForensicsService(source, metrics=metrics)
        service.answer_many([
            Query("balance_of", (addr("acct/b"),)),
            Query("cluster_of", (addr("acct/b"),)),
        ])
        service.answer_many([Query("balance_of", (addr("acct/c"),))])
        spans = [
            span for span in metrics.flight.dump()
            if span["kind"] == "query"
        ]
        assert len(spans) == 3
        first_batch, second_batch = spans[:2], spans[2:]
        assert len({span["request_id"] for span in first_batch}) == 1
        # A fresh batch mints a fresh id.
        assert (
            second_batch[0]["request_id"] != first_batch[0]["request_id"]
        )

    def test_caller_supplied_request_id_wins(self, source):
        metrics = MetricsRegistry()
        service = ForensicsService(source, metrics=metrics)
        service.answer_many(
            [Query("balance_of", (addr("acct/b"),))],
            request_id="req-external-7",
        )
        (span,) = [
            span for span in metrics.flight.dump()
            if span["kind"] == "query"
        ]
        assert span["request_id"] == "req-external-7"
        assert span["query"] == "balance_of"
        assert span["hit"] is False

    def test_single_answer_span_untagged_by_default(self, source):
        metrics = MetricsRegistry()
        service = ForensicsService(source, metrics=metrics)
        service.answer(Query("balance_of", (addr("acct/b"),)))
        (span,) = [
            span for span in metrics.flight.dump()
            if span["kind"] == "query"
        ]
        assert "request_id" not in span
"""ClusterRanking tie-breaking is stable and documented.

The contract (see :class:`~repro.service.queries.ClusterRanking`):
clusters with equal metric values rank by ascending *canonical* cluster
id — the cluster's minimum member address id.  Canonical ids are a pure
function of the partition, unlike raw union-find roots (whose identity
depends on union order, and which the pre-differential ranking used as
its tie-break — unstable across batch rebuilds vs incremental replay).
These tests pin the order identical across every way a ranking can be
produced: the differential view, the batch ``_agg`` rebuild, a repeat
rebuild, and a snapshot-restored service.
"""

import pytest

from repro.chain.index import ChainIndex
from repro.chain.model import COIN
from repro.service import ForensicsService
from repro.service.queries import TOP_CLUSTER_METRICS
from repro.storage import StateStore

from tests.helpers import addr, build_chain, coinbase, spend


N_TIED = 6


@pytest.fixture(scope="module")
def tied_world():
    """``N_TIED`` independent two-address clusters with equal balances,
    sizes, and activity — every metric is all ties.  Each cluster is two
    coinbase-funded addresses co-spent into one (H1 union); the
    auto-miner singletons ``build_chain`` adds sit in strictly lower
    value groups for every metric, so the top ``N_TIED`` entries are
    exactly the tied clusters."""
    funds = [
        (coinbase(addr(f"tie/{i}/x")), coinbase(addr(f"tie/{i}/y")))
        for i in range(N_TIED)
    ]
    sweeps = [
        spend(
            [(fund_x, 0), (fund_y, 0)],
            [(addr(f"tie/{i}/x"), 100 * COIN)],
        )
        for i, (fund_x, fund_y) in enumerate(funds)
    ]
    return build_chain([[tx for pair in funds for tx in pair], sweeps])


def _ranked_ids(service, by):
    return [
        cid for cid, _value, _name in service.top_clusters(N_TIED, by=by)
    ]


def test_ties_rank_by_canonical_id_ascending(tied_world):
    service = ForensicsService(tied_world)
    interner = tied_world.interner
    for by in TOP_CLUSTER_METRICS:
        ranked = _ranked_ids(service, by)
        assert len(ranked) == N_TIED
        # All values tied, so the documented order is canonical id asc.
        assert ranked == sorted(ranked)
        # And the canonical id is the cluster's minimum member id.
        assert ranked == [
            min(
                interner.id_of(addr(f"tie/{i}/x")),
                interner.id_of(addr(f"tie/{i}/y")),
            )
            for i in range(N_TIED)
        ]
        # The whole ranking (miner singletons included) honors the
        # contract: within every equal-value group, ids ascend.
        full = service.aggregates.ranking(by).order
        for (id_a, value_a), (id_b, value_b) in zip(full, full[1:]):
            assert value_a > value_b or (value_a == value_b and id_a < id_b)


def test_order_identical_across_paths_and_restores(tied_world, tmp_path):
    differential = ForensicsService(tied_world)
    batch = ForensicsService(tied_world, differential_aggregates=False)
    rebuilt = ForensicsService(tied_world, differential_aggregates=False)
    store = StateStore(tmp_path / "snapshots")
    store.snapshot(differential)
    restored = store.restore()
    for by in TOP_CLUSTER_METRICS:
        orders = {
            "differential": _ranked_ids(differential, by),
            "batch": _ranked_ids(batch, by),
            "rebuilt": _ranked_ids(rebuilt, by),
            "restored": _ranked_ids(restored, by),
        }
        assert len(set(map(tuple, orders.values()))) == 1, (by, orders)
        # Full ranking objects too, not just the top slice.
        assert differential.aggregates.ranking(
            by
        ) == restored.aggregates.ranking(by)
        assert differential.aggregates.ranking(by) == batch.queries._ranking(by)


def test_order_stable_under_streaming_vs_catchup(tied_world):
    """Construction mode (catch-up over a full index vs block-by-block
    streaming) must not perturb the order either."""
    streamed_index = ChainIndex()
    streamed = ForensicsService(streamed_index)
    for height in range(tied_world.height + 1):
        streamed_index.add_block(tied_world.block_at(height))
    caught_up = ForensicsService(tied_world)
    for by in TOP_CLUSTER_METRICS:
        assert _ranked_ids(streamed, by) == _ranked_ids(caught_up, by)

"""Table/figure renderers."""

from repro.core.fp_estimation import FPEstimate
from repro.reporting import (
    render_figure2,
    render_fp_ladder,
    render_table,
    render_table2,
    render_table3,
)
from repro.analysis.peeling import ServicePeelSummary


class TestRenderTable:
    def test_alignment(self):
        out = render_table(
            ["name", "n"], [["short", 1], ["a-much-longer-name", 22]],
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5  # title + header + rule + 2 rows
        # all rows equal width
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_empty_rows(self):
        out = render_table(["a", "b"], [])
        assert "a" in out


class TestLadder:
    def test_render(self):
        estimates = [
            FPEstimate("naive", 100, 13, 5),
            FPEstimate("refined", 90, 1, None),
        ]
        out = render_fp_ladder(estimates)
        assert "13.00%" in out
        assert "n/a" in out


class TestTable2:
    def test_render(self):
        summaries = [
            {"Mt Gox": ServicePeelSummary("Mt Gox", 11, 492_00000000)},
            {},
            {"Mt Gox": ServicePeelSummary("Mt Gox", 5, 35_00000000)},
        ]
        out = render_table2(summaries)
        assert "Mt Gox" in out
        assert "#1 peels" in out and "#3 BTC" in out
        assert "492" in out


class TestTable3:
    def test_render(self):
        rows = [
            {
                "name": "Betcoin",
                "btc": "3,171",
                "movement_paper": "F/A/P",
                "movement_found": "F/A/P",
                "reached_exchanges": True,
            }
        ]
        out = render_table3(rows)
        assert "Betcoin" in out
        assert "Yes" in out


class TestFigure2:
    def test_render(self, silkroad_view):
        series = silkroad_view.balance_series(samples=30)
        out = render_figure2(series)
        assert "exchanges" in out
        assert "peak" in out

"""Clustering metrics: exact small cases plus world-level sanity."""

import pytest

from repro.core.clustering import Clustering
from repro.core.union_find import UnionFind
from repro.metrics.evaluation import (
    cluster_purity,
    compare_clusterings,
    entity_fragmentation,
    pairwise_scores,
)
from repro.simulation.ground_truth import GroundTruth


def _gt():
    gt = GroundTruth()
    gt.register_entity("A", "users")
    gt.register_entity("B", "users")
    for a in ("a1", "a2", "a3"):
        gt.register_address(a, "A")
    for b in ("b1", "b2"):
        gt.register_address(b, "B")
    return gt


def _clustering(groups, extra=()):
    uf = UnionFind(extra)
    for group in groups:
        uf.union_all(group)
    return Clustering(uf=uf, heuristics="test")


class TestPairwise:
    def test_perfect_clustering(self):
        clustering = _clustering([["a1", "a2", "a3"], ["b1", "b2"]])
        scores = pairwise_scores(clustering, _gt())
        assert scores.precision == 1.0
        assert scores.recall == 1.0
        assert scores.f1 == 1.0
        assert scores.true_pairs == 4  # C(3,2)+C(2,2) = 3+1

    def test_underclustering_loses_recall(self):
        clustering = _clustering([["a1", "a2"]], extra=["a3", "b1", "b2"])
        scores = pairwise_scores(clustering, _gt())
        assert scores.precision == 1.0
        assert scores.recall == pytest.approx(1 / 4)

    def test_overclustering_loses_precision(self):
        clustering = _clustering([["a1", "a2", "a3", "b1", "b2"]])
        scores = pairwise_scores(clustering, _gt())
        assert scores.recall == 1.0
        # C(5,2)=10 predicted pairs, 4 correct.
        assert scores.precision == pytest.approx(0.4)

    def test_unknown_addresses_ignored(self):
        clustering = _clustering([["a1", "a2", "mystery"]])
        scores = pairwise_scores(clustering, _gt())
        assert scores.predicted_pairs == 1  # only the a1-a2 pair counted

    def test_empty_edge_cases(self):
        clustering = _clustering([])
        scores = pairwise_scores(clustering, _gt())
        assert scores.precision == 1.0
        assert scores.recall == 1.0 if scores.true_pairs == 0 else True


class TestFragmentationAndPurity:
    def test_fragmentation(self):
        clustering = _clustering([["a1", "a2"]], extra=["a3"])
        frag = entity_fragmentation(clustering, _gt(), "A")
        assert frag.cluster_count == 2
        assert frag.largest_cluster_share == pytest.approx(2 / 3)

    def test_fragmentation_unknown_entity(self):
        clustering = _clustering([["a1"]])
        frag = entity_fragmentation(clustering, _gt(), "ghost")
        assert frag.address_count == 0
        assert frag.largest_cluster_share == 0.0

    def test_purity_perfect(self):
        clustering = _clustering([["a1", "a2", "a3"], ["b1", "b2"]])
        purity = cluster_purity(clustering, _gt())
        assert purity.weighted_purity == 1.0
        assert purity.impure_clusters == 0

    def test_purity_mixed_cluster(self):
        clustering = _clustering([["a1", "a2", "b1"]])
        purity = cluster_purity(clustering, _gt())
        assert purity.weighted_purity == pytest.approx(2 / 3)
        assert purity.impure_clusters == 1


class TestComparison:
    def test_compare(self):
        worse = _clustering([["a1", "a2"]], extra=["a3", "b1", "b2"])
        better = _clustering([["a1", "a2", "a3"], ["b1", "b2"]])
        comparison = compare_clusterings(worse, better, _gt())
        assert comparison.recall_gain > 0
        assert comparison.precision_cost == 0.0


class TestOnWorld:
    def test_h2_beats_h1_on_recall_without_big_precision_loss(
        self, default_view
    ):
        gt = default_view.world.ground_truth
        comparison = compare_clusterings(
            default_view.clustering_h1,
            default_view.clustering,
            gt,
            label_a="H1",
            label_b="H1+H2",
        )
        assert comparison.scores_b.recall >= comparison.scores_a.recall
        assert comparison.scores_b.precision > 0.95

"""CLI dispatch (fast paths only; experiments have their own tests)."""

import pytest

from repro.cli import main


class TestStateDirWarmStart:
    """`repro serve/query --state-dir`: transparent warm start, with a
    restarted service answering identically to a cold-built one."""

    def _query(self, state_dir, capsys, *tokens):
        exit_code = main(
            ["query", "--scenario", "micro", "--seed", "3",
             "--state-dir", str(state_dir), *tokens]
        )
        assert exit_code == 0
        return capsys.readouterr().out

    def test_cold_then_warm_answers_identically(self, tmp_path, capsys):
        cold = self._query(tmp_path, capsys, "top-clusters", "5", "balance")
        assert "cold start" in cold
        assert list((tmp_path / "blocks").glob("blk*.dat"))
        assert list((tmp_path / "snapshots").glob("snap-*"))
        warm = self._query(tmp_path, capsys, "top-clusters", "5", "balance")
        assert "warm start" in warm

        def answer_lines(out):
            return [
                line for line in out.splitlines()
                if not line.startswith("[")  # strip timing/start banners
            ]

        assert answer_lines(cold) == answer_lines(warm)

    def test_restart_mid_chain_tail_replays_and_matches(self, tmp_path, capsys):
        """Snapshot a prefix, then restart against the full chain: the
        tail replays and every answer matches a cold-built service."""
        import shutil

        from repro import experiments
        from repro.chain.index import ChainIndex
        from repro.service import ForensicsService
        from repro.simulation import scenarios
        from repro.storage import StateStore

        world = scenarios.micro_economy(seed=3)
        cold_out = self._query(tmp_path, capsys, "top-clusters", "5")
        # Regress the store to a mid-chain snapshot.
        store = StateStore(tmp_path / "snapshots")
        for manifest in store.snapshots():
            shutil.rmtree(manifest.directory)
        reference = ForensicsService.from_world(world)  # the CLI's config
        prefix_index = ChainIndex()
        prefix_service = ForensicsService(
            prefix_index,
            tags=reference.tags,
            dice_addresses=reference.engine.dice_addresses,
        )
        midpoint = len(world.blocks) // 2
        for block in world.blocks[:midpoint]:
            prefix_index.add_block(block)
        store.snapshot(prefix_service)

        out = self._query(tmp_path, capsys, "top-clusters", "5")
        assert f"restored snapshot at height {midpoint - 1}" in out
        assert f"+ {len(world.blocks) - midpoint} tail blocks" in out
        answers = lambda text: [  # noqa: E731 - tiny local projection
            line for line in text.splitlines() if line.startswith("  cluster")
        ]
        assert answers(out) == answers(cold_out)

    def test_serve_checkpoint_persists_taint_cases(self, tmp_path, capsys):
        exit_code = main(
            ["serve", "--scenario", "micro", "--seed", "3",
             "--state-dir", str(tmp_path), "--generate", "30"]
        )
        assert exit_code == 0
        first = capsys.readouterr().out
        assert "taint cases: 3" in first
        exit_code = main(
            ["serve", "--scenario", "micro", "--seed", "3",
             "--state-dir", str(tmp_path), "--generate", "30"]
        )
        assert exit_code == 0
        second = capsys.readouterr().out
        assert "warm start" in second
        # The restored service already has the watched cases and serves
        # the same generated workload with the same mix.
        assert "taint cases: 3" in second


class TestSimulateCommand:
    def test_simulate_micro_writes_block_files(self, tmp_path, capsys):
        exit_code = main(
            ["simulate", "--scenario", "micro", "--seed", "3",
             "--out", str(tmp_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "validation OK" in out
        assert list(tmp_path.glob("blk*.dat"))

    def test_timeseries_micro_prints_series(self, capsys):
        exit_code = main(["timeseries", "--scenario", "micro", "--seed", "3"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "one chain pass" in out
        assert "H1+H2 clusters" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])

    def test_missing_out_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--scenario", "micro"])

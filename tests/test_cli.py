"""CLI dispatch (fast paths only; experiments have their own tests)."""

import pytest

from repro.cli import main


class TestSimulateCommand:
    def test_simulate_micro_writes_block_files(self, tmp_path, capsys):
        exit_code = main(
            ["simulate", "--scenario", "micro", "--seed", "3",
             "--out", str(tmp_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "validation OK" in out
        assert list(tmp_path.glob("blk*.dat"))

    def test_timeseries_micro_prints_series(self, capsys):
        exit_code = main(["timeseries", "--scenario", "micro", "--seed", "3"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "one chain pass" in out
        assert "H1+H2 clusters" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])

    def test_missing_out_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--scenario", "micro"])

"""CLI dispatch (fast paths only; experiments have their own tests)."""

import pytest

from repro.cli import main


class TestStateDirWarmStart:
    """`repro serve/query --state-dir`: transparent warm start, with a
    restarted service answering identically to a cold-built one."""

    def _query(self, state_dir, capsys, *tokens):
        exit_code = main(
            ["query", "--scenario", "micro", "--seed", "3",
             "--state-dir", str(state_dir), *tokens]
        )
        assert exit_code == 0
        return capsys.readouterr().out

    def test_cold_then_warm_answers_identically(self, tmp_path, capsys):
        cold = self._query(tmp_path, capsys, "top-clusters", "5", "balance")
        assert "cold start" in cold
        assert list((tmp_path / "blocks").glob("blk*.dat"))
        assert list((tmp_path / "snapshots").glob("snap-*"))
        warm = self._query(tmp_path, capsys, "top-clusters", "5", "balance")
        assert "warm start" in warm

        def answer_lines(out):
            return [
                line for line in out.splitlines()
                if not line.startswith("[")  # strip timing/start banners
            ]

        assert answer_lines(cold) == answer_lines(warm)

    def test_restart_mid_chain_tail_replays_and_matches(self, tmp_path, capsys):
        """Snapshot a prefix, then restart against the full chain: the
        tail replays and every answer matches a cold-built service."""
        import shutil

        from repro import experiments
        from repro.chain.index import ChainIndex
        from repro.service import ForensicsService
        from repro.simulation import scenarios
        from repro.storage import StateStore

        world = scenarios.micro_economy(seed=3)
        cold_out = self._query(tmp_path, capsys, "top-clusters", "5")
        # Regress the store to a mid-chain snapshot.
        store = StateStore(tmp_path / "snapshots")
        for manifest in store.snapshots():
            shutil.rmtree(manifest.directory)
        reference = ForensicsService.from_world(world)  # the CLI's config
        prefix_index = ChainIndex()
        prefix_service = ForensicsService(
            prefix_index,
            tags=reference.tags,
            dice_addresses=reference.engine.dice_addresses,
        )
        midpoint = len(world.blocks) // 2
        for block in world.blocks[:midpoint]:
            prefix_index.add_block(block)
        store.snapshot(prefix_service)

        out = self._query(tmp_path, capsys, "top-clusters", "5")
        assert f"restored snapshot at height {midpoint - 1}" in out
        assert f"+ {len(world.blocks) - midpoint} tail blocks" in out
        answers = lambda text: [  # noqa: E731 - tiny local projection
            line for line in text.splitlines() if line.startswith("  cluster")
        ]
        assert answers(out) == answers(cold_out)

    def test_serve_checkpoint_persists_taint_cases(self, tmp_path, capsys):
        exit_code = main(
            ["serve", "--scenario", "micro", "--seed", "3",
             "--state-dir", str(tmp_path), "--generate", "30"]
        )
        assert exit_code == 0
        first = capsys.readouterr().out
        assert "taint cases: 3" in first
        exit_code = main(
            ["serve", "--scenario", "micro", "--seed", "3",
             "--state-dir", str(tmp_path), "--generate", "30"]
        )
        assert exit_code == 0
        second = capsys.readouterr().out
        assert "warm start" in second
        # The restored service already has the watched cases and serves
        # the same generated workload with the same mix.
        assert "taint cases: 3" in second


class TestMetricsAndHealthRendering:
    """`repro metrics` / `repro health` degrade to one-line errors on
    bad dump files — no tracebacks — and render real dumps."""

    def _dump(self, tmp_path, capsys):
        dump = tmp_path / "metrics.json"
        exit_code = main(
            ["query", "--scenario", "micro", "--seed", "3",
             "--metrics-dump", str(dump),
             "top-clusters", "5", "balance"]
        )
        assert exit_code == 0
        capsys.readouterr()
        return dump

    @pytest.mark.parametrize("command", ["metrics", "health"])
    def test_missing_dump_one_line_error(self, tmp_path, capsys, command):
        exit_code = main([command, str(tmp_path / "nope.json")])
        assert exit_code == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error: cannot read")
        assert len(captured.err.strip().splitlines()) == 1

    @pytest.mark.parametrize("command", ["metrics", "health"])
    def test_empty_dump_one_line_error(self, tmp_path, capsys, command):
        dump = tmp_path / "empty.json"
        dump.write_text("   \n")
        assert main([command, str(dump)]) == 1
        err = capsys.readouterr().err
        assert "is empty" in err
        assert len(err.strip().splitlines()) == 1

    @pytest.mark.parametrize("command", ["metrics", "health"])
    def test_malformed_dump_one_line_error(self, tmp_path, capsys, command):
        dump = tmp_path / "broken.json"
        dump.write_text('{"metrics": ')
        assert main([command, str(dump)]) == 1
        err = capsys.readouterr().err
        assert "is not valid JSON" in err
        assert len(err.strip().splitlines()) == 1

    @pytest.mark.parametrize("command", ["metrics", "health"])
    def test_non_object_dump_one_line_error(self, tmp_path, capsys, command):
        dump = tmp_path / "list.json"
        dump.write_text("[1, 2, 3]")
        assert main([command, str(dump)]) == 1
        assert "expected a --metrics-dump JSON object" in (
            capsys.readouterr().err
        )

    def test_health_missing_section_one_line_error(self, tmp_path, capsys):
        dump = tmp_path / "old-format.json"
        dump.write_text('{"metrics": {}, "flight": []}')
        assert main(["health", str(dump)]) == 1
        assert "no health report" in capsys.readouterr().err

    def test_real_dump_renders_metrics_and_health(self, tmp_path, capsys):
        dump = self._dump(tmp_path, capsys)
        assert main(["metrics", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "ingest.index_seconds" in out
        assert main(["health", str(dump)]) == 0
        out = capsys.readouterr().out
        for component in ("chain", "engine", "aggregates", "views", "cache"):
            assert component in out


class TestDoctorCommand:
    def _build_state(self, tmp_path, capsys):
        exit_code = main(
            ["serve", "--scenario", "micro", "--seed", "3",
             "--state-dir", str(tmp_path), "--generate", "10"]
        )
        assert exit_code == 0
        capsys.readouterr()

    def test_clean_state_dir_exits_zero(self, tmp_path, capsys):
        self._build_state(tmp_path, capsys)
        report_path = tmp_path / "diagnosis.json"
        exit_code = main(
            ["doctor", "--state-dir", str(tmp_path),
             "--report", str(report_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "result: HEALTHY" in out
        assert "audit: clean" in out
        import json

        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True

    def test_flipped_byte_exits_nonzero(self, tmp_path, capsys):
        self._build_state(tmp_path, capsys)
        segment = sorted((tmp_path / "snapshots").glob("snap-*/*.seg"))[0]
        data = bytearray(segment.read_bytes())
        data[len(data) // 2] ^= 0xFF
        segment.write_bytes(bytes(data))
        exit_code = main(["doctor", "--state-dir", str(tmp_path)])
        assert exit_code == 1
        out = capsys.readouterr().out
        assert "PROBLEM" in out
        assert "result: PROBLEMS FOUND" in out

    def test_empty_dir_exits_nonzero(self, tmp_path, capsys):
        assert main(["doctor", "--state-dir", str(tmp_path)]) == 1
        assert "no snapshots directory" in capsys.readouterr().out


class TestLogJson:
    def test_query_log_json_writes_events(self, tmp_path, capsys):
        """With an instrumented rebuild (--metrics-dump) the chain is
        re-ingested, so the event log carries per-block events."""
        import json

        log_path = tmp_path / "events.jsonl"
        exit_code = main(
            ["query", "--scenario", "micro", "--seed", "3",
             "--log-json", str(log_path),
             "--metrics-dump", str(tmp_path / "metrics.json"),
             "top-clusters", "3", "balance"]
        )
        assert exit_code == 0
        capsys.readouterr()
        events = [
            json.loads(line)["event"]
            for line in log_path.read_text().splitlines()
        ]
        assert "block_ingested" in events
        assert "aggregate_flush" in events


class TestSimulateCommand:
    def test_simulate_micro_writes_block_files(self, tmp_path, capsys):
        exit_code = main(
            ["simulate", "--scenario", "micro", "--seed", "3",
             "--out", str(tmp_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "validation OK" in out
        assert list(tmp_path.glob("blk*.dat"))

    def test_timeseries_micro_prints_series(self, capsys):
        exit_code = main(["timeseries", "--scenario", "micro", "--seed", "3"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "one chain pass" in out
        assert "H1+H2 clusters" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])

    def test_missing_out_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--scenario", "micro"])

"""The fast examples run to completion as scripts."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, timeout: int = 180) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=EXAMPLES.parent,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "chain valid: True" in out
        assert "amplification" in out

    def test_network_propagation(self):
        out = _run("network_propagation.py")
        assert "100%" in out
        assert "confirmed: True" in out

    @pytest.mark.slow
    def test_track_silkroad(self):
        out = _run("track_silkroad.py", timeout=400)
        assert "chain 3" in out
        assert "peels to known exchanges" in out

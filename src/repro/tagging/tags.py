"""Address tags: the analyst's ground-truth fragments (§3).

A :class:`Tag` asserts that one address is controlled by a named
real-world entity.  The paper distinguishes tag *sources* by
reliability:

* ``own-transaction`` — addresses observed while transacting with a
  service (deposit addresses handed to us; inputs of payments made to
  us).  The most reliable source.
* ``public``          — self-advertised or crowd-submitted tags crawled
  from blockchain.info/tags and forums.  Less reliable; some are wrong.
* ``manual``          — hand-curated tags (theft reports, defunct
  services) accepted only after due diligence.

:class:`TagStore` aggregates tags, resolves per-address conflicts in
favour of higher-confidence sources, and exports the ``address →
entity`` mapping the naming and super-cluster analyses consume.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator

SOURCE_OWN = "own-transaction"
SOURCE_PUBLIC = "public"
SOURCE_MANUAL = "manual"

_DEFAULT_CONFIDENCE = {
    SOURCE_OWN: 1.0,
    SOURCE_MANUAL: 0.8,
    SOURCE_PUBLIC: 0.5,
}


@dataclass(frozen=True, slots=True)
class Tag:
    """One address-ownership assertion."""

    address: str
    entity: str
    source: str
    confidence: float
    observed_height: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence <= 1.0:
            raise ValueError(f"confidence must be in (0, 1], got {self.confidence}")


def make_tag(
    address: str,
    entity: str,
    source: str = SOURCE_OWN,
    *,
    confidence: float | None = None,
    observed_height: int | None = None,
) -> Tag:
    """Build a tag with the default confidence for its source."""
    if confidence is None:
        confidence = _DEFAULT_CONFIDENCE.get(source, 0.5)
    return Tag(
        address=address,
        entity=entity,
        source=source,
        confidence=confidence,
        observed_height=observed_height,
    )


class TagStore:
    """A collection of tags with conflict resolution."""

    def __init__(self, tags: Iterable[Tag] = ()) -> None:
        self._by_address: dict[str, list[Tag]] = defaultdict(list)
        self._count = 0
        for tag in tags:
            self.add(tag)

    def add(self, tag: Tag) -> None:
        """Record one tag (duplicates are kept; conflicts resolved lazily)."""
        self._by_address[tag.address].append(tag)
        self._count += 1

    def add_all(self, tags: Iterable[Tag]) -> None:
        for tag in tags:
            self.add(tag)

    def __len__(self) -> int:
        """Total tags recorded (including duplicates)."""
        return self._count

    def __contains__(self, address: str) -> bool:
        return address in self._by_address

    @property
    def address_count(self) -> int:
        """Distinct tagged addresses."""
        return len(self._by_address)

    def tags_for(self, address: str) -> list[Tag]:
        """All tags recorded for one address."""
        return list(self._by_address.get(address, ()))

    def best_tag(self, address: str) -> Tag | None:
        """The highest-confidence tag for an address (ties: first seen)."""
        tags = self._by_address.get(address)
        if not tags:
            return None
        return max(tags, key=lambda t: t.confidence)

    def entity_of(self, address: str) -> str | None:
        """The entity the best tag asserts, or None."""
        best = self.best_tag(address)
        return best.entity if best else None

    def all_tags(self) -> Iterator[Tag]:
        """Every tag (including shadowed lower-confidence ones)."""
        for tags in self._by_address.values():
            yield from tags

    def entities(self) -> set[str]:
        """All entity names appearing in any tag."""
        return {tag.entity for tag in self.all_tags()}

    def addresses_of(self, entity: str) -> set[str]:
        """Addresses whose best tag names ``entity``."""
        return {
            address
            for address in self._by_address
            if self.entity_of(address) == entity
        }

    def as_mapping(self, *, min_confidence: float = 0.0) -> dict[str, str]:
        """Export ``address -> entity`` using each address's best tag."""
        out: dict[str, str] = {}
        for address in self._by_address:
            best = self.best_tag(address)
            if best is not None and best.confidence >= min_confidence:
                out[address] = best.entity
        return out

    def conflicts(self) -> list[str]:
        """Addresses carrying tags for more than one entity."""
        return [
            address
            for address, tags in self._by_address.items()
            if len({t.entity for t in tags}) > 1
        ]

    def merged_with(self, other: "TagStore") -> "TagStore":
        """A new store holding both stores' tags."""
        merged = TagStore()
        merged.add_all(self.all_tags())
        merged.add_all(other.all_tags())
        return merged

    def export_state(self) -> list[tuple]:
        """Every tag as a plain tuple, in per-address insertion order —
        the shape the durable state store serializes."""
        return [
            (tag.address, tag.entity, tag.source, tag.confidence,
             tag.observed_height)
            for tag in self.all_tags()
        ]

    @classmethod
    def from_state(cls, state: Iterable[tuple]) -> "TagStore":
        """Rebuild a store from :meth:`export_state` output.  Re-adding
        in exported order reproduces conflict resolution exactly."""
        store = cls()
        for address, entity, source, confidence, observed_height in state:
            store.add(Tag(address, entity, source, confidence, observed_height))
        return store

"""Service tagging: the §3 data-collection phase.

* :mod:`~repro.tagging.tags` — tags, confidence tiers, the tag store;
* :mod:`~repro.tagging.attack` — the re-identification attack
  (transact with every service, observe its addresses);
* :mod:`~repro.tagging.sources` — simulated public tag crawl;
* :mod:`~repro.tagging.naming` — propagating tags over clusters.
"""

from .attack import AttackStats, ReidentificationAttack
from .naming import ClusterNaming, NamedCluster, NamingReport
from .sources import PublicTagCrawl, manual_theft_tags
from .tags import (
    SOURCE_MANUAL,
    SOURCE_OWN,
    SOURCE_PUBLIC,
    Tag,
    TagStore,
    make_tag,
)

__all__ = [
    "AttackStats",
    "ClusterNaming",
    "NamedCluster",
    "NamingReport",
    "PublicTagCrawl",
    "ReidentificationAttack",
    "SOURCE_MANUAL",
    "SOURCE_OWN",
    "SOURCE_PUBLIC",
    "Tag",
    "TagStore",
    "make_tag",
    "manual_theft_tags",
]

"""Public tag sources (§3.2): simulated blockchain.info/tags + forums.

The paper collected 5,000+ tags from users' forum signatures and
self-submitted labels, explicitly treating them as *less reliable* than
its own transactions.  :class:`PublicTagCrawl` reproduces that source
against the simulated world: it samples addresses whose owners
"advertised" them, and mislabels a configurable fraction — so the
naming layer's confidence tiers actually matter.
"""

from __future__ import annotations

import random

from ..simulation.economy import World
from .tags import SOURCE_MANUAL, SOURCE_PUBLIC, Tag, TagStore, make_tag


class PublicTagCrawl:
    """Samples self-advertised and crowd-submitted address tags."""

    def __init__(
        self,
        world: World,
        *,
        seed: int = 0,
        coverage: float = 0.02,
        mislabel_rate: float = 0.05,
        include_users: bool = True,
    ) -> None:
        if not 0.0 <= mislabel_rate <= 1.0:
            raise ValueError("mislabel_rate must be within [0, 1]")
        self.world = world
        self.rng = random.Random(f"crawl/{seed}")
        self.coverage = coverage
        self.mislabel_rate = mislabel_rate
        self.include_users = include_users

    def crawl(self) -> TagStore:
        """Produce the public tag store."""
        gt = self.world.ground_truth
        store = TagStore()
        entity_names = [info.name for info in gt.entities()]
        for info in gt.entities():
            if info.category == "crime":
                continue  # criminals do not self-advertise
            if info.category == "users" and not self.include_users:
                continue
            addresses = sorted(gt.addresses_of(info.name))
            if not addresses:
                continue
            n = max(1, int(len(addresses) * self.coverage))
            # Services advertise a few addresses; users sign forum posts
            # with one.
            if info.category == "users":
                n = 1 if self.rng.random() < 0.25 else 0
            for address in self.rng.sample(addresses, min(n, len(addresses))):
                entity = info.name
                if self.rng.random() < self.mislabel_rate:
                    entity = self.rng.choice(entity_names)
                store.add(make_tag(address, entity, SOURCE_PUBLIC))
        return store


def manual_theft_tags(world: World) -> TagStore:
    """Tags for theft loot addresses, as curated from forum theft threads
    (the paper's bitcointalk.org theft list, §3.2/§5)."""
    store = TagStore()
    for theft in world.extras.get("thefts", ()):
        for address in theft.record.loot_addresses:
            store.add(make_tag(address, theft.name, SOURCE_MANUAL))
    return store

"""The re-identification attack (§3.1): transact with every service.

The paper's predominant tagging method was "simply transacting" with
services — 344 transactions against ~70 services — and observing the
addresses on the other side:

* when a service hands us a **deposit address**, we tag it immediately;
* when a service **pays us** (withdrawal, payout, conversion, mix
  return), we watch the chain for the payment and tag the *input
  addresses* of the paying transaction.

:class:`ReidentificationAttack` replays this against the simulated
economy.  It is an actor (it needs a wallet, funded the way the paper
funded itself: by mining with pools), plus a per-block chain-scanning
hook that resolves pending expectations into tags.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain.model import Transaction
from ..simulation.actors import (
    Actor,
    CasinoSite,
    DiceGame,
    DonationService,
    Exchange,
    FixedRateExchange,
    InvestmentScheme,
    MiningPool,
    MiscService,
    Mixer,
    PaymentGateway,
    Vendor,
    WalletService,
)
from ..simulation.builder import CHANGE_FRESH, build_payment
from ..simulation.economy import Economy
from ..simulation.params import CATEGORY_USERS
from ..simulation.wallet import InsufficientFundsError
from .tags import SOURCE_OWN, Tag, TagStore, make_tag


@dataclass
class AttackStats:
    """Bookkeeping matching the numbers §3.1/§4.2 report."""

    transactions_made: int = 0
    services_engaged: set[str] = field(default_factory=set)
    deposits: int = 0
    withdrawals_requested: int = 0
    payouts_observed: int = 0
    addresses_tagged: int = 0


@dataclass(frozen=True, slots=True)
class _Expectation:
    """We expect ``service`` to pay ``my_address``; tag the payer."""

    my_address: str
    service: str


class _PoolMembership:
    """The attack's face toward one mining pool.

    Pools ask members for a payment address at payout time; routing the
    request through this proxy lets the attack know *which pool* is
    about to pay, so the payout's input addresses can be tagged (§3.1:
    "For each payout transaction, we then labeled the input addresses
    as belonging to the pool").
    """

    def __init__(self, attack: "ReidentificationAttack", pool_name: str) -> None:
        self._attack = attack
        self._pool_name = pool_name
        self.name = f"{attack.name}@{pool_name}"

    def payment_address(self) -> str:
        address = self._attack.wallet.fresh_address()
        self._attack._expect_payment(address, self._pool_name)
        return address


class ReidentificationAttack(Actor):
    """An analyst actor that engages every service and collects tags."""

    def __init__(
        self,
        *,
        name: str = "analyst",
        start_height: int = 30,
        interval: int = 2,
        rounds: int = 3,
        bet_value: int = 20_000_000,
        payment_value: int = 60_000_000,
    ) -> None:
        super().__init__(name, CATEGORY_USERS)
        self.start_height = start_height
        self.interval = interval
        self.rounds = rounds
        self.bet_value = bet_value
        self.payment_value = payment_value
        self.tags = TagStore()
        self.stats = AttackStats()
        self._expectations: list[_Expectation] = []
        self._plan: list = []
        self._plan_pos = 0
        self._scanned_height = -1

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    @classmethod
    def install(cls, economy: Economy, **kwargs) -> "ReidentificationAttack":
        """Register the attack on an economy (before ``economy.run()``).

        Joins every mining pool (our mining rig earned payouts from 11
        pools in the paper) and schedules interactions with every other
        service, ``rounds`` times over.
        """
        attack = cls(**kwargs)
        economy.register(attack)
        for pool in economy.actors_in_category("mining"):
            pool.add_member(_PoolMembership(attack, pool.name))
            attack.stats.services_engaged.add(pool.name)
        attack._build_plan(economy)
        return attack

    def _build_plan(self, economy: Economy) -> None:
        services = [
            actor
            for actor in economy.actors()
            if actor.category
            not in (CATEGORY_USERS, "crime")
            and not isinstance(actor, MiningPool)
            and actor is not self
        ]
        self._plan = services * self.rounds

    # ------------------------------------------------------------------
    # tagging primitives
    # ------------------------------------------------------------------

    def _tag(self, address: str, service: str) -> None:
        if address in self.tags.addresses_of(service):
            return
        self.tags.add(
            make_tag(
                address,
                service,
                SOURCE_OWN,
                observed_height=self.economy.height,
            )
        )
        self.stats.addresses_tagged = self.tags.address_count

    def _expect_payment(self, my_address: str, service: str) -> None:
        self._expectations.append(_Expectation(my_address, service))

    def _pay(self, address: str, value: int) -> Transaction | None:
        fee = self.economy.params.fee
        try:
            built = build_payment(
                self.wallet,
                [(address, value)],
                fee=fee,
                change_kind=CHANGE_FRESH,
                rng=self.rng,
            )
        except InsufficientFundsError:
            return None
        tx = self.economy.submit(built, self.wallet)
        self.stats.transactions_made += 1
        return tx

    # ------------------------------------------------------------------
    # chain scanning: resolve expectations into tags
    # ------------------------------------------------------------------

    def _scan_new_blocks(self) -> None:
        if not self._expectations:
            self._scanned_height = len(self.economy.blocks) - 1
            return
        watched = {e.my_address: e for e in self._expectations}
        resolved: set[str] = set()
        for height in range(self._scanned_height + 1, len(self.economy.blocks)):
            block = self.economy.blocks[height]
            for tx in block.transactions:
                if tx.is_coinbase:
                    continue
                hits = [
                    out.address
                    for out in tx.outputs
                    if out.address in watched and out.address not in resolved
                ]
                if not hits:
                    continue
                # Tag every input address as belonging to the payer.
                senders = self._input_addresses(tx)
                for my_address in hits:
                    expectation = watched[my_address]
                    for sender in senders:
                        self._tag(sender, expectation.service)
                    resolved.add(my_address)
                    self.stats.payouts_observed += 1
        self._scanned_height = len(self.economy.blocks) - 1
        if resolved:
            self._expectations = [
                e for e in self._expectations if e.my_address not in resolved
            ]

    def _input_addresses(self, tx: Transaction) -> list[str]:
        """Resolve input addresses by looking up prevouts in the chain
        the attack can see (mempool-submitted txs included)."""
        out: list[str] = []
        for txin in tx.inputs:
            if txin.is_coinbase:
                continue
            prev = self._find_output(txin.prevout)
            if prev is not None and prev.address is not None:
                out.append(prev.address)
        return out

    def _find_output(self, outpoint):
        # The attack scans only mined blocks, so a linear probe through
        # the economy's per-txid map is the honest analyst view.
        for block in self.economy.blocks:
            for tx in block.transactions:
                if tx.txid == outpoint.txid:
                    if outpoint.vout < len(tx.outputs):
                        return tx.outputs[outpoint.vout]
                    return None
        return None

    # ------------------------------------------------------------------
    # per-service engagement
    # ------------------------------------------------------------------

    def step(self, height: int) -> None:
        self._scan_new_blocks()
        if height < self.start_height or height % self.interval != 0:
            return
        if self._plan_pos >= len(self._plan):
            return
        service = self._plan[self._plan_pos]
        self._plan_pos += 1
        self._engage(service)

    def _engage(self, service) -> None:
        engaged = False
        if isinstance(service, (WalletService, Exchange, CasinoSite, InvestmentScheme)):
            engaged = self._engage_bank_like(service)
        elif isinstance(service, FixedRateExchange):
            engaged = self._engage_fixed(service)
        elif isinstance(service, PaymentGateway):
            engaged = True  # engaged indirectly through gateway vendors
        elif isinstance(service, Vendor):
            engaged = self._engage_vendor(service)
        elif isinstance(service, DiceGame):
            engaged = self._engage_dice(service)
        elif isinstance(service, Mixer):
            engaged = self._engage_mixer(service)
        elif isinstance(service, (DonationService, MiscService)):
            engaged = self._engage_misc(service)
        if engaged:
            self.stats.services_engaged.add(service.name)

    def _engage_bank_like(self, service) -> bool:
        deposit_address = service.deposit_address()
        tx = self._pay(deposit_address, self.payment_value)
        if tx is None:
            return False
        self._tag(deposit_address, service.name)
        self.stats.deposits += 1
        # Withdraw most of it back to a fresh address and watch for the
        # payout to tag the service's hot-wallet inputs.
        my_address = self.wallet.fresh_address()
        amount = int(self.payment_value * 0.9)
        service.request_withdrawal(my_address, amount)
        self._expect_payment(my_address, service.name)
        self.stats.withdrawals_requested += 1
        if isinstance(service, InvestmentScheme):
            service.record_investment(self.name, self.payment_value)
        return True

    def _engage_fixed(self, service: FixedRateExchange) -> bool:
        intake = service.payment_address()
        tx = self._pay(intake, self.payment_value)
        if tx is None:
            return False
        self._tag(intake, service.name)
        my_address = self.wallet.fresh_address()
        service.convert(my_address, int(self.payment_value * 0.95))
        self._expect_payment(my_address, service.name)
        return True

    def _engage_vendor(self, service: Vendor) -> bool:
        # The checkout page reveals whether payment goes to a gateway;
        # the paper tagged BitPay's addresses for gateway merchants.
        sale_address = service.sale_address(self.payment_value)
        tx = self._pay(sale_address, self.payment_value)
        if tx is None:
            return False
        owner = service.gateway.name if service.gateway is not None else service.name
        self._tag(sale_address, owner)
        return True

    def _engage_dice(self, service: DiceGame) -> bool:
        fee = self.economy.params.fee
        coins = [c for c in self.wallet.coins() if c.value >= self.bet_value + fee]
        if not coins:
            return False
        coin = coins[0]
        bet_address = service.bet_address()
        try:
            built = build_payment(
                self.wallet,
                [(bet_address, self.bet_value)],
                fee=fee,
                change_kind=CHANGE_FRESH,
                rng=self.rng,
                coins=[coin],
            )
        except InsufficientFundsError:
            return False
        self.economy.submit(built, self.wallet)
        self.stats.transactions_made += 1
        service.place_bet(coin.address, self.bet_value)
        self._tag(bet_address, service.name)
        # A winning payout will arrive at the betting address.
        self._expect_payment(coin.address, service.name)
        return True

    def _engage_mixer(self, service: Mixer) -> bool:
        intake = service.intake_address()
        tx = self._pay(intake, self.payment_value)
        if tx is None:
            return False
        self._tag(intake, service.name)
        paid_vout = next(
            vout for vout, out in enumerate(tx.outputs) if out.address == intake
        )
        my_address = self.wallet.fresh_address()
        service.request_mix(tx.outpoint(paid_vout), self.payment_value, my_address)
        self._expect_payment(my_address, service.name)
        return True

    def _engage_misc(self, service) -> bool:
        address = service.payment_address()
        tx = self._pay(address, self.payment_value // 4)
        if tx is None:
            return False
        self._tag(address, service.name)
        return True

"""Cluster naming: propagating tags over a clustering (§4.2).

Tagging by itself covers a sliver of the chain (the paper hand-tagged
1,070 addresses via 344 transactions).  Clustering is the amplifier: one
tag anywhere in a cluster names the whole cluster — "Heuristic 2 allowed
us to name 1,600 times more addresses than our own manual observation
provided".

:class:`ClusterNaming` assigns each cluster the entity of its
highest-confidence tags (majority-of-confidence within the cluster),
records conflicts, and computes the paper's coverage numbers: named
clusters, addresses covered, and the amplification factor.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from typing import Mapping

from ..core.clustering import Clustering
from .tags import TagStore


def ranked_entities(weights: Mapping[str, float]) -> list[tuple[str, float]]:
    """Entities by descending summed tag confidence, ties by name.

    The single source of the naming winner rule: index 0 is the entity
    a cluster is named after, the rest are its conflicts.  Shared by
    :class:`ClusterNaming` and the query service's canonical-keyed
    cluster-name aggregate so both naming paths can never diverge.
    """
    return sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))


def top_entity(weights: Mapping[str, float]) -> str:
    """``ranked_entities(weights)[0][0]`` without sorting the rest.

    The hot naming paths only need the winner; this is the same rule
    (highest summed confidence, ties by entity name) in one pass.
    """
    return min(weights.items(), key=lambda kv: (-kv[1], kv[0]))[0]


@dataclass
class NamedCluster:
    """One cluster that received a name."""

    root: object
    name: str
    size: int
    tag_count: int
    conflicting_entities: tuple[str, ...] = ()

    @property
    def has_conflict(self) -> bool:
        return bool(self.conflicting_entities)


@dataclass
class NamingReport:
    """The §4.2 coverage accounting."""

    named_cluster_count: int
    named_address_count: int
    hand_tagged_address_count: int
    conflict_count: int
    clusters_per_entity: dict[str, int] = field(default_factory=dict)

    @property
    def amplification(self) -> float:
        """Named addresses per hand-tagged address (paper: ×1,600)."""
        if not self.hand_tagged_address_count:
            return 0.0
        return self.named_address_count / self.hand_tagged_address_count


class ClusterNaming:
    """Tag propagation over one clustering."""

    def __init__(self, clustering: Clustering, tags: TagStore) -> None:
        self.clustering = clustering
        self.tags = tags
        self._named: dict[object, NamedCluster] = {}
        self._build()

    def _build(self) -> None:
        weight_by_root: dict[object, dict[str, float]] = defaultdict(
            lambda: defaultdict(float)
        )
        count_by_root: dict[object, int] = defaultdict(int)
        for tag in self.tags.all_tags():
            if tag.address not in self.clustering.uf:
                continue
            root = self.clustering.uf.find(tag.address)
            weight_by_root[root][tag.entity] += tag.confidence
            count_by_root[root] += 1
        for root, weights in weight_by_root.items():
            ranked = ranked_entities(weights)
            winner, _ = ranked[0]
            conflicts = tuple(name for name, _ in ranked[1:])
            self._named[root] = NamedCluster(
                root=root,
                name=winner,
                size=self.clustering.uf.size_of(root),
                tag_count=count_by_root[root],
                conflicting_entities=conflicts,
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def name_of_cluster(self, root: object) -> str | None:
        """The name assigned to a cluster root, if any."""
        named = self._named.get(root)
        return named.name if named else None

    def name_of_address(self, address: str) -> str | None:
        """The name of the cluster containing ``address`` (transitive
        taint: one tag names every address in the cluster)."""
        if address not in self.clustering.uf:
            return None
        return self.name_of_cluster(self.clustering.uf.find(address))

    def name_of_address_id(self, ident: int | None) -> str | None:
        """Id-keyed :meth:`name_of_address` for interned clusterings.

        The §5 trackers' hot loops resolve recipients thousands of
        times; going through
        :meth:`~repro.core.clustering.InternedPartition.find_root` on a
        dense id skips re-hashing the base58 string inside the
        partition.  ``None`` (address never interned) maps to ``None``.
        """
        if ident is None:
            return None
        root = self.clustering.uf.find_root(ident)
        return None if root is None else self.name_of_cluster(root)

    def named_clusters(self) -> list[NamedCluster]:
        """All named clusters, largest first."""
        return sorted(self._named.values(), key=lambda c: -c.size)

    def clusters_named(self, entity: str) -> list[NamedCluster]:
        """Clusters assigned to one entity (paper: 20 for Mt. Gox)."""
        return [c for c in self._named.values() if c.name == entity]

    def addresses_of(self, entity: str) -> set[str]:
        """Every address in every cluster named ``entity``."""
        roots = {c.root for c in self._named.values() if c.name == entity}
        out: set[str] = set()
        if not roots:
            return out
        for address in self.clustering.uf.iter_items():
            if self.clustering.uf.find(address) in roots:
                out.add(address)
        return out

    def report(self) -> NamingReport:
        """Compute the coverage numbers."""
        named_addresses = 0
        per_entity: dict[str, int] = defaultdict(int)
        for cluster in self._named.values():
            named_addresses += cluster.size
            per_entity[cluster.name] += 1
        conflict_count = sum(1 for c in self._named.values() if c.has_conflict)
        return NamingReport(
            named_cluster_count=len(self._named),
            named_address_count=named_addresses,
            hand_tagged_address_count=self.tags.address_count,
            conflict_count=conflict_count,
            clusters_per_entity=dict(per_entity),
        )

"""Forward taint propagation (haircut model).

An extension of the paper's flow tracking: instead of following only the
change chain, propagate *taint* forward through every spend, diluting
proportionally when tainted and clean values are co-spent ("haircut"
accounting).  This quantifies how much of a theft's value reaches each
named entity even through folding and splits — the cases §5 says the
peeling methodology handles poorly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..chain.index import ChainIndex
from ..chain.model import OutPoint


@dataclass
class TaintResult:
    """Outcome of a taint propagation run."""

    initial_taint: int
    taint_by_outpoint: dict[OutPoint, float] = field(default_factory=dict)
    taint_at_entities: dict[str, float] = field(default_factory=dict)
    txs_processed: int = 0

    @property
    def unspent_taint(self) -> float:
        """Taint still sitting in unspent outputs."""
        return sum(self.taint_by_outpoint.values())

    def reach(self, entity: str) -> float:
        """Tainted satoshis that reached one named entity."""
        return self.taint_at_entities.get(entity, 0.0)


def taint_step(
    index: ChainIndex,
    tx,
    taint: dict[OutPoint, float],
    *,
    name_of_address,
    min_taint: float,
    at_entities: dict[str, float],
) -> list[OutPoint] | None:
    """Apply one transaction's haircut to a live taint map, in place.

    Returns ``None`` when the transaction spends no tainted outpoint
    (nothing happened); otherwise the list of outpoints that joined the
    taint frontier (possibly empty).  Tainted inputs are popped from
    ``taint``; each output's proportional share either accrues to
    ``at_entities`` (named address: the subpoena point, propagation
    stops) or is written back to ``taint`` as a new frontier outpoint.
    Shares below ``min_taint`` evaporate.  This function *is* the batch
    tracker's inner loop, shared with the streaming
    :class:`~repro.service.views.TaintView` so the two cannot drift.

    The untouched case must stay cheap: the streaming view offers every
    chain transaction to every watched case, so membership is checked
    with dict pops alone and input values are only resolved once the
    transaction is known to spend taint.
    """
    tainted_in = 0.0
    touched = False
    for txin in tx.inputs:
        if txin.is_coinbase:
            continue
        share = taint.pop(txin.prevout, None)
        if share is not None:
            touched = True
            tainted_in += share
    if not touched:
        return None
    frontier: list[OutPoint] = []
    total_in = index.input_value(tx)  # memoized at ingestion
    if tainted_in < min_taint or total_in == 0:
        return frontier
    ratio = tainted_in / total_in
    for vout, out in enumerate(tx.outputs):
        share = out.value * ratio
        if share < min_taint:
            continue
        entity = name_of_address(out.address) if out.address else None
        if entity is not None:
            at_entities[entity] = at_entities.get(entity, 0.0) + share
            continue
        outpoint = OutPoint(tx.txid, vout)
        taint[outpoint] = taint.get(outpoint, 0.0) + share
        frontier.append(outpoint)
    return frontier


class TaintTracker:
    """Haircut taint propagation over a chain index."""

    def __init__(
        self,
        index: ChainIndex,
        *,
        name_of_address=None,
        min_taint: float = 1.0,
    ) -> None:
        self.index = index
        self.name_of_address = name_of_address or (lambda _a: None)
        self.min_taint = min_taint

    def propagate(
        self, sources: list[OutPoint], *, max_txs: int = 50_000
    ) -> TaintResult:
        """Propagate taint forward from the given outputs.

        Taint stops at outputs whose address is *named* (it has arrived
        at a known entity — the subpoena point) and at unspent outputs.
        """
        taint: dict[OutPoint, float] = {}
        initial = 0
        for outpoint in sources:
            value = self.index.output(outpoint).value
            taint[outpoint] = float(value)
            initial += value
        result = TaintResult(initial_taint=initial)
        queue: list[tuple[int, int, bytes]] = []
        queued: set[bytes] = set()

        def enqueue(outpoint: OutPoint) -> None:
            spender = self.index.spender_of(outpoint)
            if spender is None:
                return
            txid, _vin = spender
            if txid in queued:
                return
            queued.add(txid)
            location = self.index.location(txid)
            heapq.heappush(queue, (location.height, location.index_in_block, txid))

        for outpoint in list(taint):
            enqueue(outpoint)
        while queue and result.txs_processed < max_txs:
            _height, _pos, txid = heapq.heappop(queue)
            tx = self.index.tx(txid)
            result.txs_processed += 1
            frontier = taint_step(
                self.index,
                tx,
                taint,
                name_of_address=self.name_of_address,
                min_taint=self.min_taint,
                at_entities=result.taint_at_entities,
            )
            for outpoint in frontier or ():
                enqueue(outpoint)
        result.taint_by_outpoint = taint
        return result

"""Flow analyses (§5): peeling chains, thefts, balances, the user graph."""

from .balances import BalanceAnalyzer, BalanceSeries
from .chokepoints import ChokepointReport, chokepoint_report, entity_exposure
from .peeling import (
    Peel,
    PeelChain,
    PeelHop,
    PeelingTracker,
    ServicePeelSummary,
    summarize_peels_by_entity,
)
from .taint import TaintResult, TaintTracker
from .thefts import (
    ExchangeHit,
    MovementStep,
    TheftAnalysis,
    TheftTracker,
)
from .user_graph import (
    UserGraphStats,
    build_user_graph,
    flows_between,
    graph_stats,
    top_counterparties,
)

__all__ = [
    "BalanceAnalyzer",
    "BalanceSeries",
    "ChokepointReport",
    "chokepoint_report",
    "entity_exposure",
    "ExchangeHit",
    "MovementStep",
    "Peel",
    "PeelChain",
    "PeelHop",
    "PeelingTracker",
    "ServicePeelSummary",
    "TaintResult",
    "TaintTracker",
    "TheftAnalysis",
    "TheftTracker",
    "UserGraphStats",
    "build_user_graph",
    "flows_between",
    "graph_stats",
    "summarize_peels_by_entity",
    "top_counterparties",
]

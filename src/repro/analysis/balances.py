"""Category balance time series (Figure 2).

Figure 2 plots, over time, the balance held by each major service
category — exchanges, mining, wallets, gambling, vendors, fixed,
investment — as a percentage of *active* bitcoins (those not parked in
sink addresses that have never spent).

:class:`BalanceAnalyzer` computes the same series from a chain index and
an address→entity naming function plus an entity→category map.  Run it
with ground truth for an oracle view, or with the analyst's cluster
naming for the paper's view; the bench does the latter.

Two data paths produce identical series (property-tested):

* the batch chain re-walk (every address record + every block), the
  only option without a serving layer;
* the streaming path — pass a warm
  :class:`~repro.service.views.BalanceView` as ``view`` and the series
  is replayed from its compact per-height ``(address id, delta)`` event
  log plus its issuance ledger, touching no transaction or record.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..chain.index import ChainIndex


@dataclass
class BalanceSeries:
    """Sampled balances per category."""

    heights: list[int]
    timestamps: list[int]
    supply: np.ndarray
    """Total coins issued at each sample."""

    sink_balance: np.ndarray
    """Coins held (at sample time) by addresses that never spend in the
    observation window."""

    by_category: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def active(self) -> np.ndarray:
        """Active bitcoins: supply minus sink holdings."""
        return self.supply - self.sink_balance

    def percentage(self, category: str) -> np.ndarray:
        """A category's balance as % of active bitcoins (Figure 2 y-axis)."""
        active = np.where(self.active > 0, self.active, 1)
        return 100.0 * self.by_category[category] / active

    def peak(self, category: str, *, skip_fraction: float = 0.0) -> float:
        """Peak percentage reached by a category.

        ``skip_fraction`` ignores the earliest samples: with only a few
        active coins in existence, one payment can be 100% of activity,
        which says nothing about the steady-state economy Figure 2
        describes.
        """
        series = self.percentage(category)
        start = int(len(series) * skip_fraction)
        series = series[start:]
        return float(series.max()) if len(series) else 0.0


class BalanceAnalyzer:
    """Computes Figure 2's series from a chain index."""

    def __init__(
        self,
        index: ChainIndex,
        *,
        name_of_address,
        category_of_entity,
        categories: tuple[str, ...],
        view=None,
    ) -> None:
        """``view`` is an optional warm
        :class:`~repro.service.views.BalanceView` over the same index;
        when given (and level with the tip), :meth:`series` streams off
        its event log instead of re-walking the chain."""
        self.index = index
        self.name_of_address = name_of_address
        self.category_of_entity = category_of_entity
        self.categories = categories
        self.view = view

    def _category_of(self, address: str) -> str | None:
        entity = self.name_of_address(address)
        if entity is None:
            return None
        return self.category_of_entity(entity)

    def series(self, *, samples: int = 60) -> BalanceSeries:
        """Sample balances at ``samples`` evenly spaced heights."""
        tip = self.index.height
        if tip < 0:
            raise ValueError("empty chain")
        samples = min(samples, tip + 1)
        sample_heights = sorted(
            {int(round(h)) for h in np.linspace(0, tip, samples)}
        )
        # Per-height value deltas for each category, sinks, and supply.
        deltas: dict[str, defaultdict[int, int]] = {
            category: defaultdict(int) for category in self.categories
        }
        sink_deltas: defaultdict[int, int] = defaultdict(int)
        supply_deltas: defaultdict[int, int] = defaultdict(int)
        if self.view is not None and self.view.height == tip:
            self._deltas_from_view(deltas, sink_deltas, supply_deltas)
        else:
            self._deltas_from_chain_walk(deltas, sink_deltas, supply_deltas)
        series = BalanceSeries(
            heights=sample_heights,
            timestamps=[self.index.timestamp_at(h) for h in sample_heights],
            supply=_cumulative_at(supply_deltas, sample_heights),
            sink_balance=_cumulative_at(sink_deltas, sample_heights),
        )
        for category in self.categories:
            series.by_category[category] = _cumulative_at(
                deltas[category], sample_heights
            )
        return series

    def _deltas_from_chain_walk(self, deltas, sink_deltas, supply_deltas) -> None:
        """The batch path: every address record plus every block."""
        category_cache: dict[str, str | None] = {}
        for record in self.index.iter_addresses():
            address = record.address
            is_sink = record.is_sink
            if is_sink:
                # Sink-held coins are not "active" (Figure 2's y-axis is
                # a share of active bitcoins), so they count toward the
                # sink series and are excluded from category balances.
                for receive in record.receives:
                    sink_deltas[receive.height] += receive.value
                continue
            category = category_cache.get(address, "!miss")
            if category == "!miss":
                category = self._category_of(address)
                category_cache[address] = category
            if category not in deltas:
                continue
            for receive in record.receives:
                deltas[category][receive.height] += receive.value
            for spend in record.spends:
                deltas[category][spend.height] -= spend.value
        for block in self.index.blocks:
            for tx in block.transactions:
                if tx.is_coinbase:
                    supply_deltas[block.height] += tx.total_output_value

    def _deltas_from_view(self, deltas, sink_deltas, supply_deltas) -> None:
        """The streaming path: replay the warm view's event log.

        Emits exactly the chain walk's deltas — a sink address only
        ever has positive events (it never spends), categories resolve
        identically per address — without touching a transaction or an
        address record's receive/spend lists.
        """
        view = self.view
        address_by_id = self.index.address_by_id
        category_by_id: dict[int, str | None] = {}
        miss = object()
        for height in range(view.height + 1):
            minted = view.coinbase_at(height)
            if minted:
                supply_deltas[height] += minted
            for ident, delta in view.events_at(height):
                category = category_by_id.get(ident, miss)
                if category is miss:
                    record = address_by_id(ident)
                    if record.is_sink:
                        category_by_id[ident] = "!sink"
                        sink_deltas[height] += delta
                        continue
                    category = self._category_of(record.address)
                    category_by_id[ident] = category
                elif category == "!sink":
                    sink_deltas[height] += delta
                    continue
                if category in deltas:
                    deltas[category][height] += delta


def _cumulative_at(deltas: dict[int, int], sample_heights: list[int]) -> np.ndarray:
    """Cumulative-sum a sparse height→delta map at the sample heights."""
    events = sorted(deltas.items())
    out = np.zeros(len(sample_heights), dtype=np.float64)
    running = 0
    event_index = 0
    for i, height in enumerate(sample_heights):
        while event_index < len(events) and events[event_index][0] <= height:
            running += events[event_index][1]
            event_index += 1
        out[i] = running
    return out

"""Theft tracking and movement classification (§5, Table 3).

Given the transactions in which a service's coins moved to a thief, the
paper manually classified how the loot moved afterwards using a small
grammar — **A**ggregation, **P**eeling chain, **S**plit, **F**olding —
and checked whether any of it reached a known exchange.

:class:`TheftTracker` automates that inspection.  It maintains the set
of outpoints currently holding loot (the *frontier*), consumes the
transactions that spend them in chain order, classifies each move, and
collapses runs of peel hops into single ``P`` steps.  Recipients of
peels and terminal sweeps are checked against a naming function, so the
tracker reports exactly Table 3's columns: movement string and exchange
reach (plus the amounts, for the Betcoin/Bitfloor case studies).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..chain.index import ChainIndex
from ..chain.model import OutPoint, Transaction
from ..core.heuristic2 import Heuristic2, Heuristic2Config

KIND_AGGREGATION = "A"
KIND_PEEL = "P"
KIND_SPLIT = "S"
KIND_FOLD = "F"


@dataclass(frozen=True, slots=True)
class ExchangeHit:
    """Loot arriving at a named entity."""

    entity: str
    value: int
    txid: bytes
    height: int


@dataclass
class MovementStep:
    """One classified move of the loot."""

    kind: str
    tx_count: int
    first_height: int
    last_height: int


@dataclass
class TheftAnalysis:
    """The tracker's verdict for one theft."""

    loot_value: int
    steps: list[MovementStep] = field(default_factory=list)
    recipient_hits: list[ExchangeHit] = field(default_factory=list)
    dormant_value: int = 0
    txs_followed: int = 0

    @property
    def movement(self) -> str:
        """The Table 3 movement string, e.g. ``"A/P/S"``."""
        return "/".join(step.kind for step in self.steps)

    def hits_to(self, entities: set[str]) -> list[ExchangeHit]:
        """Recipient hits restricted to the given entity names."""
        return [h for h in self.recipient_hits if h.entity in entities]

    def reached(self, entities: set[str]) -> bool:
        """Did any loot reach one of the given entities?"""
        return bool(self.hits_to(entities))

    def value_to(self, entities: set[str]) -> int:
        """Total satoshis that reached the given entities."""
        return sum(h.value for h in self.hits_to(entities))


class TheftTracker:
    """Classifies post-theft money movement from the chain alone."""

    def __init__(
        self,
        index: ChainIndex,
        *,
        name_of_address=None,
        name_of_id=None,
        h2_config: Heuristic2Config | None = None,
        dice_addresses: frozenset[str] = frozenset(),
        min_peel_run: int = 2,
        value_peel_threshold: float | None = 0.85,
    ) -> None:
        """``name_of_id`` is the interned fast path: a callable from
        dense address id (or ``None``) to entity name, e.g.
        :meth:`~repro.tagging.naming.ClusterNaming.name_of_address_id`.
        When given it is preferred over ``name_of_address`` in the
        classification hot loop (strings stay at the reporting edge)."""
        self.index = index
        self.name_of_address = name_of_address or (lambda _address: None)
        self.name_of_id = name_of_id
        self._id_of = index.interner.id_of
        self.heuristic2 = Heuristic2(
            index,
            h2_config or Heuristic2Config.refined(),
            dice_addresses=dice_addresses,
        )
        self.min_peel_run = min_peel_run
        self.value_peel_threshold = value_peel_threshold

    def _entity_of(self, address: str | None) -> str | None:
        """Recipient entity lookup, through ids when wired for it."""
        if address is None:
            return None
        if self.name_of_id is not None:
            return self.name_of_id(self._id_of(address))
        return self.name_of_address(address)

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------

    def track(
        self, theft_txids: list[bytes], *, max_txs: int = 2_000
    ) -> TheftAnalysis:
        """Follow the loot leaving the given theft transactions."""
        frontier: set[OutPoint] = set()
        loot_value = 0
        for txid in theft_txids:
            tx = self.index.tx(txid)
            for vout, out in enumerate(tx.outputs):
                frontier.add(OutPoint(txid, vout))
                loot_value += out.value
        analysis = TheftAnalysis(loot_value=loot_value)
        raw_moves: list[tuple[str, int, Transaction]] = []
        queue: list[tuple[int, int, bytes]] = []
        queued: set[bytes] = set()

        def enqueue_spenders(outpoints) -> None:
            for outpoint in outpoints:
                spender = self.index.spender_of(outpoint)
                if spender is None:
                    continue
                txid, _vin = spender
                if txid in queued:
                    continue
                queued.add(txid)
                location = self.index.location(txid)
                heapq.heappush(
                    queue, (location.height, location.index_in_block, txid)
                )

        enqueue_spenders(frontier)
        while queue and analysis.txs_followed < max_txs:
            height, _pos, txid = heapq.heappop(queue)
            tx = self.index.tx(txid)
            analysis.txs_followed += 1
            kind, continuations = self._classify_tx(tx, height, frontier, analysis)
            raw_moves.append((kind, height, tx))
            for txin in tx.inputs:
                frontier.discard(txin.prevout)
            frontier.update(continuations)
            enqueue_spenders(continuations)
        analysis.dormant_value = sum(
            self.index.output(op).value
            for op in frontier
            if self.index.is_unspent(op)
        )
        analysis.steps = _collapse_moves(raw_moves, self.min_peel_run)
        return analysis

    # ------------------------------------------------------------------
    # per-transaction classification
    # ------------------------------------------------------------------

    def _classify_tx(
        self,
        tx: Transaction,
        height: int,
        frontier: set[OutPoint],
        analysis: TheftAnalysis,
    ) -> tuple[str, list[OutPoint]]:
        """Classify one loot-spending transaction.

        Returns ``(kind, continuation outpoints)``; recipient hits are
        recorded on ``analysis`` as a side effect.
        """
        frontier_inputs = [t for t in tx.inputs if t.prevout in frontier]
        foreign_inputs = len(tx.inputs) - len(frontier_inputs)
        if len(tx.outputs) == 1:
            # Consolidation: aggregation if purely loot, folding if the
            # thief mixed in unrelated coins.
            kind = KIND_FOLD if foreign_inputs else KIND_AGGREGATION
            out = tx.outputs[0]
            entity = self._entity_of(out.address)
            if entity is not None:
                analysis.recipient_hits.append(
                    ExchangeHit(entity, out.value, tx.txid, height)
                )
                return kind, []  # arrived somewhere known: stop following
            return kind, [OutPoint(tx.txid, 0)]
        # Multi-output: peel if H2 identifies change (or the transaction
        # has the small-peel/large-remainder shape), split otherwise.
        label, _reason = self.heuristic2.identify_change(tx)
        change_vout = label.vout if label is not None else None
        if change_vout is None and self.value_peel_threshold is not None:
            total = tx.total_output_value
            best_vout, best_value = max(
                enumerate(out.value for out in tx.outputs), key=lambda kv: kv[1]
            )
            if total > 0 and best_value / total >= self.value_peel_threshold:
                change_vout = best_vout
        if change_vout is not None:
            for vout, out in enumerate(tx.outputs):
                if vout == change_vout or out.address is None:
                    continue
                entity = self._entity_of(out.address)
                if entity is not None:
                    analysis.recipient_hits.append(
                        ExchangeHit(entity, out.value, tx.txid, height)
                    )
            return KIND_PEEL, [OutPoint(tx.txid, change_vout)]
        # No identified change: a deliberate split among thief addresses.
        continuations = []
        for vout, out in enumerate(tx.outputs):
            entity = self._entity_of(out.address)
            if entity is not None:
                analysis.recipient_hits.append(
                    ExchangeHit(entity, out.value, tx.txid, height)
                )
            else:
                continuations.append(OutPoint(tx.txid, vout))
        return KIND_SPLIT, continuations


def _collapse_moves(
    raw_moves: list[tuple[str, int, Transaction]], min_peel_run: int
) -> list[MovementStep]:
    """Collapse consecutive same-kind transactions into movement steps.

    Short "peel" runs (fewer than ``min_peel_run`` hops) between other
    moves are kept but a single isolated 2-output spend does not a
    peeling chain make — it is folded into the surrounding step when one
    exists, mirroring the paper's manual judgement.
    """
    steps: list[MovementStep] = []
    for kind, height, _tx in raw_moves:
        if steps and steps[-1].kind == kind:
            steps[-1].tx_count += 1
            steps[-1].last_height = height
        else:
            steps.append(
                MovementStep(
                    kind=kind, tx_count=1, first_height=height, last_height=height
                )
            )
    # Drop isolated sub-threshold peel runs sandwiched between moves of
    # the same kind (artifacts of interleaved ordering), then merge.
    cleaned: list[MovementStep] = []
    for step in steps:
        if (
            step.kind == KIND_PEEL
            and step.tx_count < min_peel_run
            and cleaned
            and cleaned[-1].kind in (KIND_AGGREGATION, KIND_FOLD, KIND_SPLIT)
        ):
            # A stray 2-output spend amid structural moves: ignore.
            continue
        if cleaned and cleaned[-1].kind == step.kind:
            cleaned[-1].tx_count += step.tx_count
            cleaned[-1].last_height = step.last_height
        else:
            cleaned.append(step)
    return cleaned

"""Exchange chokepoint analysis (§5's central argument, quantified).

    "Exchanges have essentially become chokepoints in the Bitcoin
    economy ... it is unavoidable to buy into or cash out of Bitcoin at
    scale without using an exchange."

This module measures that centrality on the condensed user graph:

* what share of all named-entity flow passes through exchange clusters;
* how exposed each entity is — the fraction of its outflow that lands
  directly at an exchange (one subpoena away from identification);
* betweenness-style reachability: from how many clusters can an
  exchange be reached within *k* hops of the flow graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx


@dataclass(frozen=True)
class ChokepointReport:
    """Aggregate centrality numbers for a set of chokepoint entities."""

    total_named_flow: int
    flow_into_chokepoints: int
    flow_out_of_chokepoints: int
    direct_counterparties: int
    reachable_within_3_hops: float

    @property
    def inflow_share(self) -> float:
        """Share of all flow into named entities that enters chokepoints."""
        if not self.total_named_flow:
            return 0.0
        return self.flow_into_chokepoints / self.total_named_flow


def chokepoint_report(
    graph: nx.DiGraph, chokepoint_names: set[str]
) -> ChokepointReport:
    """Measure chokepoint centrality on a condensed user graph.

    ``graph`` is the output of
    :func:`repro.analysis.user_graph.build_user_graph`;
    ``chokepoint_names`` the entity names treated as chokepoints
    (normally every tagged exchange).
    """
    chokepoint_nodes = {
        node
        for node, data in graph.nodes(data=True)
        if data.get("name") in chokepoint_names
    }
    total_named_flow = 0
    flow_in = 0
    flow_out = 0
    counterparties: set = set()
    for source, target, data in graph.edges(data=True):
        target_named = graph.nodes[target].get("name") is not None
        if target_named:
            total_named_flow += data["value"]
        if target in chokepoint_nodes:
            flow_in += data["value"]
            counterparties.add(source)
        if source in chokepoint_nodes:
            flow_out += data["value"]
    # Reachability: fraction of nodes that can reach a chokepoint in ≤3
    # hops along the flow direction.
    reversed_graph = graph.reverse(copy=False)
    reachable: set = set()
    for node in chokepoint_nodes:
        lengths = nx.single_source_shortest_path_length(
            reversed_graph, node, cutoff=3
        )
        reachable.update(lengths)
    fraction = (
        len(reachable) / graph.number_of_nodes()
        if graph.number_of_nodes()
        else 0.0
    )
    return ChokepointReport(
        total_named_flow=total_named_flow,
        flow_into_chokepoints=flow_in,
        flow_out_of_chokepoints=flow_out,
        direct_counterparties=len(counterparties),
        reachable_within_3_hops=fraction,
    )


def entity_exposure(
    graph: nx.DiGraph, entity: str, chokepoint_names: set[str]
) -> float:
    """Fraction of an entity's outflow that lands directly at a
    chokepoint — its one-subpoena identification exposure."""
    nodes = [n for n, d in graph.nodes(data=True) if d.get("name") == entity]
    total = 0
    into = 0
    for node in nodes:
        for _s, target, data in graph.out_edges(node, data=True):
            total += data["value"]
            if graph.nodes[target].get("name") in chokepoint_names:
                into += data["value"]
    return into / total if total else 0.0

"""Peeling-chain tracking (§5).

A peeling chain is a long run of transactions in which a large coin
repeatedly "peels off" a small payment and sends the remainder to a
one-time change address.  The paper's methodology:

    "At each hop, we look at the two output addresses in the
    transaction.  If one of these output addresses is a change address,
    we can follow the chain to the next hop ... and can identify the
    meaningful recipient in the transaction as the other output
    address (the 'peel')."

:class:`PeelingTracker` implements exactly this on top of Heuristic 2:
start from an address or outpoint holding a large value, find the
transaction that spends it, ask H2 for the change output, record every
other output as a peel, and continue from the change.  Single-output
sweeps are followed as chain continuations (they move the whole
remainder), matching how the paper followed the 158,336 BTC deposit
into the first chain head.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain.index import ChainIndex
from ..chain.model import OutPoint, Transaction
from ..core.heuristic2 import Heuristic2, Heuristic2Config

TERMINATED_MAX_HOPS = "max-hops"
TERMINATED_UNSPENT = "unspent"
TERMINATED_NO_CHANGE = "no-change-identified"
TERMINATED_EXHAUSTED = "value-exhausted"


@dataclass(frozen=True, slots=True)
class Peel:
    """One meaningful recipient payment peeled off a chain."""

    hop: int
    txid: bytes
    height: int
    address: str
    value: int
    address_id: int = -1
    """Interned id of ``address`` (-1 when the tracker ran against an
    index without that address interned — never the case for outputs
    seen by a :class:`~repro.chain.index.ChainIndex`).  Downstream
    aggregation resolves entities by id; the string is the reporting
    edge."""

    spent_height: int | None = None
    """Height at which the recipient spent this peel output, or ``None``
    while it sits unspent.  The spend is the first on-chain evidence of
    who owns the peel (a sweep co-spends it with the recipient's other
    deposits), so it is the natural horizon for naming the recipient."""


@dataclass
class PeelHop:
    """One transaction along a followed chain."""

    hop: int
    txid: bytes
    height: int
    kind: str
    """``peel`` (change + recipients), ``sweep`` (single-output move)."""

    peels: list[Peel]
    change_address: str | None
    remaining_value: int


@dataclass
class PeelChain:
    """A fully followed chain."""

    start: OutPoint
    start_address: str | None
    hops: list[PeelHop] = field(default_factory=list)
    terminated: str = TERMINATED_MAX_HOPS

    @property
    def peels(self) -> list[Peel]:
        """All peels along the chain, in order."""
        return [peel for hop in self.hops for peel in hop.peels]

    @property
    def hop_count(self) -> int:
        return len(self.hops)

    def total_peeled(self) -> int:
        return sum(p.value for p in self.peels)

    def peels_to_addresses(self, addresses: set[str]) -> list[Peel]:
        """Peels whose recipient is in ``addresses``."""
        return [p for p in self.peels if p.address in addresses]


class PeelingTracker:
    """Follows peeling chains using Heuristic 2 change identification."""

    def __init__(
        self,
        index: ChainIndex,
        *,
        h2_config: Heuristic2Config | None = None,
        dice_addresses: frozenset[str] = frozenset(),
        value_peel_threshold: float | None = 0.85,
    ) -> None:
        """``value_peel_threshold`` enables the peel-shape fallback: when
        Heuristic 2 is ambiguous (every output fresh — common when peel
        recipients are per-transaction deposit addresses), a transaction
        whose largest output carries at least this fraction of the total
        is treated as a peel with the largest output as the remainder —
        the 'small amount peeled, remainder to change' structure §5
        defines.  Set to ``None`` to follow strict H2 only."""
        self.index = index
        self._interner_id_of = index.interner.id_of
        self.heuristic2 = Heuristic2(
            index,
            h2_config or Heuristic2Config.refined(),
            dice_addresses=dice_addresses,
        )
        if value_peel_threshold is not None and not 0.5 < value_peel_threshold <= 1.0:
            raise ValueError("value_peel_threshold must be in (0.5, 1]")
        self.value_peel_threshold = value_peel_threshold

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def follow_address(self, address: str, *, max_hops: int = 100) -> PeelChain:
        """Follow the chain starting from the (latest unspent-then-spent)
        coin at ``address``: typically the chain head's funding output."""
        record = self.index.address(address)
        if not record.receives:
            raise ValueError(f"{address} never received anything")
        first = record.receives[0]
        return self.follow(OutPoint(first.txid, first.vout), max_hops=max_hops)

    def follow(
        self,
        start: OutPoint,
        *,
        max_hops: int = 100,
        stop_at=None,
    ) -> PeelChain:
        """Follow the chain starting from one outpoint.

        ``stop_at`` is an optional predicate over addresses: when a
        single-output sweep pays an address the predicate accepts (e.g.
        a known exchange deposit address), the sweep is recorded as a
        terminal peel instead of being followed into the recipient's
        wallet.
        """
        start_address = self.index.output(start).address
        chain = PeelChain(start=start, start_address=start_address)
        current = start
        for hop_number in range(1, max_hops + 1):
            spender = self.index.spender_of(current)
            if spender is None:
                chain.terminated = TERMINATED_UNSPENT
                return chain
            txid, _vin = spender
            tx = self.index.tx(txid)
            height = self.index.location(txid).height
            next_outpoint, hop = self._advance(tx, height, hop_number)
            if (
                hop.kind == "sweep"
                and stop_at is not None
                and hop.change_address is not None
                and stop_at(hop.change_address)
            ):
                # The whole remainder went to a known entity: terminal peel.
                hop.kind = "exit"
                hop.peels = [
                    Peel(
                        hop=hop_number,
                        txid=tx.txid,
                        height=height,
                        address=hop.change_address,
                        value=hop.remaining_value,
                        address_id=self._peel_id(hop.change_address),
                        spent_height=self._spent_height(tx.txid, 0),
                    )
                ]
                hop.change_address = None
                chain.hops.append(hop)
                chain.terminated = TERMINATED_EXHAUSTED
                return chain
            chain.hops.append(hop)
            if next_outpoint is None:
                chain.terminated = (
                    TERMINATED_EXHAUSTED if hop.kind == "peel" else TERMINATED_NO_CHANGE
                )
                return chain
            current = next_outpoint
        chain.terminated = TERMINATED_MAX_HOPS
        return chain

    # ------------------------------------------------------------------
    # one hop
    # ------------------------------------------------------------------

    def _advance(
        self, tx: Transaction, height: int, hop_number: int
    ) -> tuple[OutPoint | None, PeelHop]:
        # Single-output transactions move the whole remainder: follow.
        if len(tx.outputs) == 1:
            out = tx.outputs[0]
            hop = PeelHop(
                hop=hop_number,
                txid=tx.txid,
                height=height,
                kind="sweep",
                peels=[],
                change_address=out.address,
                remaining_value=out.value,
            )
            return OutPoint(tx.txid, 0), hop
        label, _reason = self.heuristic2.identify_change(tx)
        change_vout: int | None = label.vout if label is not None else None
        kind = "peel"
        if change_vout is None and self.value_peel_threshold is not None:
            change_vout = self._peel_shape_vout(tx)
            kind = "peel-value"
        if change_vout is None:
            # Without an identified change address the paper cannot
            # continue the chain with confidence.
            hop = PeelHop(
                hop=hop_number,
                txid=tx.txid,
                height=height,
                kind="no-change",
                peels=[],
                change_address=None,
                remaining_value=0,
            )
            return None, hop
        peels = []
        for vout, out in enumerate(tx.outputs):
            if vout == change_vout:
                continue
            address = out.address  # extracted once: base58 decode is hot
            if address is None:
                continue
            peels.append(
                Peel(
                    hop=hop_number,
                    txid=tx.txid,
                    height=height,
                    address=address,
                    value=out.value,
                    address_id=self._peel_id(address),
                    spent_height=self._spent_height(tx.txid, vout),
                )
            )
        hop = PeelHop(
            hop=hop_number,
            txid=tx.txid,
            height=height,
            kind=kind,
            peels=peels,
            change_address=tx.outputs[change_vout].address,
            remaining_value=tx.outputs[change_vout].value,
        )
        return OutPoint(tx.txid, change_vout), hop

    def _peel_id(self, address: str) -> int:
        """Interned id for a peel recipient (-1 if never interned)."""
        ident = self._interner_id_of(address)
        return -1 if ident is None else ident

    def _spent_height(self, txid: bytes, vout: int) -> int | None:
        """Height at which the peel output was spent, if it has been."""
        spender = self.index.spender_of(OutPoint(txid, vout))
        if spender is None:
            return None
        return self.index.location(spender[0]).height

    def _peel_shape_vout(self, tx: Transaction) -> int | None:
        """The remainder output under the peel-shape rule, or None."""
        total = tx.total_output_value
        if total <= 0:
            return None
        best_vout, best_value = max(
            enumerate(out.value for out in tx.outputs), key=lambda kv: kv[1]
        )
        if best_value / total < self.value_peel_threshold:
            return None
        return best_vout


@dataclass(frozen=True)
class ServicePeelSummary:
    """Table 2 row fragment: peels and value seen to one service."""

    service: str
    peel_count: int
    total_value: int


def summarize_peels_by_entity(
    chain: PeelChain, name_of_address, *, name_of_id=None, name_of_peel=None
) -> dict[str, ServicePeelSummary]:
    """Aggregate a chain's peels per named recipient entity.

    ``name_of_address`` is a callable (typically
    :meth:`repro.tagging.naming.ClusterNaming.name_of_address`) returning
    an entity name or ``None`` for unnamed recipients.  Pass
    ``name_of_id`` (e.g.
    :meth:`~repro.tagging.naming.ClusterNaming.name_of_address_id`) to
    resolve interned peels by dense id instead of re-hashing address
    strings.  ``name_of_peel`` takes precedence over both: a callable
    over the whole :class:`Peel` (typically
    :meth:`repro.pipeline.AnalystView.name_of_peel`), for namers that
    use the peel's height or spend height, not just its address.
    """
    counts: dict[str, int] = {}
    values: dict[str, int] = {}
    for peel in chain.peels:
        if name_of_peel is not None:
            entity = name_of_peel(peel)
        elif name_of_id is not None and peel.address_id >= 0:
            entity = name_of_id(peel.address_id)
        else:
            entity = name_of_address(peel.address)
        if entity is None:
            continue
        counts[entity] = counts.get(entity, 0) + 1
        values[entity] = values.get(entity, 0) + peel.value
    return {
        entity: ServicePeelSummary(
            service=entity, peel_count=counts[entity], total_value=values[entity]
        )
        for entity in counts
    }

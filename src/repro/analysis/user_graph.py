"""The condensed user graph (§1): clusters as nodes, flows as edges.

"The result is a condensed graph, in which nodes represent entire users
and services rather than individual public keys."  This module builds
that graph with networkx: each cluster becomes one node (named, when the
naming layer knows it), and each transaction contributes a directed edge
from the input cluster to every output cluster, weighted by value and
transaction count.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..chain.index import ChainIndex
from ..core.clustering import Clustering


@dataclass(frozen=True)
class UserGraphStats:
    """Summary numbers for a condensed graph."""

    nodes: int
    edges: int
    named_nodes: int
    total_flow: int


def build_user_graph(
    index: ChainIndex,
    clustering: Clustering,
    *,
    name_of_cluster=None,
    include_coinbase: bool = False,
) -> nx.DiGraph:
    """Condense the transaction graph over a clustering.

    Node keys are cluster roots; node attribute ``name`` carries the
    entity name when known and ``size`` the address count.  Edge
    attributes: ``value`` (total satoshis), ``tx_count``.
    """
    graph = nx.DiGraph()
    name_of_cluster = name_of_cluster or (lambda _root: None)

    def node_for(address: str):
        root = clustering.uf.find(address)
        if not graph.has_node(root):
            graph.add_node(
                root,
                name=name_of_cluster(root),
                size=clustering.uf.size_of(root),
            )
        return root

    for tx, _location in index.iter_transactions():
        if tx.is_coinbase and not include_coinbase:
            continue
        input_addresses = index.input_addresses(tx)
        if not input_addresses:
            continue
        source = node_for(input_addresses[0])
        for out in tx.outputs:
            if out.address is None:
                continue
            target = node_for(out.address)
            if target == source:
                continue  # change & self-transfers stay inside the node
            if graph.has_edge(source, target):
                edge = graph.edges[source, target]
                edge["value"] += out.value
                edge["tx_count"] += 1
            else:
                graph.add_edge(source, target, value=out.value, tx_count=1)
    return graph


def graph_stats(graph: nx.DiGraph) -> UserGraphStats:
    """Summary statistics for a condensed graph."""
    named = sum(1 for _n, data in graph.nodes(data=True) if data.get("name"))
    total_flow = sum(data["value"] for _u, _v, data in graph.edges(data=True))
    return UserGraphStats(
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        named_nodes=named,
        total_flow=total_flow,
    )


def flows_between(
    graph: nx.DiGraph, source_name: str, target_name: str
) -> list[tuple[object, object, int]]:
    """Edges between clusters named ``source_name`` and ``target_name``."""
    sources = [n for n, d in graph.nodes(data=True) if d.get("name") == source_name]
    targets = {n for n, d in graph.nodes(data=True) if d.get("name") == target_name}
    out = []
    for source in sources:
        for _s, target, data in graph.out_edges(source, data=True):
            if target in targets:
                out.append((source, target, data["value"]))
    return out


def top_counterparties(
    graph: nx.DiGraph, entity: str, *, n: int = 10, direction: str = "out"
) -> list[tuple[str | None, int]]:
    """The biggest named flows out of (or into) an entity's clusters."""
    if direction not in ("out", "in"):
        raise ValueError("direction must be 'out' or 'in'")
    nodes = [node for node, d in graph.nodes(data=True) if d.get("name") == entity]
    totals: dict[object, int] = {}
    for node in nodes:
        edges = (
            graph.out_edges(node, data=True)
            if direction == "out"
            else graph.in_edges(node, data=True)
        )
        for u, v, data in edges:
            other = v if direction == "out" else u
            totals[other] = totals.get(other, 0) + data["value"]
    ranked = sorted(totals.items(), key=lambda kv: -kv[1])[:n]
    return [(graph.nodes[node].get("name"), value) for node, value in ranked]

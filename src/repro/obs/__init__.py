"""Pipeline observability: metrics, structured logs, audits, health.

See :mod:`repro.obs.metrics` for the instruments, ``docs/metrics.md``
for the full metric catalogue (name, type, labels, stage), and
``docs/observability.md`` for the event-log schema, the health model,
the invariant auditor, and the ``repro doctor`` runbook.

The audit/health/doctor modules import service- and storage-layer
types which themselves import this package, so they are exposed
lazily: ``from repro.obs import InvariantAuditor`` works, but nothing
here forces those layers to load during pipeline bring-up.
"""

from .log import LEVELS, NULL_LOGGER, EventLogger, JsonLinesLogger
from .metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    FlightRecorder,
    Gauge,
    Histogram,
    MetricsRegistry,
    next_request_id,
)
from .render import render_flight, render_health, render_snapshot

__all__ = [
    "COUNT_BUCKETS",
    "LATENCY_BUCKETS",
    "LEVELS",
    "NULL_LOGGER",
    "NULL_REGISTRY",
    "AuditCheck",
    "AuditReport",
    "AuditViolationError",
    "ComponentHealth",
    "Counter",
    "DoctorReport",
    "EventLogger",
    "FlightRecorder",
    "Gauge",
    "HealthReport",
    "Histogram",
    "InvariantAuditor",
    "JsonLinesLogger",
    "MetricsRegistry",
    "collect_health",
    "next_request_id",
    "render_flight",
    "render_health",
    "render_snapshot",
    "run_doctor",
]

_LAZY = {
    "AuditCheck": "audit",
    "AuditReport": "audit",
    "AuditViolationError": "audit",
    "InvariantAuditor": "audit",
    "ComponentHealth": "health",
    "HealthReport": "health",
    "collect_health": "health",
    "DoctorReport": "doctor",
    "run_doctor": "doctor",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f".{module_name}", __name__), name)
    globals()[name] = value
    return value

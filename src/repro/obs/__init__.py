"""Pipeline observability: metrics registry, stage timing, flight spans.

See :mod:`repro.obs.metrics` for the instruments and
``docs/metrics.md`` for the full metric catalogue (name, type, labels,
stage).
"""

from .metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    FlightRecorder,
    Gauge,
    Histogram,
    MetricsRegistry,
    next_request_id,
)
from .render import render_flight, render_snapshot

__all__ = [
    "COUNT_BUCKETS",
    "LATENCY_BUCKETS",
    "NULL_REGISTRY",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "next_request_id",
    "render_flight",
    "render_snapshot",
]

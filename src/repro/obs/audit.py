"""Online cross-layer invariant auditing for the streaming pipeline.

:class:`InvariantAuditor` attaches to the same
:meth:`~repro.chain.index.ChainIndex.subscribe_deltas` fan-out the
engine and views stream from (registered last, so it always observes a
fully folded block) and, at a configurable cadence, re-derives the
pipeline's load-bearing invariants from independent sources:

* **balance conservation** — the :class:`~repro.service.views.BalanceView`
  dense array must equal a scatter replay of its own per-height event
  log, hold no negative balances, and sum to at most the cumulative
  issuance (Σ balances == Σ minted − Σ spent-to-nowhere);
* **partition invariants** — in both the engine's H1 structure and the
  aggregate view's base partition, per-root sizes must sum to the
  universe, the unique-root count must equal ``component_count``, and
  every canonical cluster id must be its cluster's minimal member;
* **differential vs batch** — sampled clusters of the
  :class:`~repro.service.aggregates.ClusterAggregateView` (random
  members plus a bounded sample of the clusters the view's dirty-root
  cursor reported since the last audit) are compared against a batch
  rebuild of the tip clustering — the H1 merge log re-applied to a copy
  plus the active change links, with size/balance/activity rolled up by
  one grouped numpy pass;
* **shadow scalar-twin folds** — sampled blocks' shared
  :class:`~repro.chain.delta.BlockDelta` columnar buffers are refolded
  both ways (``np.add.at`` kernel vs the scalar per-event reference
  loop) and must agree with the tuple-form event log.

Every check reports through ``audit.checks_total``,
``audit.violations_total{check=}``, and ``audit.seconds{check=}`` plus
one ``audit`` flight span per run; ``strict=True`` raises
:class:`AuditViolationError` after recording, production mode degrades
to metrics/logs.  The auditor deliberately reads component internals
(``engine._uf``, the views' dense arrays): it is an in-package
privileged consumer whose whole purpose is an independent
recomputation path, not a serving API.

Cost model: the balance replay is incremental (only events since the
last audit are scattered), the batch tip partition is one numpy copy of
the engine's H1 structure plus the active-label overlay, and everything
else is sampled — ``benchmarks/bench_audit_overhead.py`` pins full
fan-out ingest with ``audit_every=16`` at ≤1.15× unaudited.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from time import perf_counter

import numpy as np

_INT64_MAX = np.iinfo("<i8").max


class AuditViolationError(RuntimeError):
    """A strict-mode audit found invariant violations.

    Carries the full :class:`AuditReport` as ``report``.
    """

    def __init__(self, report: "AuditReport") -> None:
        failed = ", ".join(
            f"{check.name}={check.violations}"
            for check in report.checks
            if check.violations
        )
        super().__init__(
            f"audit at height {report.height} found "
            f"{report.violations} invariant violation(s): {failed}"
        )
        self.report = report


@dataclass(frozen=True)
class AuditCheck:
    """One check's outcome within one audit run."""

    name: str
    violations: int
    seconds: float
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "violations": self.violations,
            "seconds": self.seconds,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class AuditReport:
    """All checks of one audit run at one height."""

    height: int
    checks: tuple[AuditCheck, ...]

    @property
    def violations(self) -> int:
        return sum(check.violations for check in self.checks)

    @property
    def ok(self) -> bool:
        return self.violations == 0

    @property
    def seconds(self) -> float:
        return sum(check.seconds for check in self.checks)

    def as_dict(self) -> dict:
        return {
            "height": self.height,
            "ok": self.ok,
            "violations": self.violations,
            "seconds": self.seconds,
            "checks": [check.as_dict() for check in self.checks],
        }


class InvariantAuditor:
    """Continuously cross-checks a
    :class:`~repro.service.service.ForensicsService`'s streamed state.

    ``audit_every=N`` audits after every Nth block (0 disables the
    cadence — :meth:`audit_now` stays available on demand, and the
    per-block cost is one modulo check).  ``strict=True`` raises
    :class:`AuditViolationError` on any violation; otherwise violations
    degrade to metrics, the event log, and :attr:`last_report`.

    ``full=True`` on :meth:`audit_now` (the ``repro doctor`` mode)
    cross-checks *every* cluster against the batch rebuild instead of a
    seeded sample.
    """

    def __init__(
        self,
        service,
        *,
        audit_every: int = 0,
        strict: bool = False,
        sample_clusters: int = 8,
        sample_blocks: int = 2,
        seed: int = 0,
    ) -> None:
        if audit_every < 0:
            raise ValueError("audit_every must be >= 0")
        self.service = service
        self.audit_every = audit_every
        self.strict = strict
        self.sample_clusters = sample_clusters
        self.sample_blocks = sample_blocks
        self.seed = seed
        self.last_report: AuditReport | None = None
        self.audits_run = 0
        self.total_violations = 0
        # Incremental event-log replay for the balance-conservation
        # check: only events past _replay_height are scattered per
        # audit, so cadence audits stay O(new events + compare).
        self._replay = np.zeros(0, dtype="<i8")
        self._replay_height = -1
        # Second consumer of the aggregate view's per-cursor dirty-root
        # sets: every root the naming engine would re-resolve is also a
        # spot-check candidate here, without either drain starving the
        # other (see ClusterAggregateView.naming_cursor).
        self._naming_cursor = (
            service.aggregates.naming_cursor()
            if service.aggregates is not None
            else None
        )
        self._unsubscribe = service.index.subscribe_deltas(
            self._observe_delta, name="auditor"
        )
        service.auditor = self

    def detach(self) -> None:
        """Stop observing the index (on-demand audits stay possible)."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        if self._naming_cursor is not None:
            self.service.aggregates.release_naming_cursor(self._naming_cursor)
            self._naming_cursor = None

    def _observe_delta(self, delta) -> None:
        every = self.audit_every
        if every and (delta.height + 1) % every == 0:
            self.audit_now()

    # ------------------------------------------------------------------
    # the audit run
    # ------------------------------------------------------------------

    def audit_now(self, *, full: bool = False) -> AuditReport:
        """Run every check at the current height and report.

        In strict mode a violating run raises *after* metrics, flight
        span, and :attr:`last_report` are recorded, so the failure is
        observable through the same channels as a production run.
        """
        service = self.service
        height = service.height
        rng = random.Random(self.seed ^ (height + 1))
        checks = [
            self._timed("balance_conservation", self._check_balances),
            self._timed("partition", self._check_partition),
            self._timed(
                "aggregates",
                lambda: self._check_aggregates(rng, full=full),
            ),
            self._timed(
                "shadow_fold",
                lambda: self._check_shadow_folds(rng, full=full),
            ),
        ]
        report = AuditReport(height=height, checks=tuple(checks))
        self.last_report = report
        self.audits_run += 1
        self.total_violations += report.violations
        metrics = service.metrics
        if metrics.enabled:
            metrics.counter("audit.checks_total").inc(len(checks))
            for check in checks:
                metrics.counter(
                    "audit.violations_total", check=check.name
                ).inc(check.violations)
                metrics.histogram(
                    "audit.seconds", check=check.name
                ).observe(check.seconds)
            metrics.flight.record(
                "audit",
                height=height,
                violations=report.violations,
                seconds=report.seconds,
            )
        log = service.log
        if log.enabled:
            if report.ok:
                log.debug(
                    "audit_clean", height=height, seconds=report.seconds
                )
            else:
                for check in checks:
                    if check.violations:
                        log.error(
                            "audit_violation",
                            height=height,
                            check=check.name,
                            violations=check.violations,
                            detail=check.detail,
                        )
        if self.strict and not report.ok:
            raise AuditViolationError(report)
        return report

    @staticmethod
    def _timed(name: str, check) -> AuditCheck:
        start = perf_counter()
        violations, detail = check()
        return AuditCheck(
            name=name,
            violations=violations,
            seconds=perf_counter() - start,
            detail=detail,
        )

    # ------------------------------------------------------------------
    # checks — each returns (violations, detail)
    # ------------------------------------------------------------------

    def _check_balances(self) -> tuple[int, str]:
        """View array == event-log replay; no negatives; Σ ≤ issuance."""
        view = self.service.balances
        height = view.height
        problems: list[str] = []
        if len(view._events) != height + 1:
            problems.append(
                f"event log holds {len(view._events)} heights at "
                f"height {height}"
            )
        arr = view._balances.array
        n = len(arr)
        replay = self._replay
        if len(replay) < n:
            grown = np.zeros(n, dtype="<i8")
            grown[: len(replay)] = replay
            replay = self._replay = grown
        for ids, values in view._events[self._replay_height + 1 : height + 1]:
            np.add.at(replay, ids, values)
        self._replay_height = height
        mismatched = int(np.count_nonzero(replay[:n] != arr))
        if mismatched:
            problems.append(
                f"{mismatched} balance slot(s) differ from the event-log "
                f"replay"
            )
        negative = int(np.count_nonzero(arr < 0))
        if negative:
            problems.append(f"{negative} negative balance slot(s)")
        total = int(arr.sum())
        supply = view.supply
        if not 0 <= total <= supply:
            problems.append(
                f"balances sum to {total}, outside [0, issuance {supply}]"
            )
        if view._supply and view._supply[-1] != sum(view._coinbase):
            problems.append("cumulative supply disagrees with coinbase log")
        return len(problems), "; ".join(problems)

    def _check_partition(self) -> tuple[int, str]:
        """Size/root/canonical-id invariants in both union-finds."""
        problems: list[str] = []
        engine_uf = self.service.engine._uf
        problems += self._partition_problems(engine_uf, "engine")
        view = self.service.aggregates
        if view is not None:
            view._flush()
            uf = view._uf
            n = len(uf)
            if n:
                roots = uf.find_many(np.arange(n, dtype="<i8"))
                counts = np.bincount(roots, minlength=n)
                problems += self._partition_problems(
                    uf, "aggregates base", roots=roots, counts=counts
                )
                problems += self._min_member_problems(view, roots, counts)
        return len(problems), "; ".join(problems)

    @staticmethod
    def _partition_problems(
        uf, label: str, *, roots=None, counts=None
    ) -> list[str]:
        n = len(uf)
        if n == 0:
            return []
        problems: list[str] = []
        if roots is None:
            roots = uf.find_many(np.arange(n, dtype="<i8"))
        if counts is None:
            counts = np.bincount(roots, minlength=n)
        if int(counts.sum()) != n:
            problems.append(f"{label}: component sizes do not sum to {n}")
        root_ids = np.nonzero(counts)[0]
        if len(root_ids) != uf.component_count:
            problems.append(
                f"{label}: {len(root_ids)} observed roots vs "
                f"component_count {uf.component_count}"
            )
        sizes = uf.root_sizes.array
        bad_sizes = int(
            np.count_nonzero(counts[root_ids] != sizes[root_ids])
        )
        if bad_sizes:
            problems.append(
                f"{label}: {bad_sizes} root(s) with a wrong recorded size"
            )
        return problems

    @staticmethod
    def _min_member_problems(view, roots, counts) -> list[str]:
        """Canonical ids must be minimal members — base and overlay.

        ``roots``/``counts`` are the view-base root gather and bincount
        the partition check already paid for."""
        n = len(roots)
        problems: list[str] = []
        ids = np.arange(n, dtype="<i8")
        # Fancy assignment applies writes in order, so scattering the
        # ids in *descending* order leaves each root holding its
        # smallest member — an O(n) scatter instead of a sort or a
        # ~1µs-per-element np.minimum.at loop.
        expected = np.full(n, _INT64_MAX, dtype="<i8")
        expected[roots[::-1]] = ids[::-1]
        root_ids = np.flatnonzero(counts)
        recorded = view._min_member.array
        forged = int(
            np.count_nonzero(recorded[root_ids] != expected[root_ids])
        )
        if forged:
            problems.append(
                f"{forged} base root(s) whose canonical id is not the "
                f"minimal member"
            )
        groups = view._overlay_groups
        if groups:
            lengths = [len(group.roots) for group in groups]
            flat = np.fromiter(
                (root for group in groups for root in group.roots),
                dtype="<i8",
                count=sum(lengths),
            )
            offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
            mins = np.minimum.reduceat(
                recorded[view._uf.find_many(flat)], offsets
            )
            for group, member_min in zip(groups, mins):
                if group.cid != int(member_min):
                    problems.append(
                        f"overlay group {group.cid} has minimal member "
                        f"{int(member_min)}"
                    )
        return problems

    def _batch_tip(self):
        """The batch-truth tip partition: the engine's H1 structure
        copied (its live state *is* the full merge log at a block
        boundary) plus every still-active change link — exactly what
        ``cluster_as_of`` materializes, without the O(merges) replay."""
        engine = self.service.engine
        tip = engine._uf.copy()
        height = engine.height
        ids_a: list[int] = []
        ids_b: list[int] = []
        for live in engine._labels:
            if (
                live.voided_at is None
                and live.input_id is not None
                and live.label.height <= height
            ):
                ids_a.append(live.address_id)
                ids_b.append(live.input_id)
        if ids_a:
            tip.union_many(ids_a, ids_b)
        return tip

    def _check_aggregates(self, rng, *, full: bool) -> tuple[int, str]:
        """Sampled (or, with ``full``, every) cluster of the view vs the
        batch rollup of the tip partition.

        Routine audits roll up only the sampled clusters, all in one
        grouped numpy pass, so the per-audit cost stays O(universe)
        plus a Python loop bounded by ``2 × sample_clusters``.  Samples
        are drawn as random *members* (size-biased toward the big
        clusters whose aggregates matter most) plus up to
        ``sample_clusters`` of the clusters the dirty-root cursor
        reported since the last audit (sampled when more accumulated —
        cadence plus fresh randomness each cycle provides eventual
        coverage).  ``full`` (the doctor path) builds the dense batch
        rollup once and checks every cluster.
        """
        view = self.service.aggregates
        if view is None:
            return 0, "differential aggregates disabled"
        view._flush()
        dirty: list[int] = []
        if self._naming_cursor is not None:
            dirty = sorted(view.drain_naming_dirty(self._naming_cursor))
        tip = self._batch_tip()
        n = len(tip)
        if n == 0:
            return 0, ""
        roots = tip.find_many(np.arange(n, dtype="<i8"))

        def sized(array) -> np.ndarray:
            if len(array) == n:
                return array
            out = np.zeros(n, dtype="<i8")
            m = min(n, len(array))
            out[:m] = array[:m]
            return out

        balances = sized(self.service.balances._balances.array)
        activity = self.service.activity
        tx_counts = sized(activity._tx_counts.array)
        first_seen = sized(activity._first_seen.array)
        last_seen = sized(activity._last_seen.array)

        if full:
            expected = self._batch_rollup_all(
                roots, balances, tx_counts, first_seen, last_seen
            )
        else:
            budget = min(self.sample_clusters, n)
            chosen = {int(roots[i]) for i in rng.sample(range(n), budget)}
            if len(dirty) > budget:
                dirty = rng.sample(dirty, budget)
            # Dirty roots are *view-base* roots; their members resolve
            # to tip roots through the tip partition.
            chosen |= {int(roots[root]) for root in dirty if 0 <= root < n}
            expected = self._rollups_of_roots(
                chosen, roots, balances, tx_counts, first_seen, last_seen
            )

        problems: list[str] = []
        for cid, size, balance, batch_tx, first, last in expected:
            view_cid = view.cluster_id_of(cid)
            if view_cid != cid:
                problems.append(
                    f"cluster {cid}: view canonical id {view_cid}"
                )
                continue
            if view.size_of_cluster(cid) != size:
                problems.append(
                    f"cluster {cid}: size {view.size_of_cluster(cid)} != "
                    f"batch {size}"
                )
            if view.balance_of_cluster(cid) != balance:
                problems.append(
                    f"cluster {cid}: balance "
                    f"{view.balance_of_cluster(cid)} != batch {balance}"
                )
            view_activity = view.activity_of_cluster(cid)
            if batch_tx == 0:
                if view_activity is not None:
                    problems.append(
                        f"cluster {cid}: spurious activity for an "
                        f"inactive cluster"
                    )
            elif view_activity is None or (
                view_activity.tx_count != batch_tx
                or view_activity.first_seen != first
                or view_activity.last_seen != last
            ):
                problems.append(f"cluster {cid}: activity mismatch")
        detail = "; ".join(problems[:8])
        if len(problems) > 8:
            detail += f"; … {len(problems) - 8} more"
        if not problems:
            detail = f"{len(expected)} cluster(s) cross-checked"
        return len(problems), detail

    @staticmethod
    def _rollups_of_roots(
        chosen, roots, balances, tx_counts, first_seen, last_seen
    ) -> list[tuple]:
        """Batch truth ``(cid, size, balance, tx_count, first_seen,
        last_seen)`` for every root in ``chosen``, in one grouped pass:
        a lookup-table gather tags each member with its group, a stable
        argsort over the (member-count-sized) selection groups members
        contiguously in ascending id order, and each aggregate rolls up
        as an exact int64 ``reduceat`` — no per-cluster full-universe
        masks."""
        if not chosen:
            return []
        n = len(roots)
        sel = np.fromiter(chosen, dtype="<i8", count=len(chosen))
        lookup = np.full(n, -1, dtype="<i8")
        lookup[sel] = np.arange(len(sel), dtype="<i8")
        gid = lookup[roots]
        members = np.flatnonzero(gid >= 0)
        order = members[np.argsort(gid[members], kind="stable")]
        sorted_gid = gid[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_gid[1:] != sorted_gid[:-1]]
        )
        cids = order[starts]
        sizes = np.diff(np.r_[starts, len(order)])
        sums = np.add.reduceat(balances[order], starts)
        txs = np.add.reduceat(tx_counts[order], starts)
        active_first = np.where(tx_counts > 0, first_seen, _INT64_MAX)
        active_last = np.where(tx_counts > 0, last_seen, -1)
        firsts = np.minimum.reduceat(active_first[order], starts)
        lasts = np.maximum.reduceat(active_last[order], starts)
        return [
            (
                int(cids[k]),
                int(sizes[k]),
                int(sums[k]),
                int(txs[k]),
                int(firsts[k]) if txs[k] else None,
                int(lasts[k]) if txs[k] else None,
            )
            for k in range(len(starts))
        ]

    @staticmethod
    def _batch_rollup_all(
        roots, balances, tx_counts, first_seen, last_seen
    ) -> list[tuple]:
        """Every cluster's batch truth in one pass: a stable argsort
        groups the universe into contiguous per-root runs, and each
        rollup is an exact int64 ``reduceat`` (no float bincount
        weights, no ~1µs-per-element ``ufunc.at`` scatter)."""
        n = len(roots)
        order = np.argsort(roots, kind="stable")
        sorted_roots = roots[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_roots[1:] != sorted_roots[:-1]]
        )
        cids = order[starts]
        sizes = np.diff(np.r_[starts, n])
        sums = np.add.reduceat(balances[order], starts)
        txs = np.add.reduceat(tx_counts[order], starts)
        active = tx_counts > 0
        firsts = np.minimum.reduceat(
            np.where(active, first_seen, _INT64_MAX)[order], starts
        )
        lasts = np.maximum.reduceat(
            np.where(active, last_seen, -1)[order], starts
        )
        return [
            (
                int(cids[k]),
                int(sizes[k]),
                int(sums[k]),
                int(txs[k]),
                int(firsts[k]) if txs[k] else None,
                int(lasts[k]) if txs[k] else None,
            )
            for k in range(len(starts))
        ]

    def _check_shadow_folds(self, rng, *, full: bool) -> tuple[int, str]:
        """Kernel scatter == scalar reference fold on sampled blocks."""
        index = self.service.index
        height = index.height
        if height < 0:
            return 0, ""
        if full:
            heights = list(range(height + 1))
        else:
            budget = min(self.sample_blocks, height + 1)
            heights = sorted(rng.sample(range(height + 1), budget))
        problems: list[str] = []
        for h in heights:
            delta = index.block_delta(h)
            size = delta.max_id + 1
            kernel = np.zeros(size, dtype="<i8")
            np.add.at(kernel, delta.event_ids, delta.event_values)
            scalar = np.zeros(size, dtype="<i8")
            for ident, change in delta.events:
                scalar[ident] += change
            if int(np.count_nonzero(kernel != scalar)) or len(
                delta.event_ids
            ) != len(delta.events):
                problems.append(f"height {h}: balance fold twins disagree")
            flat = [
                ident for txd in delta.txs for ident in txd.involved
            ]
            if delta.involved_flat.tolist() != flat:
                problems.append(
                    f"height {h}: involvement buffers disagree"
                )
            if delta.involved_ids.tolist() != list(delta.involved):
                problems.append(
                    f"height {h}: involved-id columns disagree"
                )
        detail = (
            "; ".join(problems)
            if problems
            else f"{len(heights)} block(s) refolded"
        )
        return len(problems), detail

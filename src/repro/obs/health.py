"""Per-component health model rolled up to one pipeline verdict.

:func:`collect_health` inspects a
:class:`~repro.service.service.ForensicsService` (plus, optionally, its
:class:`~repro.storage.store.StateStore` and
:class:`~repro.obs.audit.InvariantAuditor`) and grades each component
``ok`` / ``degraded`` / ``failing``:

* **chain** — tip height, address count, last measured ingest rate;
* **engine** — must be at the chain tip; the open-label backlog (the
  overlay every differential consumer pays for) degrades health past a
  threshold;
* **aggregates** — present and at the tip (absent = the batch-fallback
  configuration = degraded), with the pending flush-queue depth;
* **views** — balances/activity/taint must all be at the tip;
* **cache** — the height-keyed memo's hit ratio, graded only once it
  has seen enough lookups to mean anything;
* **snapshots** — newest snapshot age and height (when a store is
  given);
* **audit** — the last :class:`~repro.obs.audit.AuditReport` verdict
  (when an auditor is attached).

The rollup is the worst component status.  With an enabled metrics
registry the report also lands as ``health.status{component=…}`` and
``health.overall`` gauges (0=ok, 1=degraded, 2=failing).  Surfaced as
``ForensicsService.stats()["health"]`` and rendered by ``repro
health`` / ``repro doctor``; the model is documented in
``docs/observability.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

OK = "ok"
DEGRADED = "degraded"
FAILING = "failing"

_RANK = {OK: 0, DEGRADED: 1, FAILING: 2}

OPEN_LABEL_BACKLOG = 10_000
"""Open (still-voidable) labels past which the engine is degraded: the
overlay set every flush and query pays to re-walk."""

CACHE_GRADE_LOOKUPS = 256
"""Lookups before the cache hit ratio is graded at all."""

CACHE_HIT_RATE_FLOOR = 0.05
"""Hit ratio below which a well-exercised cache counts as degraded."""

MAX_SNAPSHOT_AGE_SECONDS = 3600.0
"""Newest-snapshot age past which durability is graded degraded."""


@dataclass(frozen=True)
class ComponentHealth:
    """One component's verdict."""

    component: str
    status: str
    summary: str
    details: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "component": self.component,
            "status": self.status,
            "summary": self.summary,
            "details": self.details,
        }


@dataclass(frozen=True)
class HealthReport:
    """Every component plus the worst-status rollup."""

    status: str
    components: tuple[ComponentHealth, ...]

    def component(self, name: str) -> ComponentHealth | None:
        for entry in self.components:
            if entry.component == name:
                return entry
        return None

    def as_dict(self) -> dict:
        return {
            "status": self.status,
            "components": [entry.as_dict() for entry in self.components],
        }


def _worst(components) -> str:
    return max(
        (entry.status for entry in components),
        key=_RANK.__getitem__,
        default=OK,
    )


def collect_health(
    service,
    *,
    store=None,
    auditor=None,
    clock=time.time,
    open_label_backlog: int = OPEN_LABEL_BACKLOG,
    max_snapshot_age: float = MAX_SNAPSHOT_AGE_SECONDS,
) -> HealthReport:
    """Grade every component of ``service`` and roll up the verdict.

    ``store``/``auditor`` extend the report with snapshot freshness and
    the last audit verdict; ``clock`` is injectable so snapshot-age
    tests can pin wall time.
    """
    height = service.height
    components: list[ComponentHealth] = []

    chain_details = {
        "height": height,
        "addresses": service.index.address_count,
        "txs": service.index.tx_count,
    }
    if service.metrics.enabled:
        gauges = service.metrics.snapshot().get("gauges", {})
        wall = gauges.get("ingest.wall_seconds")
        blocks = gauges.get("ingest.blocks")
        if wall and blocks:
            chain_details["ingest_blocks_per_second"] = blocks / wall
    components.append(
        ComponentHealth(
            component="chain",
            status=DEGRADED if height < 0 else OK,
            summary=(
                "no blocks ingested"
                if height < 0
                else f"height {height}, "
                f"{chain_details['addresses']} addresses"
            ),
            details=chain_details,
        )
    )

    backlog = service.engine.open_label_count
    if service.engine.height != height:
        engine_status = FAILING
        engine_summary = (
            f"engine at height {service.engine.height}, chain at {height} "
            f"(detached?)"
        )
    elif backlog > open_label_backlog:
        engine_status = DEGRADED
        engine_summary = (
            f"open-label backlog {backlog} exceeds {open_label_backlog}"
        )
    else:
        engine_status = OK
        engine_summary = f"at tip, {backlog} open label(s)"
    components.append(
        ComponentHealth(
            component="engine",
            status=engine_status,
            summary=engine_summary,
            details={
                "height": service.engine.height,
                "open_labels": backlog,
            },
        )
    )

    view = service.aggregates
    if view is None:
        components.append(
            ComponentHealth(
                component="aggregates",
                status=DEGRADED,
                summary=(
                    "differential aggregates disabled; cluster queries "
                    "use the batch fallback"
                ),
            )
        )
    else:
        pending = view.pending_blocks
        behind = view.height != height
        components.append(
            ComponentHealth(
                component="aggregates",
                status=FAILING if behind else OK,
                summary=(
                    f"view at height {view.height}, chain at {height}"
                    if behind
                    else f"at tip, {pending} block(s) queued for flush"
                ),
                details={"height": view.height, "pending_blocks": pending},
            )
        )

    view_heights = {
        "balances": service.balances.height,
        "activity": service.activity.height,
        "taint": service.taint.height,
    }
    lagging = {
        name: view_height
        for name, view_height in view_heights.items()
        if view_height != height
    }
    components.append(
        ComponentHealth(
            component="views",
            status=FAILING if lagging else OK,
            summary=(
                f"behind the tip: {sorted(lagging)}"
                if lagging
                else f"all views at height {height}"
            ),
            details=view_heights,
        )
    )

    cache_stats = service.cache.stats()
    lookups = cache_stats["hits"] + cache_stats["misses"]
    hit_rate = cache_stats["hit_rate"]
    cache_degraded = (
        lookups >= CACHE_GRADE_LOOKUPS and hit_rate < CACHE_HIT_RATE_FLOOR
    )
    components.append(
        ComponentHealth(
            component="cache",
            status=DEGRADED if cache_degraded else OK,
            summary=(
                f"hit rate {hit_rate:.1%} over {lookups} lookups"
                if lookups
                else "no lookups yet"
            ),
            details=cache_stats,
        )
    )

    if store is not None:
        newest = store.latest()
        if newest is None:
            components.append(
                ComponentHealth(
                    component="snapshots",
                    status=DEGRADED,
                    summary=f"no snapshots under {store.root}",
                )
            )
        else:
            age = max(0.0, clock() - newest.created_unix)
            stale = age > max_snapshot_age
            components.append(
                ComponentHealth(
                    component="snapshots",
                    status=DEGRADED if stale else OK,
                    summary=(
                        f"newest at height {newest.height}, "
                        f"{age:.0f}s old"
                        + (f" (> {max_snapshot_age:.0f}s)" if stale else "")
                    ),
                    details={
                        "height": newest.height,
                        "age_seconds": age,
                        "behind_blocks": max(0, height - newest.height),
                    },
                )
            )

    if auditor is not None:
        report = auditor.last_report
        if report is None:
            components.append(
                ComponentHealth(
                    component="audit",
                    status=OK,
                    summary="auditor attached, no audit run yet",
                )
            )
        else:
            components.append(
                ComponentHealth(
                    component="audit",
                    status=FAILING if report.violations else OK,
                    summary=(
                        f"{report.violations} violation(s) at height "
                        f"{report.height}"
                        if report.violations
                        else f"clean at height {report.height}"
                    ),
                    details=report.as_dict(),
                )
            )

    overall = _worst(components)
    health = HealthReport(status=overall, components=tuple(components))
    metrics = service.metrics
    if metrics.enabled:
        for entry in components:
            metrics.gauge(
                "health.status", component=entry.component
            ).set(_RANK[entry.status])
        metrics.gauge("health.overall").set(_RANK[overall])
    return health

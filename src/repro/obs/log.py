"""Structured JSON-lines event logging, null by default.

Mirrors the metrics contract (:mod:`repro.obs.metrics`): every call
site guards on one ``log.enabled`` attribute check against the shared
:data:`NULL_LOGGER`, so an unconfigured pipeline pays nothing beyond
the bool test.  A :class:`JsonLinesLogger` writes one JSON object per
line — ``{"ts": ..., "level": ..., "event": ..., <fields>}`` — with
leveled filtering and bounded fields (field count and per-value string
length are capped so a pathological payload can't balloon the log).

Wired through ``repro serve/query --log-json PATH``; the event schema
is catalogued in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path


LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class EventLogger:
    """The disabled base: every emit is a no-op.

    Call sites hold a logger attribute (default :data:`NULL_LOGGER`)
    and guard hot paths with ``if log.enabled:``; cold paths may call
    the level methods unconditionally — they cost one method call.
    """

    enabled = False

    def debug(self, event: str, **fields) -> None:  # pragma: no cover
        pass

    def info(self, event: str, **fields) -> None:  # pragma: no cover
        pass

    def warning(self, event: str, **fields) -> None:  # pragma: no cover
        pass

    def error(self, event: str, **fields) -> None:  # pragma: no cover
        pass

    def close(self) -> None:  # pragma: no cover
        pass


#: Shared disabled logger — the default for every ``log=`` parameter.
NULL_LOGGER = EventLogger()


class JsonLinesLogger(EventLogger):
    """Appends one JSON object per event to ``path``.

    ``min_level`` drops quieter events before serialization;
    ``max_fields``/``max_chars`` bound each record (extra fields are
    dropped with a ``"truncated_fields"`` marker, long values are cut
    to ``max_chars`` characters).  ``clock`` is injectable so tests can
    pin timestamps.
    """

    enabled = True

    def __init__(
        self,
        path,
        *,
        min_level: str = "info",
        max_fields: int = 32,
        max_chars: int = 256,
        clock=time.time,
    ) -> None:
        if min_level not in LEVELS:
            raise ValueError(
                f"unknown log level {min_level!r} "
                f"(expected one of {sorted(LEVELS)})"
            )
        self.path = Path(path)
        self.min_level = min_level
        self.max_fields = max_fields
        self.max_chars = max_chars
        self._threshold = LEVELS[min_level]
        self._clock = clock
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------

    def _sanitize(self, value):
        """JSON-safe, bounded rendering of one field value."""
        if isinstance(value, bool) or value is None:
            return value
        if isinstance(value, (int, float)):
            return value
        text = value if isinstance(value, str) else repr(value)
        if len(text) > self.max_chars:
            text = text[: self.max_chars] + "…"
        return text

    def _emit(self, level: str, event: str, fields: dict) -> None:
        if LEVELS[level] < self._threshold:
            return
        record = {"ts": self._clock(), "level": level, "event": event}
        dropped = 0
        for key, value in fields.items():
            if len(record) >= self.max_fields + 3:
                dropped += 1
                continue
            record[key] = self._sanitize(value)
        if dropped:
            record["truncated_fields"] = dropped
        self._file.write(json.dumps(record, default=repr) + "\n")
        self._file.flush()

    def debug(self, event: str, **fields) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields) -> None:
        self._emit("error", event, fields)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JsonLinesLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Human-readable rendering of a metrics snapshot (``repro metrics``).

A ``--metrics-dump`` file is ``{"metrics": <registry snapshot>,
"flight": <flight recorder dump>}``; :func:`render_snapshot` turns the
snapshot half into the fixed-width table the CLI prints, and
:func:`render_flight` tails the span ring.  Kept out of ``metrics.py``
so the instrumented hot paths never import formatting code.
"""

from __future__ import annotations


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}µs"


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_snapshot(snapshot: dict) -> str:
    """One table per instrument family, stage-sorted."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {_fmt_value(gauges[name])}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        width = max(len(name) for name in histograms)
        header = (
            f"  {'name':<{width}}  {'count':>7}  {'total':>9}  "
            f"{'mean':>9}  {'p50':>9}  {'p95':>9}  {'p99':>9}  {'max':>9}"
        )
        lines.append(header)
        for name in sorted(histograms):
            summary = histograms[name]
            # Latency histograms format as durations; size/count
            # histograms (h1_pairs, queued_blocks) as plain numbers.
            fmt = _fmt_seconds if "seconds" in name else _fmt_value
            lines.append(
                f"  {name:<{width}}  {summary['count']:>7}  "
                f"{fmt(summary['total']):>9}  "
                f"{fmt(summary['mean']):>9}  "
                f"{fmt(summary['p50']):>9}  "
                f"{fmt(summary['p95']):>9}  "
                f"{fmt(summary['p99']):>9}  "
                f"{fmt(summary['max']):>9}"
            )
    if not lines:
        return "no metrics recorded"
    return "\n".join(lines)


def render_health(health: dict) -> str:
    """One line per component plus the rollup (``repro health``).

    Takes the ``HealthReport.as_dict()`` shape the ``--metrics-dump``
    JSON carries under ``"health"``.
    """
    components = health.get("components", [])
    lines = [f"health: {health.get('status', '?')}"]
    if not components:
        return lines[0]
    width = max(len(entry["component"]) for entry in components)
    for entry in components:
        lines.append(
            f"  {entry['component']:<{width}}  {entry['status']:<9} "
            f"{entry['summary']}"
        )
    return "\n".join(lines)


def render_flight(spans: list[dict], *, tail: int = 20) -> str:
    """The newest ``tail`` flight-recorder spans, one line each."""
    if not spans:
        return "flight recorder: empty"
    lines = [f"flight recorder ({len(spans)} spans, newest {tail}):"]
    for span in spans[-tail:]:
        fields = dict(span)
        kind = fields.pop("kind", "?")
        seconds = fields.pop("seconds", None)
        rendered = " ".join(f"{k}={v}" for k, v in fields.items())
        timing = f" [{_fmt_seconds(seconds)}]" if seconds is not None else ""
        lines.append(f"  {kind}{timing} {rendered}".rstrip())
    return "\n".join(lines)

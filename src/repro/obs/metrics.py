"""Process-local pipeline telemetry: registry, instruments, flight spans.

The streaming pipeline (delta build → engine fold → view folds → lazy
aggregate flush → cached query dispatch) had exactly one observable
number before this module: end-to-end bench wall clock.  This is the
substrate every layer reports through instead:

* :class:`MetricsRegistry` — one per process (or per service), handing
  out monotonic :class:`Counter`\\ s, :class:`Gauge`\\ s, and
  fixed-bucket :class:`Histogram`\\ s keyed by ``(name, labels)``.
  Instruments are plain slotted objects mutated in place — no
  per-observation allocation — and a registry constructed with
  ``enabled=False`` hands out shared do-nothing singletons, so a
  disabled pipeline pays one attribute check per instrumented site and
  nothing else (``benchmarks/bench_obs_overhead.py`` pins ≤1.01×).
* :class:`FlightRecorder` — a bounded ring buffer of recent span
  records (per-block ingest spans, per-query dispatch spans, subscriber
  failures), the post-mortem dump for "what just happened": cheap
  enough to leave on, bounded so a long-lived server never grows it.
* :func:`MetricsRegistry.trace` — a timing context for coarse stages
  (snapshot, restore, workload phases); hot per-block sites prebind
  their instruments and guard ``perf_counter`` behind
  ``registry.enabled`` instead.

Metric names are dotted stage paths (``ingest.fanout_seconds``), labels
a small keyword set (``subscriber="engine"``); the full catalogue lives
in ``docs/metrics.md``.  Everything here is process-local and
thread-unsafe by design — the serving tier that needs cross-process
scrape semantics (ROADMAP open item 1) will layer on top, reusing the
request-id convention :func:`next_request_id` establishes.
"""

from __future__ import annotations

import itertools
from collections import deque
from contextlib import contextmanager
from time import perf_counter


def _latency_buckets() -> tuple[float, ...]:
    """Log-spaced 1-2.5-5 second buckets from 1µs to 10s (24 bounds)."""
    bounds: list[float] = []
    for exponent in range(-6, 2):
        for mantissa in (1.0, 2.5, 5.0):
            bounds.append(mantissa * 10.0 ** exponent)
    return tuple(bounds)


LATENCY_BUCKETS = _latency_buckets()
"""Default histogram bounds for durations in seconds."""

COUNT_BUCKETS = tuple(
    float(mantissa * 10 ** exponent)
    for exponent in range(0, 7)
    for mantissa in (1, 2, 5)
)
"""Default histogram bounds for sizes/counts (1 .. 5e6)."""


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value, set outright."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max accounting.

    ``bounds`` are upper bucket edges (ascending); an observation lands
    in the first bucket whose bound is >= the value, or the overflow
    bucket past the last bound.  Percentiles interpolate linearly inside
    the winning bucket — coarse by construction, but allocation-free on
    the observe path and plenty for "which stage ate the time".
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        counts = self.counts
        bounds = self.bounds
        lo, hi = 0, len(bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        counts[lo] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def percentile(self, q: float) -> float | None:
        """Approximate ``q``-th percentile (``q`` in 0..100)."""
        if not self.count:
            return None
        target = self.count * q / 100.0
        seen = 0
        for position, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if seen + bucket_count < target:
                seen += bucket_count
                continue
            lower = (
                self.bounds[position - 1]
                if position
                else (self.min if self.min is not None else 0.0)
            )
            upper = (
                self.bounds[position]
                if position < len(self.bounds)
                else (self.max if self.max is not None else lower)
            )
            lower = min(max(lower, self.min or lower), upper)
            fraction = (target - seen) / bucket_count
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.max

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def summary(self) -> dict:
        """Plain-data summary for snapshots and dumps."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class _NullInstrument:
    """The shared do-nothing twin a disabled registry hands out."""

    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class FlightRecorder:
    """Bounded ring buffer of recent span records.

    Each record is a plain dict (``kind`` plus whatever fields the
    recording site attaches — height, stage, seconds, request_id, ...).
    The deque bound makes it a *flight recorder*: always the most recent
    window, never unbounded growth, dumpable after the fact.
    """

    __slots__ = ("enabled", "_spans")

    def __init__(self, capacity: int = 512, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._spans: deque[dict] = deque(maxlen=capacity)

    def record(self, kind: str, **fields) -> None:
        if not self.enabled:
            return
        fields["kind"] = kind
        self._spans.append(fields)

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def capacity(self) -> int:
        return self._spans.maxlen

    def dump(self) -> list[dict]:
        """The retained spans, oldest first (copies of the ring)."""
        return [dict(span) for span in self._spans]


class MetricsRegistry:
    """Instrument factory + snapshot point for one pipeline's telemetry.

    Instruments are keyed by ``(name, sorted label items)`` and created
    on first use; repeated lookups return the same object, so hot sites
    can prebind (``hist = registry.histogram(...)`` once, ``observe``
    per event).  ``enabled=False`` turns every factory into a return of
    the shared no-op singleton and the flight recorder into a no-op —
    the true-off mode whose cost is one branch per site.
    """

    def __init__(
        self, *, enabled: bool = True, flight_capacity: int = 512
    ) -> None:
        self.enabled = enabled
        self.flight = FlightRecorder(flight_capacity, enabled=enabled)
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._gauge_fns: dict[tuple, object] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- instrument factories ------------------------------------------

    @staticmethod
    def _key(name: str, labels: dict) -> tuple:
        return (name, tuple(sorted(labels.items())))

    def counter(self, name: str, **labels) -> Counter:
        if not self.enabled:
            return _NULL_INSTRUMENT
        key = self._key(name, labels)
        found = self._counters.get(key)
        if found is None:
            found = self._counters[key] = Counter()
        return found

    def gauge(self, name: str, **labels) -> Gauge:
        if not self.enabled:
            return _NULL_INSTRUMENT
        key = self._key(name, labels)
        found = self._gauges.get(key)
        if found is None:
            found = self._gauges[key] = Gauge()
        return found

    def gauge_fn(self, name: str, fn, **labels) -> None:
        """Register a sampled gauge: ``fn()`` is read at snapshot time.

        The wiring for values something else already maintains (cache
        hit/miss counts, queue depths) — zero per-operation cost, always
        current when dumped.
        """
        if not self.enabled:
            return
        self._gauge_fns[self._key(name, labels)] = fn

    def histogram(
        self, name: str, *, buckets: tuple[float, ...] = LATENCY_BUCKETS,
        **labels,
    ) -> Histogram:
        if not self.enabled:
            return _NULL_INSTRUMENT
        key = self._key(name, labels)
        found = self._histograms.get(key)
        if found is None:
            found = self._histograms[key] = Histogram(buckets)
        return found

    # -- timing ---------------------------------------------------------

    @contextmanager
    def trace(self, stage: str, **fields):
        """Time a coarse stage into its histogram and the flight recorder.

        For per-block/per-query hot paths prebind the histogram and
        guard ``perf_counter`` behind :attr:`enabled` instead — the
        context manager costs a generator frame per use.
        """
        if not self.enabled:
            yield None
            return
        start = perf_counter()
        try:
            yield None
        finally:
            elapsed = perf_counter() - start
            self.histogram(stage, **fields).observe(elapsed)
            self.flight.record("stage", stage=stage, seconds=elapsed, **fields)

    # -- snapshot --------------------------------------------------------

    @staticmethod
    def _format_key(key: tuple) -> str:
        name, labels = key
        if not labels:
            return name
        rendered = ",".join(f"{k}={v}" for k, v in labels)
        return f"{name}{{{rendered}}}"

    def snapshot(self) -> dict:
        """Structured plain-data snapshot of every instrument.

        Keys render Prometheus-style (``name{label=value}``); histogram
        values are :meth:`Histogram.summary` dicts.  Sampled gauges are
        read here, so the snapshot is current as of the call.
        """
        gauges = {
            self._format_key(key): gauge.value
            for key, gauge in self._gauges.items()
        }
        for key, fn in self._gauge_fns.items():
            gauges[self._format_key(key)] = fn()
        return {
            "enabled": self.enabled,
            "counters": {
                self._format_key(key): counter.value
                for key, counter in self._counters.items()
            },
            "gauges": gauges,
            "histograms": {
                self._format_key(key): histogram.summary()
                for key, histogram in self._histograms.items()
            },
        }

    def total_seconds(self, name: str) -> float:
        """Summed histogram totals across every label set of ``name``.

        The sum-consistency edge: per-stage histograms must account for
        the wall clock they decompose
        (``benchmarks/bench_obs_overhead.py`` pins ingest ≥90%).
        """
        return sum(
            histogram.total
            for (metric, _labels), histogram in self._histograms.items()
            if metric == name
        )


NULL_REGISTRY = MetricsRegistry(enabled=False)
"""The shared disabled registry: the default everywhere a ``metrics``
argument is omitted, so uninstrumented pipelines run the exact disabled
code path the overhead bench pins."""


_REQUEST_IDS = itertools.count(1)


def next_request_id() -> str:
    """Process-unique request ids (``req-1``, ``req-2``, ...).

    The convention batch query dispatch stamps onto flight-recorder
    spans today and the future HTTP tier will mint per inbound request.
    """
    return f"req-{next(_REQUEST_IDS)}"

"""Offline deep diagnostics: the engine behind ``repro doctor``.

:func:`run_doctor` points at a ``--state-dir`` laid out the way the CLI
and :func:`repro.experiments.warm_service` write it
(``<dir>/blocks/blk*.dat`` + ``<dir>/snapshots/snap-*``) and:

1. checksum-verifies **every** segment of **every** snapshot (an
   unreadable manifest or a flipped byte anywhere is a reported
   problem, not just in the snapshot a restore would pick);
2. restores the newest *clean* snapshot and tail-replays the block
   files through the normal observer fan-out;
3. runs the full :class:`~repro.obs.audit.InvariantAuditor` suite in
   ``full`` mode — every cluster cross-checked against the batch
   rebuild, every block's fold twins compared;
4. grades the restored service with
   :func:`~repro.obs.health.collect_health`.

The returned :class:`DoctorReport` renders as text, serializes as
JSON, and maps to a process exit code (0 only when no problems were
found, the audit was clean, and health is not ``failing``) — the
contract the nightly CI corruption drill asserts both ways.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .health import FAILING, collect_health
from .log import NULL_LOGGER


@dataclass
class DoctorReport:
    """Everything one doctor run found."""

    state_dir: str
    problems: list[str] = field(default_factory=list)
    snapshots: list[dict] = field(default_factory=list)
    restored_height: int | None = None
    tail_blocks: int | None = None
    audit: dict | None = None
    health: dict | None = None

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def as_dict(self) -> dict:
        return {
            "state_dir": self.state_dir,
            "ok": self.ok,
            "problems": list(self.problems),
            "snapshots": list(self.snapshots),
            "restored_height": self.restored_height,
            "tail_blocks": self.tail_blocks,
            "audit": self.audit,
            "health": self.health,
        }

    def render(self) -> str:
        lines = [f"doctor: {self.state_dir}"]
        clean = sum(1 for entry in self.snapshots if not entry["problems"])
        lines.append(
            f"  snapshots: {len(self.snapshots)} checked, {clean} clean"
        )
        for entry in self.snapshots:
            verdict = (
                "OK"
                if not entry["problems"]
                else "; ".join(entry["problems"])
            )
            lines.append(f"    {entry['name']}: {verdict}")
        if self.restored_height is not None:
            lines.append(
                f"  restored height {self.restored_height} "
                f"(+{self.tail_blocks} tail block(s))"
            )
        if self.audit is not None:
            lines.append(
                f"  audit: "
                + (
                    f"clean ({len(self.audit['checks'])} checks, "
                    f"{self.audit['seconds']:.2f}s)"
                    if self.audit["ok"]
                    else f"{self.audit['violations']} violation(s)"
                )
            )
        if self.health is not None:
            lines.append(f"  health: {self.health['status']}")
            for entry in self.health["components"]:
                lines.append(
                    f"    {entry['component']:<11} {entry['status']:<9} "
                    f"{entry['summary']}"
                )
        for problem in self.problems:
            lines.append(f"  PROBLEM: {problem}")
        lines.append(
            f"  result: {'HEALTHY' if self.ok else 'PROBLEMS FOUND'}"
        )
        return "\n".join(lines)


def run_doctor(state_dir, *, log=NULL_LOGGER) -> DoctorReport:
    """Deep-verify one durable state directory (see module docstring)."""
    from ..storage import StateStore
    from .audit import InvariantAuditor

    state_dir = Path(state_dir)
    report = DoctorReport(state_dir=str(state_dir))
    problems = report.problems
    snapshots_root = state_dir / "snapshots"
    blocks_dir = state_dir / "blocks"
    if not snapshots_root.is_dir():
        problems.append(f"no snapshots directory under {state_dir}")
        return report
    store = StateStore(snapshots_root, log=log)
    manifests = store.snapshots()
    readable = {manifest.directory for manifest in manifests}
    for path in sorted(snapshots_root.glob("snap-*")):
        if path.is_dir() and path not in readable:
            problems.append(f"{path.name}: unreadable or missing manifest")
    if not manifests:
        problems.append(f"no restorable snapshots under {snapshots_root}")
        return report

    clean = []
    for manifest in manifests:
        segment_problems = store.verify_snapshot(manifest)
        report.snapshots.append(
            {
                "name": manifest.directory.name,
                "height": manifest.height,
                "problems": segment_problems,
            }
        )
        problems.extend(segment_problems)
        if not segment_problems:
            clean.append(manifest)
    if not clean:
        problems.append("every snapshot failed integrity verification")
        return report

    newest = clean[-1]
    try:
        if blocks_dir.is_dir():
            warm = store.warm_start(blocks_dir, snapshot=newest)
            service = warm.service
            report.tail_blocks = warm.tail_blocks
        else:
            problems.append(
                f"no blocks directory under {state_dir}; verifying the "
                f"snapshot state without tail replay"
            )
            service = store.restore(newest)
            report.tail_blocks = 0
    except Exception as exc:  # noqa: BLE001 — every failure is a finding
        problems.append(f"restore from {newest.directory.name} failed: {exc!r}")
        return report
    report.restored_height = service.height

    auditor = InvariantAuditor(service, strict=False)
    audit = auditor.audit_now(full=True)
    report.audit = audit.as_dict()
    if not audit.ok:
        problems.append(
            f"full audit found {audit.violations} invariant violation(s) "
            f"at height {audit.height}"
        )

    health = collect_health(service, store=store, auditor=auditor)
    report.health = health.as_dict()
    if health.status == FAILING:
        failing = [
            entry.component
            for entry in health.components
            if entry.status == FAILING
        ]
        problems.append(f"health check failing: {failing}")
    if log.enabled:
        log.info(
            "doctor",
            state_dir=str(state_dir),
            ok=report.ok,
            problems=len(problems),
        )
    return report

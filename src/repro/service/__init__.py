"""Forensics query service: streaming materialized views + cached queries.

The serving layer on top of chain → core: a
:class:`~repro.service.service.ForensicsService` keeps clustering,
balances, theft taint, and activity materialized as blocks stream in,
and answers the paper's interactive questions (§5) from warm state
through a height-keyed memoizing query API.  See ``service/queries.py``
for the query catalogue and the ``query``/``serve`` CLI commands for
the command-line surface.
"""

from .aggregates import ClusterAggregateView, RankIndex
from .cache import QueryCache
from .queries import (
    ClusterRanking,
    Query,
    QueryEngine,
    format_answer,
    parse_query,
)
from .service import ForensicsService
from .views import ActivityView, BalanceView, ClusterActivity, TaintCase, TaintView

__all__ = [
    "ActivityView",
    "BalanceView",
    "ClusterActivity",
    "ClusterAggregateView",
    "ClusterRanking",
    "ForensicsService",
    "Query",
    "QueryCache",
    "QueryEngine",
    "RankIndex",
    "TaintCase",
    "TaintView",
    "format_answer",
    "parse_query",
]

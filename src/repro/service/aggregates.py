"""Differential per-cluster aggregates: the merge-aware materialized view.

Every ranked or rolled-up forensics answer — ``top_clusters``,
``cluster_profile``, ``cluster_balance`` — needs whole-partition
aggregates: per-cluster balance, activity, size, and a per-metric
ranking.  The batch path rebuilds those from a full pass over every
address array on the first query after each block, so per-block serving
cost grows with chain size.  :class:`ClusterAggregateView` instead
folds each block's *deltas* as it streams:

* per-address balance/activity churn arrives pre-flattened on the
  block's shared :class:`~repro.chain.delta.BlockDelta` (the one
  transaction walk the whole fan-out shares): balance folds read the
  flat event log, incidence folds read the per-tx deduplicated involved
  lists, and only the touched clusters are updated;
* H1 co-spend unions and settled H2 change links arrive as merge events
  (:meth:`IncrementalClusteringEngine.cluster_delta
  <repro.core.incremental.IncrementalClusteringEngine.cluster_delta>`,
  itself re-exposing the
  :meth:`IntUnionFind.drain_merges
  <repro.core.union_find.IntUnionFind.drain_merges>` merge-log hook),
  and each merge folds the absorbed cluster's aggregate into the kept
  cluster's — O(1) per merge, never a member scan;
* H2 labels whose §4.2 wait window is still open are *overlaid*, not
  folded: a later receive may void them, so their change links join
  clusters only in a small overlay (bounded by the open-window label
  count, with untouched groups reused verbatim across flushes), while
  the fold-for-good happens the block their window closes;
* folding is *lazily flushed*: ingest only queues the shared delta, and
  the first query or export at the new tip folds every queued block and
  refreshes overlay + rankings once — interleaved traffic pays the same
  as eager per-block maintenance, bulk ingest (catch-up, tail replay)
  coalesces it.

Per-flush maintenance is therefore O(queued churn + merges + changed
overlay), not O(addresses).

Cluster identity is *canonical*: a cluster's public id is its minimum
member address id (ids are dense and first-sight ordered, so this is
the cluster's earliest-seen address).  Canonical ids are a pure
function of the partition — independent of union order, restore
history, or batch-vs-differential construction — which is what lets
the property suite demand byte-equality between this view and the
batch ``_agg`` rebuild, and what makes ranking tie-breaks stable (see
:class:`~repro.service.queries.ClusterRanking`).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..chain.delta import BlockDelta
from ..chain.index import ChainIndex
from ..core.arrays import IntVector
from ..core.incremental import IncrementalClusteringEngine
from ..core.union_find import IntUnionFind
from ..obs import COUNT_BUCKETS, NULL_REGISTRY
from .queries import ClusterRanking, TOP_CLUSTER_METRICS
from .views import ClusterActivity, MaterializedView


def _fold_array(state_value) -> IntVector:
    """Restore one fold array from bytes (v2) or a list (v1 snapshots).

    The live arrays are :class:`~repro.core.arrays.IntVector` buffers:
    the merge folds index them scalar-by-scalar (item access returns
    plain Python ints), while the kernelized churn fold scatters into
    the backing numpy array directly."""
    if isinstance(state_value, bytes):
        return IntVector.from_bytes(state_value)
    return IntVector.from_list(state_value)


class RankIndex:
    """One metric's live ranking: a sorted key list maintained by churn.

    Keys are ``(-value, cluster id)`` so ascending list order is the
    serving order: best value first, ties broken by the smallest
    canonical cluster id.  Updates cost O(log n) to locate plus a
    C-level ``memmove``; reads are slices (:meth:`top`) or a bisect
    (:meth:`rank_of`) — no per-block re-sort anywhere.
    """

    __slots__ = ("_keys", "_values")

    def __init__(self) -> None:
        self._keys: list[tuple[int, int]] = []
        self._values: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, cluster_id: int) -> bool:
        return cluster_id in self._values

    def value_of(self, cluster_id: int) -> int | None:
        return self._values.get(cluster_id)

    def set(self, cluster_id: int, value: int) -> None:
        """Insert or move one cluster's entry."""
        old = self._values.get(cluster_id)
        if old == value:
            return
        if old is not None:
            del self._keys[bisect_left(self._keys, (-old, cluster_id))]
        insort(self._keys, (-value, cluster_id))
        self._values[cluster_id] = value

    def discard(self, cluster_id: int) -> None:
        """Drop one cluster's entry (no-op when absent)."""
        old = self._values.pop(cluster_id, None)
        if old is not None:
            del self._keys[bisect_left(self._keys, (-old, cluster_id))]

    def top(self, n: int) -> tuple[tuple[int, int], ...]:
        """The best ``n`` entries as ``(cluster id, value)`` pairs."""
        return tuple((cid, -neg) for neg, cid in self._keys[:n])

    def rank_of(self, cluster_id: int) -> int | None:
        """1-based rank of one cluster, or ``None`` if not ranked."""
        value = self._values.get(cluster_id)
        if value is None:
            return None
        return bisect_left(self._keys, (-value, cluster_id)) + 1

    def as_ranking(self) -> ClusterRanking:
        """Materialize the full, immutable per-height ranking object."""
        order = tuple((cid, -neg) for neg, cid in self._keys)
        return ClusterRanking(
            order=order,
            rank_of={cid: rank for rank, (cid, _value) in enumerate(order, 1)},
        )


@dataclass(frozen=True)
class _OverlayGroup:
    """Base clusters joined only by still-voidable H2 change links."""

    cid: int
    """Canonical id of the combined cluster (min over member minimums)."""

    roots: tuple[int, ...]
    """The base-partition roots the open links connect."""

    size: int
    balance: int
    tx_count: int
    first_seen: int
    last_seen: int


class DirtyRootCursor:
    """One consumer's registration for dirty-root naming churn.

    Mirrors :class:`~repro.core.union_find.MergeCursor`: each consumer
    holds its own cursor, and :meth:`ClusterAggregateView.drain_naming_dirty`
    returns (and clears) only *that cursor's* accumulated set — so the
    query engine's incremental cluster-name aggregate and the invariant
    auditor can both follow naming churn without starving each other.
    Pending roots are distributed into every registered cursor at drain
    time, so an idle consumer's backlog is a deduplicated set of base
    roots (bounded by the universe), never an unbounded log.
    """

    __slots__ = ("dirty",)

    def __init__(self) -> None:
        self.dirty: set[int] = set()


class ClusterAggregateView(MaterializedView):
    """Streaming per-cluster balance/activity/size/ranking maintenance.

    Attach *after* the service's
    :class:`~repro.core.incremental.IncrementalClusteringEngine` (the
    service constructor and snapshot-restore path both do): each block's
    :meth:`_apply_delta` pulls the engine's
    :meth:`~repro.core.incremental.IncrementalClusteringEngine.cluster_delta`
    for the height, so the engine must already have clustered it.

    Internal structure: a *base* partition (own
    :class:`~repro.core.union_find.IntUnionFind`) carrying H1 unions
    plus permanently settled H2 change links, with per-base-root
    aggregate arrays folded on every base merge via the union-find's
    merge-cursor hook; plus an *overlay* of open-window H2 links.  Base
    folds are irreversible (min/max folds have no inverse) — which is
    exactly why voidable links never enter the base: a §4.2 void simply
    drops the link from the next flush's overlay, and the engine's own
    checkpoint/rollback time-travel brackets never leak in (they
    restore the merge log exactly, and this view's base is never rolled
    back — the flush refuses retractions loudly).

    Maintenance is **lazily flushed**: :meth:`_apply_delta` only queues
    the block's shared :class:`~repro.chain.delta.BlockDelta` (O(1) on
    the ingest hot path), and the first query/export at the new tip
    folds every queued block and refreshes overlay + rankings *once*.
    Under interleaved traffic that equals per-block maintenance; under
    bulk ingest (catch-up, snapshot tail replay, block sync) the rank
    and overlay churn for a cluster touched in many queued blocks
    coalesces into a single update.  The deferral is safe because
    everything a flush reads is stable history: the engine's per-height
    merge spans and label churn never change once a height is
    clustered, and the open-label fields the overlay reads
    (``address_id``/``input_id``) are immutable.
    """

    OBSERVER_NAME = "aggregates"

    def __init__(
        self,
        index: ChainIndex,
        *,
        engine: IncrementalClusteringEngine,
        follow: bool = True,
        use_kernels: bool = True,
        metrics=None,
    ) -> None:
        self.engine = engine
        self._use_kernels = use_kernels
        """Kernelized churn: per-address balance/incidence folding is
        batched per *flush* through :meth:`_fold_churn` (numpy group-by
        over every queued block's columnar buffers) instead of one
        Python dict pass per block.  ``use_kernels=False`` keeps the
        scalar per-block reference fold."""
        self._uf = IntUnionFind()
        """Base partition: H1 merges + settled change links."""
        self._cursor = self._uf.merge_cursor()
        """Fold hook: every base merge is drained into aggregate folds."""
        self._balance = IntVector()
        """Per base root: summed member balance (junk at non-roots)."""
        self._tx_count = IntVector()
        self._first = IntVector()
        self._last = IntVector()
        self._min_member = IntVector()
        """Per base root: minimum member id — the canonical cluster id."""
        self._open: set = set()
        """Open-window (still voidable) live labels, maintained from the
        engine's per-block born/voided/settled deltas."""
        self._overlay_groups: list[_OverlayGroup] = []
        self._overlay_of: dict[int, _OverlayGroup] = {}
        """base root -> the overlay group currently absorbing it."""
        self._ranks: dict[str, RankIndex] = {
            metric: RankIndex() for metric in TOP_CLUSTER_METRICS
        }
        self._pending: list[BlockDelta] = []
        """Blocks observed but not yet folded (drained by :meth:`_flush`
        on the first query or export at the new tip)."""
        self._naming_dirty: set[int] = set()
        """Base roots whose *canonical id mapping* may have changed
        since the last :meth:`drain_naming_dirty` — fold endpoints and
        structurally changed overlay groups, never plain churn (balance
        or activity updates cannot move a cluster's id).  This is the
        *pending* set: drains distribute it into every registered
        :class:`DirtyRootCursor` before returning the caller's own."""
        self._naming_cursors: list[DirtyRootCursor] = []
        self._default_naming_cursor: DirtyRootCursor | None = None
        """Backs cursor-less :meth:`drain_naming_dirty` calls (the
        pre-cursor single-consumer API), lazily registered."""
        super().__init__(index, follow=follow, metrics=metrics)

    # ------------------------------------------------------------------
    # streaming maintenance
    # ------------------------------------------------------------------

    def _apply_delta(self, delta: BlockDelta) -> None:
        engine = self.engine
        if engine.height < delta.height:
            raise ValueError(
                f"engine is at height {engine.height} but block "
                f"{delta.height} arrived; attach ClusterAggregateView "
                f"after a following engine (a detached engine, a refused "
                f"non-monotonic block, or view-before-engine "
                f"subscription order all leave the merge deltas missing)"
            )
        self._pending.append(delta)

    def _flush(self) -> None:
        """Fold every queued block, then refresh overlay and rankings.

        The fold itself runs per queued block, in order (first/last-seen
        and stale-id reads are height-sensitive); the overlay rebuild
        and the rank churn run once at the end over the union of every
        queued block's touched ids — the coalescing that makes bulk
        ingest cheap.
        """
        pending = self._pending
        if not pending:
            return
        self._pending = []
        metrics = self.metrics
        timed = metrics.enabled
        if timed:
            flush_start = perf_counter()
            metrics.histogram(
                "aggregates.queued_blocks", buckets=COUNT_BUCKETS
            ).observe(len(pending))
            metrics.counter("aggregates.churn_rows").inc(
                sum(
                    len(delta.event_ids) + len(delta.involved_flat)
                    for delta in pending
                )
            )
        uf = self._uf
        find = uf.find
        min_member = self._min_member
        prev_groups = self._overlay_groups
        prev_of = self._overlay_of

        stale_cids: set[int] = set()
        touched: set[int] = set()
        deferred: list[
            tuple[int, np.ndarray, np.ndarray, np.ndarray]
        ] | None = ([] if self._use_kernels else None)
        for delta in pending:
            self._fold_block(delta, stale_cids, touched, deferred)
        if deferred:
            # Kernel mode deferred every block's per-address churn; fold
            # it now, after the per-block merge folds (so every id lands
            # at its post-merge root) and before the overlay rebuild
            # (which reads the base arrays).
            self._fold_churn(deferred, touched)

        # Overlay rebuild from the now-current open links, resolving
        # each endpoint's post-fold base root exactly once.  A root
        # *newly* absorbed by a group loses its standalone rank entry;
        # roots grouped before the flush never had one.  Groups whose
        # topology and member aggregates are untouched are reused
        # verbatim — their rank entries are already correct, so they
        # contribute neither stale ids nor new entries.
        open_links = [
            live for live in self._open if live.input_id is not None
        ]
        # Resolve the flush's touched ids to post-fold roots in one
        # batch gather — at bulk-ingest flushes this set spans every
        # address the queued blocks touched.
        touched_roots = (
            set(
                uf.find_many(
                    np.fromiter(touched, dtype="<i8", count=len(touched))
                ).tolist()
            )
            if touched
            else set()
        )
        pairs: list[tuple[int, int]] = []
        for live in open_links:
            ra = find(live.address_id)
            rb = find(live.input_id)
            pairs.append((ra, rb))
            if ra not in prev_of:
                stale_cids.add(min_member[ra])
                touched_roots.add(ra)
            if rb not in prev_of:
                stale_cids.add(min_member[rb])
                touched_roots.add(rb)
        self._build_overlay(pairs, touched_roots)

        # Pre-flush groups that did not survive verbatim dissolve: their
        # ids may vanish and their member roots may stand alone again.
        # A group replaced by a rebuilt one was handled structurally in
        # :meth:`_build_overlay`; one that vanished outright reverts its
        # members' canonical ids to standalone, so they re-resolve.
        reused = {id(group) for group in self._overlay_groups}
        overlay_of = self._overlay_of
        naming_dirty = self._naming_dirty
        for group in prev_groups:
            if id(group) not in reused:
                stale_cids.add(group.cid)
                for root in group.roots:
                    touched_roots.add(find(root))
                    if overlay_of.get(root) is None:
                        # Reverted to standalone (or folded away): its
                        # canonical id left the group.  Members landing
                        # in a rebuilt group were marked structurally in
                        # _build_overlay; this per-root check catches
                        # the ones no new group absorbed.
                        naming_dirty.add(root)

        # Rank churn, once per touched cluster: stale ids out, live
        # entries in.  Plain churn never changes a cluster's id — those
        # entries are overwritten in place, not discarded — so the
        # stale set stays O(merges + links + changed groups), not
        # O(churn + open labels).
        grouped = self._overlay_of
        sizes = uf.root_sizes
        balance = self._balance
        tx_count = self._tx_count
        prev_ids = {id(group) for group in prev_groups}
        new_entries: list[tuple[int, int, int, int]] = []
        for root in touched_roots:
            if root in grouped:
                continue
            new_entries.append(
                (min_member[root], sizes[root], balance[root],
                 tx_count[root])
            )
        for group in self._overlay_groups:
            if id(group) in prev_ids:
                continue  # reused verbatim: entries already live
            new_entries.append(
                (group.cid, group.size, group.balance, group.tx_count)
            )
        self._refresh_ranks(stale_cids, new_entries)
        if timed:
            seconds = perf_counter() - flush_start
            metrics.histogram("aggregates.flush_seconds").observe(seconds)
            metrics.flight.record(
                "flush",
                height=self._height,
                blocks=len(pending),
                seconds=seconds,
            )
        log = self.index.log
        if log.enabled:
            log.debug(
                "aggregate_flush",
                height=self._height,
                blocks=len(pending),
            )

    def _fold_block(
        self,
        delta: BlockDelta,
        stale_cids: set[int],
        touched: set[int],
        deferred: list | None = None,
    ) -> None:
        """Fold one queued block into the base partition and arrays.

        ``stale_cids`` collects canonical ids that may disappear
        (resolved *before* the block's unions fold them away);
        ``touched`` collects address ids whose post-fold clusters need
        their rank entries refreshed.  When ``deferred`` is given
        (kernel mode) the per-address balance/incidence fold is
        deferred: the block's columnar buffers are queued for one
        batched :meth:`_fold_churn` pass at the end of the flush.
        """
        height = delta.height
        churn = self.engine.cluster_delta(height)
        uf = self._uf
        find = uf.find
        min_member = self._min_member

        # 1. Universe growth, once per block off the delta's max id.
        grown_from = len(uf)
        max_id = delta.max_id
        if max_id >= grown_from:
            uf.ensure(max_id + 1)
            n = max_id + 1
            self._balance.grow_to(n)
            self._tx_count.grow_to(n)
            self._first.grow_to(n, fill=-1)
            self._last.grow_to(n, fill=-1)
            min_member.grow_to(n)
            min_member.array[grown_from:] = np.arange(
                grown_from, n, dtype="<i8"
            )

        # 2. Open-label bookkeeping off the engine's delta: watched
        #    births join the overlay set, voids and settles leave it.
        open_set = self._open
        for live in churn.born:
            if live.deadline is not None:
                open_set.add(live)
        for live in churn.voided:
            open_set.discard(live)
        for live in churn.settled:
            open_set.discard(live)
        settle_links = [
            live for live in churn.settled if live.input_id is not None
        ]

        # 3. Canonical ids the block's unions can fold away, resolved
        #    before any mutation.
        for absorbed, kept in churn.merges:
            stale_cids.add(min_member[find(absorbed)])
            stale_cids.add(min_member[find(kept)])
            touched.add(absorbed)
            touched.add(kept)
        for live in settle_links:
            stale_cids.add(min_member[find(live.address_id)])
            stale_cids.add(min_member[find(live.input_id)])
            touched.add(live.address_id)
            touched.add(live.input_id)

        # 4. Fold the block's merges into the base: H1 unions (replayed
        #    off the engine's merge log) plus change links that settled
        #    this block.  The merge cursor turns every *effective* base
        #    merge into one aggregate fold, smaller into larger.
        for absorbed, kept in churn.merges:
            uf.union(absorbed, kept)
        for live in settle_links:
            uf.union(live.address_id, live.input_id)
        retracted, folds = uf.drain_merges(self._cursor)
        if retracted:
            raise RuntimeError(
                "cluster aggregate base was rolled back; folded "
                "aggregates cannot be retracted"
            )
        balance = self._balance
        tx_count = self._tx_count
        first = self._first
        last = self._last
        naming_dirty = self._naming_dirty
        for absorbed, kept in folds:
            naming_dirty.add(absorbed)
            naming_dirty.add(kept)
            balance[kept] += balance[absorbed]
            tx_count[kept] += tx_count[absorbed]
            first_absorbed = first[absorbed]
            if first_absorbed >= 0 and (
                first[kept] < 0 or first_absorbed < first[kept]
            ):
                first[kept] = first_absorbed
            if last[absorbed] > last[kept]:
                last[kept] = last[absorbed]
            if min_member[absorbed] < min_member[kept]:
                min_member[kept] = min_member[absorbed]

        # 5. Per-address churn folded at the post-merge roots: balance
        #    deltas off the delta's flat event log, incidences off the
        #    pre-deduplicated per-tx involved lists — one find per
        #    touched id (every balance-event id also has an incidence,
        #    so the single pass covers both dicts).  Kernel mode defers
        #    this to one batched pass per flush: balance is a pure sum,
        #    first/last are min/max folds, and all three commute with
        #    the merge folds above, so applying the whole flush's churn
        #    at the final post-merge roots is equivalent.
        if deferred is not None:
            deferred.append(
                (height, delta.event_ids, delta.event_values,
                 delta.involved_flat)
            )
            return
        self._fold_block_churn(delta, touched)

    def _fold_block_churn(self, delta: BlockDelta, touched: set[int]) -> None:
        """Scalar per-block churn fold: the per-element reference path
        that :meth:`_fold_churn` batches per flush in kernel mode (and
        the stage the scale benchmark times against it)."""
        height = delta.height
        find = self._uf.find
        balance = self._balance
        tx_count = self._tx_count
        first = self._first
        last = self._last
        balance_deltas: dict[int, int] = {}
        for ident, change in delta.events:
            balance_deltas[ident] = balance_deltas.get(ident, 0) + change
        involvement: dict[int, int] = {}
        for txd in delta.txs:
            for ident in txd.involved:
                involvement[ident] = involvement.get(ident, 0) + 1
        for ident, hits in involvement.items():
            root = find(ident)
            tx_count[root] += hits
            if first[root] < 0:
                first[root] = height
            last[root] = height
            change = balance_deltas.get(ident)
            if change:
                balance[root] += change
        touched.update(involvement)

    def _fold_churn(
        self,
        churn: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]],
        touched: set[int],
    ) -> None:
        """Batched per-address churn fold over one flush's queued blocks.

        Pure numpy: the whole flush's event and involvement columns are
        resolved to their post-merge roots in two
        :meth:`~repro.core.union_find.IntUnionFind.find_many` batch
        gathers, then scattered straight into the fold arrays' backing
        stores — ``np.add.at`` for balance sums and incidence counts,
        ``np.minimum.at`` / ``np.maximum.at`` for first/last-seen.  No
        per-id Python loop survives.

        Equivalence with the scalar per-block fold: balance is a sum
        decomposition (merge folds preserve sums), tx_count likewise,
        and first/last are min/max folds — the scalar "set first if
        unseen" relies on heights arriving in increasing order, which
        the min scatter reproduces without the ordering assumption (the
        ``-1`` never-seen sentinel is swapped for +inf at the touched
        roots first, and every touched root receives at least one real
        height, so no sentinel survives).  Applying churn after this
        flush's merge folds puts each contribution at its final root,
        where sums/mins/maxes land identically.  ``touched`` collects
        the resolved roots rather than the member ids — equivalent
        downstream, which only reads ``touched`` through ``find``.
        """
        inv_ids = np.concatenate([block[3] for block in churn])
        if not len(inv_ids):
            return
        inv_heights = np.concatenate(
            [
                np.full(len(block[3]), block[0], dtype=np.int64)
                for block in churn
            ]
        )
        event_ids = np.concatenate([block[1] for block in churn])
        event_values = np.concatenate([block[2] for block in churn])
        uf = self._uf
        if len(event_ids):
            np.add.at(
                self._balance.array, uf.find_many(event_ids), event_values
            )
        inv_roots = uf.find_many(inv_ids)
        np.add.at(self._tx_count.array, inv_roots, 1)
        uniq_roots = np.unique(inv_roots)
        first = self._first.array
        unseen = first[uniq_roots]
        unseen[unseen < 0] = np.iinfo(np.int64).max
        first[uniq_roots] = unseen
        np.minimum.at(first, inv_roots, inv_heights)
        np.maximum.at(self._last.array, inv_roots, inv_heights)
        touched.update(uniq_roots.tolist())

    def _build_overlay(
        self,
        root_pairs: list[tuple[int, int]],
        touched_roots: set[int],
    ) -> None:
        """Group base roots connected by open (voidable) change links.

        ``root_pairs`` holds each open link's endpoints already resolved
        to base roots (the caller needs those roots anyway); grouping
        runs on a small inline dict-backed union-find, and per-group
        aggregation reads the base arrays directly.  A component whose
        root set matches a pre-flush group exactly and touches no root
        in ``touched_roots`` reuses that group object verbatim — the
        flush detects reuse by identity and skips its rank churn.
        """
        prev_of = self._overlay_of
        parent: dict[int, int] = {}
        get = parent.get

        def gfind(item: int) -> int:
            root = item
            while True:
                above = get(root, root)
                if above == root:
                    break
                root = above
            while item != root:
                parent[item], item = root, parent[item]
            return root

        for ra, rb in root_pairs:
            if ra == rb:
                continue
            if ra not in parent:
                parent[ra] = ra
            if rb not in parent:
                parent[rb] = rb
            fa = gfind(ra)
            fb = gfind(rb)
            if fa != fb:
                parent[fb] = fa
        members: dict[int, list[int]] = {}
        for item in parent:
            members.setdefault(gfind(item), []).append(item)
        groups: list[_OverlayGroup] = []
        reuse_hits = 0
        sizes = self._uf.root_sizes
        balances = self._balance
        tx_counts = self._tx_count
        firsts = self._first
        lasts = self._last
        min_member = self._min_member
        for roots in members.values():
            # Every tracked root was unioned with a distinct partner, so
            # components here always span at least two base clusters.
            roots_key = tuple(sorted(roots))
            prev = prev_of.get(roots_key[0])
            if (
                prev is not None
                and prev.roots == roots_key
                and touched_roots.isdisjoint(roots_key)
            ):
                # Same topology, no member churn or fold: every
                # aggregate (and the cid) is provably unchanged.
                groups.append(prev)
                reuse_hits += 1
                continue
            size = balance = tx_count = 0
            first = last = -1
            cid = None
            for root in roots_key:
                size += sizes[root]
                balance += balances[root]
                tx_count += tx_counts[root]
                root_first = firsts[root]
                if root_first >= 0 and (first < 0 or root_first < first):
                    first = root_first
                if lasts[root] > last:
                    last = lasts[root]
                root_min = min_member[root]
                if cid is None or root_min < cid:
                    cid = root_min
            if prev is None or prev.cid != cid or prev.roots != roots_key:
                # Structural change: member roots' canonical-id mapping
                # shifted (an aggregates-only rebuild keeps every id).
                self._naming_dirty.update(roots_key)
                if prev is not None:
                    self._naming_dirty.update(prev.roots)
            groups.append(
                _OverlayGroup(
                    cid=cid,
                    roots=roots_key,
                    size=size,
                    balance=balance,
                    tx_count=tx_count,
                    first_seen=first,
                    last_seen=last,
                )
            )
        if reuse_hits and self.metrics.enabled:
            self.metrics.counter("aggregates.overlay_reuse_hits").inc(
                reuse_hits
            )
        self._overlay_groups = groups
        self._overlay_of = {
            root: group for group in groups for root in group.roots
        }

    def _refresh_ranks(
        self,
        old_cids: set[int],
        new_entries: list[tuple[int, int, int, int]],
    ) -> None:
        """Apply one flush's ranking churn: stale ids out, live ids in.

        Inclusion mirrors the batch ``_agg`` builders exactly: ``size``
        ranks every cluster in the universe; ``balance`` and
        ``activity`` rank only clusters with a positive total (balances
        are non-negative, so this equals the batch pass that skips
        zero-balance member addresses).
        """
        ranks = self._ranks
        new_cids = {entry[0] for entry in new_entries}
        for cid in old_cids - new_cids:
            for rank_index in ranks.values():
                rank_index.discard(cid)
        size_index = ranks["size"]
        balance_index = ranks["balance"]
        activity_index = ranks["activity"]
        for cid, size, balance, tx_count in new_entries:
            size_index.set(cid, size)
            if balance > 0:
                balance_index.set(cid, balance)
            else:
                balance_index.discard(cid)
            if tx_count > 0:
                activity_index.set(cid, tx_count)
            else:
                activity_index.discard(cid)

    # ------------------------------------------------------------------
    # queries (all at the view's height; each flushes queued blocks)
    # ------------------------------------------------------------------

    def cluster_id_of(self, ident: int | None) -> int | None:
        """Canonical cluster id for an address id, or ``None`` if the id
        is outside the view's universe."""
        self._flush()
        if ident is None or not 0 <= ident < len(self._uf):
            return None
        root = self._uf.find(ident)
        group = self._overlay_of.get(root)
        return group.cid if group is not None else self._min_member[root]

    def cluster_placements_of(
        self, idents
    ) -> list[tuple[int, int] | None]:
        """Bulk :meth:`cluster_id_of` returning ``(base root, canonical
        id)`` per input id (``None`` for ids outside the universe).

        One flush, locals bound once: the cluster-name aggregate
        resolves batches of tagged addresses through this instead of one
        method call (plus flush check) per id, and keeps the returned
        root to know when a cached resolution goes stale (see
        :meth:`drain_naming_dirty`).
        """
        self._flush()
        uf = self._uf
        universe = len(uf)
        find = uf.find
        overlay_get = self._overlay_of.get
        min_member = self._min_member
        out: list[tuple[int, int] | None] = []
        append = out.append
        for ident in idents:
            if ident is None or not 0 <= ident < universe:
                append(None)
                continue
            root = find(ident)
            group = overlay_get(root)
            append(
                (root, group.cid if group is not None else min_member[root])
            )
        return out

    def naming_cursor(self) -> DirtyRootCursor:
        """Register a dirty-root consumer (see :class:`DirtyRootCursor`).

        The cursor sees only roots marked dirty *after* registration —
        a new consumer does a full build first (ids resolved through
        :meth:`cluster_placements_of` carry their base root for exactly
        this), then follows churn through :meth:`drain_naming_dirty`.
        Cursors are not durable state: a restored view starts with none
        registered, and consumers re-register against the view they
        actually follow.
        """
        cursor = DirtyRootCursor()
        self._naming_cursors.append(cursor)
        return cursor

    def release_naming_cursor(self, cursor: DirtyRootCursor) -> None:
        """Deregister a cursor (its backlog stops accumulating)."""
        try:
            self._naming_cursors.remove(cursor)
        except ValueError:
            pass
        if cursor is self._default_naming_cursor:
            self._default_naming_cursor = None

    def drain_naming_dirty(
        self, cursor: DirtyRootCursor | None = None
    ) -> set[int]:
        """Return (and clear) the base roots whose canonical-id mapping
        may have changed since ``cursor`` last drained.

        Every registered cursor observes every dirty root exactly once:
        the pending set is distributed into each cursor's own set here,
        then the caller's set is handed over and replaced.  Calling
        without a cursor uses a lazily registered default — the old
        single-consumer API, still what a lone consumer needs.  An id
        resolved through :meth:`cluster_placements_of` stays valid until
        a drain reports its root — fold endpoints and structural overlay
        changes are reported, plain churn (which cannot move a cluster's
        id) is not.
        """
        self._flush()
        if cursor is None:
            cursor = self._default_naming_cursor
            if cursor is None:
                cursor = self._default_naming_cursor = self.naming_cursor()
        pending = self._naming_dirty
        if pending:
            for registered in self._naming_cursors:
                registered.dirty |= pending
            self._naming_dirty = set()
        dirty = cursor.dirty
        if not dirty:
            return dirty
        cursor.dirty = set()
        return dirty

    @property
    def pending_blocks(self) -> int:
        """Blocks queued but not yet folded (the flush-queue depth the
        health model reports)."""
        return len(self._pending)

    def _locate(self, cluster_id: int) -> tuple[int, _OverlayGroup | None]:
        """Resolve a canonical id to its base root / overlay group."""
        self._flush()
        if not 0 <= cluster_id < len(self._uf):
            raise KeyError(cluster_id)
        root = self._uf.find(cluster_id)
        return root, self._overlay_of.get(root)

    def size_of_cluster(self, cluster_id: int) -> int:
        root, group = self._locate(cluster_id)
        return group.size if group is not None else self._uf.size_of(root)

    def balance_of_cluster(self, cluster_id: int) -> int:
        root, group = self._locate(cluster_id)
        return group.balance if group is not None else self._balance[root]

    def activity_of_cluster(self, cluster_id: int) -> ClusterActivity | None:
        """Aggregate activity, or ``None`` for a never-active cluster
        (matching the batch rollup, which skips zero-count clusters)."""
        root, group = self._locate(cluster_id)
        if group is not None:
            if not group.tx_count:
                return None
            return ClusterActivity(
                tx_count=group.tx_count,
                first_seen=group.first_seen,
                last_seen=group.last_seen,
            )
        if not self._tx_count[root]:
            return None
        return ClusterActivity(
            tx_count=self._tx_count[root],
            first_seen=self._first[root],
            last_seen=self._last[root],
        )

    def _rank_index(self, by: str) -> RankIndex:
        self._flush()
        rank_index = self._ranks.get(by)
        if rank_index is None:
            raise ValueError(
                f"ranking metric must be one of {TOP_CLUSTER_METRICS}"
            )
        return rank_index

    def top(self, n: int, by: str) -> tuple[tuple[int, int], ...]:
        """The best ``n`` clusters by one metric: ``(id, value)`` pairs."""
        return self._rank_index(by).top(n)

    def rank_of(self, by: str, cluster_id: int) -> int | None:
        """1-based standing of one cluster under one metric."""
        return self._rank_index(by).rank_of(cluster_id)

    def ranking(self, by: str) -> ClusterRanking:
        """Materialize one metric's full per-height ranking object."""
        return self._rank_index(by).as_ranking()

    @property
    def cluster_count(self) -> int:
        """Clusters at the tip (the size ranking covers every cluster)."""
        self._flush()
        return len(self._ranks["size"])

    # ------------------------------------------------------------------
    # durable state (snapshot / restore)
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """Plain-data state: the base partition and its fold arrays.

        The overlay, open-label set, and rank indexes are *derived*
        (from the engine's open labels and the base aggregates) and are
        rebuilt on restore — exporting them would only create a second
        source of truth to keep consistent.  Queued blocks are flushed
        first, so an export always reflects the view's full height.

        Version 2: the five fold arrays export as raw int64 bytes (one
        buffer each); :meth:`from_state` still accepts the version-1
        list shape.
        """
        self._flush()
        return {
            "version": 2,
            "height": self._height,
            "uf": self._uf.export_state(),
            "balance": self._balance.tobytes(),
            "tx_count": self._tx_count.tobytes(),
            "first_seen": self._first.tobytes(),
            "last_seen": self._last.tobytes(),
            "min_member": self._min_member.tobytes(),
        }

    @classmethod
    def from_state(
        cls,
        index: ChainIndex,
        state: dict,
        *,
        engine: IncrementalClusteringEngine,
        follow: bool = True,
        use_kernels: bool = True,
        metrics=None,
    ) -> "ClusterAggregateView":
        """Rebuild a view from :meth:`export_state` output, no catch-up.

        ``engine`` must be the restored engine at the same height — the
        open-label overlay is reconstructed from its live label state,
        so restored rankings are identical to the exporting view's.
        Accepts both the version-2 bytes shape and the pre-columnar
        version-1 list shape.
        """
        view = cls.__new__(cls)
        view.metrics = metrics if metrics is not None else NULL_REGISTRY
        view.engine = engine
        view._use_kernels = use_kernels
        view._uf = IntUnionFind.from_state(state["uf"])
        view._cursor = view._uf.merge_cursor()
        view._balance = _fold_array(state["balance"])
        view._tx_count = _fold_array(state["tx_count"])
        view._first = _fold_array(state["first_seen"])
        view._last = _fold_array(state["last_seen"])
        view._min_member = _fold_array(state["min_member"])
        if engine.height != state["height"]:
            raise ValueError(
                f"aggregate state is at height {state['height']} but the "
                f"engine is at {engine.height}"
            )
        view._open = set(engine.open_labels())
        view._pending = []
        view._naming_dirty = set()
        view._naming_cursors = []
        view._default_naming_cursor = None
        view._rebuild_derived()
        view._adopt(index, state["height"], follow)
        return view

    def _rebuild_derived(self) -> None:
        """Reconstruct overlay groups and rank indexes from base state."""
        self._overlay_groups = []
        self._overlay_of = {}
        find = self._uf.find
        pairs = [
            (find(live.address_id), find(live.input_id))
            for live in self._open
            if live.input_id is not None
        ]
        self._build_overlay(pairs, set())
        self._ranks = {metric: RankIndex() for metric in TOP_CLUSTER_METRICS}
        entries: list[tuple[int, int, int, int]] = []
        grouped = self._overlay_of
        for root, size in self._uf.component_sizes().items():
            if root in grouped:
                continue
            entries.append(
                (self._min_member[root], size, self._balance[root],
                 self._tx_count[root])
            )
        for group in self._overlay_groups:
            entries.append(
                (group.cid, group.size, group.balance, group.tx_count)
            )
        self._refresh_ranks(set(), entries)

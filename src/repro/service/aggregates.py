"""Differential per-cluster aggregates: the merge-aware materialized view.

Every ranked or rolled-up forensics answer — ``top_clusters``,
``cluster_profile``, ``cluster_balance`` — needs whole-partition
aggregates: per-cluster balance, activity, size, and a per-metric
ranking.  The batch path rebuilds those from a full pass over every
address array on the first query after each block, so per-block serving
cost grows with chain size.  :class:`ClusterAggregateView` instead
folds each block's *deltas* as it streams:

* per-address balance/activity churn updates only the touched clusters;
* H1 co-spend unions and settled H2 change links arrive as merge events
  (:meth:`IncrementalClusteringEngine.cluster_delta
  <repro.core.incremental.IncrementalClusteringEngine.cluster_delta>`,
  itself re-exposing the
  :meth:`IntUnionFind.drain_merges
  <repro.core.union_find.IntUnionFind.drain_merges>` merge-log hook),
  and each merge folds the absorbed cluster's aggregate into the kept
  cluster's — O(1) per merge, never a member scan;
* H2 labels whose §4.2 wait window is still open are *overlaid*, not
  folded: a later receive may void them, so their change links join
  clusters only in a small per-block overlay that is cheap to rebuild
  (bounded by the open-window label count), while the fold-for-good
  happens the block their window closes.

Per-block maintenance is therefore O(block churn + merges + open
labels), not O(addresses).

Cluster identity is *canonical*: a cluster's public id is its minimum
member address id (ids are dense and first-sight ordered, so this is
the cluster's earliest-seen address).  Canonical ids are a pure
function of the partition — independent of union order, restore
history, or batch-vs-differential construction — which is what lets
the property suite demand byte-equality between this view and the
batch ``_agg`` rebuild, and what makes ranking tie-breaks stable (see
:class:`~repro.service.queries.ClusterRanking`).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass

from ..chain.index import ChainIndex
from ..chain.model import Block
from ..core.incremental import IncrementalClusteringEngine
from ..core.union_find import IntUnionFind, UnionFind
from .queries import ClusterRanking, TOP_CLUSTER_METRICS
from .views import ClusterActivity, MaterializedView


class RankIndex:
    """One metric's live ranking: a sorted key list maintained by churn.

    Keys are ``(-value, cluster id)`` so ascending list order is the
    serving order: best value first, ties broken by the smallest
    canonical cluster id.  Updates cost O(log n) to locate plus a
    C-level ``memmove``; reads are slices (:meth:`top`) or a bisect
    (:meth:`rank_of`) — no per-block re-sort anywhere.
    """

    __slots__ = ("_keys", "_values")

    def __init__(self) -> None:
        self._keys: list[tuple[int, int]] = []
        self._values: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, cluster_id: int) -> bool:
        return cluster_id in self._values

    def value_of(self, cluster_id: int) -> int | None:
        return self._values.get(cluster_id)

    def set(self, cluster_id: int, value: int) -> None:
        """Insert or move one cluster's entry."""
        old = self._values.get(cluster_id)
        if old == value:
            return
        if old is not None:
            del self._keys[bisect_left(self._keys, (-old, cluster_id))]
        insort(self._keys, (-value, cluster_id))
        self._values[cluster_id] = value

    def discard(self, cluster_id: int) -> None:
        """Drop one cluster's entry (no-op when absent)."""
        old = self._values.pop(cluster_id, None)
        if old is not None:
            del self._keys[bisect_left(self._keys, (-old, cluster_id))]

    def top(self, n: int) -> tuple[tuple[int, int], ...]:
        """The best ``n`` entries as ``(cluster id, value)`` pairs."""
        return tuple((cid, -neg) for neg, cid in self._keys[:n])

    def rank_of(self, cluster_id: int) -> int | None:
        """1-based rank of one cluster, or ``None`` if not ranked."""
        value = self._values.get(cluster_id)
        if value is None:
            return None
        return bisect_left(self._keys, (-value, cluster_id)) + 1

    def as_ranking(self) -> ClusterRanking:
        """Materialize the full, immutable per-height ranking object."""
        order = tuple((cid, -neg) for neg, cid in self._keys)
        return ClusterRanking(
            order=order,
            rank_of={cid: rank for rank, (cid, _value) in enumerate(order, 1)},
        )


@dataclass(frozen=True)
class _OverlayGroup:
    """Base clusters joined only by still-voidable H2 change links."""

    cid: int
    """Canonical id of the combined cluster (min over member minimums)."""

    roots: tuple[int, ...]
    """The base-partition roots the open links connect."""

    size: int
    balance: int
    tx_count: int
    first_seen: int
    last_seen: int


class ClusterAggregateView(MaterializedView):
    """Streaming per-cluster balance/activity/size/ranking maintenance.

    Attach *after* the service's
    :class:`~repro.core.incremental.IncrementalClusteringEngine` (the
    service constructor and snapshot-restore path both do): each block's
    :meth:`_apply_block` pulls the engine's
    :meth:`~repro.core.incremental.IncrementalClusteringEngine.cluster_delta`
    for the height, so the engine must already have clustered it.

    Internal structure: a *base* partition (own
    :class:`~repro.core.union_find.IntUnionFind`) carrying H1 unions
    plus permanently settled H2 change links, with per-base-root
    aggregate arrays folded on every base merge via the union-find's
    merge-cursor hook; plus a per-block *overlay* of open-window H2
    links.  Base folds are irreversible (min/max folds have no inverse)
    — which is exactly why voidable links never enter the base: a §4.2
    void simply drops the link from the next block's overlay, and the
    engine's own checkpoint/rollback time-travel brackets never leak in
    (they restore the merge log exactly, and this view's base is never
    rolled back — :meth:`_apply_block` refuses retractions loudly).
    """

    def __init__(
        self,
        index: ChainIndex,
        *,
        engine: IncrementalClusteringEngine,
        follow: bool = True,
    ) -> None:
        self.engine = engine
        self._uf = IntUnionFind()
        """Base partition: H1 merges + settled change links."""
        self._cursor = self._uf.merge_cursor()
        """Fold hook: every base merge is drained into aggregate folds."""
        self._balance: list[int] = []
        """Per base root: summed member balance (junk at non-roots)."""
        self._tx_count: list[int] = []
        self._first: list[int] = []
        self._last: list[int] = []
        self._min_member: list[int] = []
        """Per base root: minimum member id — the canonical cluster id."""
        self._open: set = set()
        """Open-window (still voidable) live labels, maintained from the
        engine's per-block born/voided/settled deltas."""
        self._overlay_groups: list[_OverlayGroup] = []
        self._overlay_of: dict[int, _OverlayGroup] = {}
        """base root -> the overlay group currently absorbing it."""
        self._ranks: dict[str, RankIndex] = {
            metric: RankIndex() for metric in TOP_CLUSTER_METRICS
        }
        super().__init__(index, follow=follow)

    # ------------------------------------------------------------------
    # streaming maintenance
    # ------------------------------------------------------------------

    def _apply_block(self, block: Block) -> None:
        height = block.height
        engine = self.engine
        if engine.height < height:
            raise ValueError(
                f"engine is at height {engine.height} but block {height} "
                f"arrived; attach ClusterAggregateView after a following "
                f"engine (a detached engine, a refused non-monotonic "
                f"block, or view-before-engine subscription order all "
                f"leave the merge deltas missing)"
            )
        delta = engine.cluster_delta(height)
        index = self.index
        uf = self._uf
        min_member = self._min_member

        involved: set[int] = set()
        old_cids: set[int] = set()

        # 1. The previous block's overlay dissolves (it is rebuilt from
        #    the current open-label set at the end of this block).
        for group in self._overlay_groups:
            old_cids.add(group.cid)
            involved.update(group.roots)

        # 2. One pass over the block: balance deltas, activity
        #    incidences, and the new ids that grow the universe.  The
        #    per-tx memos were seated at ingestion, so nothing here
        #    re-resolves a prevout.
        balance_deltas: dict[int, int] = {}
        involvement: dict[int, int] = {}
        max_id = len(uf) - 1
        for tx in block.transactions:
            out_ids = index.output_address_ids(tx)
            if tx.is_coinbase:
                touched = set()
            else:
                for ident, value in index.input_spends(tx):
                    if ident >= 0:
                        balance_deltas[ident] = (
                            balance_deltas.get(ident, 0) - value
                        )
                touched = set(index.input_address_ids(tx))
            for out, ident in zip(tx.outputs, out_ids):
                if ident >= 0:
                    balance_deltas[ident] = (
                        balance_deltas.get(ident, 0) + out.value
                    )
                    touched.add(ident)
                    if ident > max_id:
                        max_id = ident
            for ident in touched:
                involvement[ident] = involvement.get(ident, 0) + 1
        grown_from = len(uf)
        if max_id >= grown_from:
            uf.ensure(max_id + 1)
            grow = max_id + 1 - grown_from
            self._balance.extend([0] * grow)
            self._tx_count.extend([0] * grow)
            self._first.extend([-1] * grow)
            self._last.extend([-1] * grow)
            min_member.extend(range(grown_from, max_id + 1))
            involved.update(range(grown_from, max_id + 1))

        # 3. Open-label bookkeeping off the engine's delta: watched
        #    births join the overlay set, voids and settles leave it.
        open_set = self._open
        for live in delta.born:
            if live.deadline is not None:
                open_set.add(live)
        for live in delta.voided:
            open_set.discard(live)
        for live in delta.settled:
            open_set.discard(live)
        settle_links = [
            live for live in delta.settled if live.input_id is not None
        ]
        open_links = [live for live in open_set if live.input_id is not None]

        # 4. Everything this block can touch, and the canonical ids its
        #    stale ranking entries currently sit under (resolved before
        #    any mutation).
        for absorbed, kept in delta.merges:
            involved.add(absorbed)
            involved.add(kept)
        for live in settle_links:
            involved.add(live.address_id)
            involved.add(live.input_id)
        for live in open_links:
            involved.add(live.address_id)
            involved.add(live.input_id)
        involved.update(balance_deltas)
        involved.update(involvement)
        find = uf.find
        for ident in involved:
            old_cids.add(min_member[find(ident)])

        # 5. Fold the block's merges into the base: H1 unions (replayed
        #    off the engine's merge log) plus change links that settled
        #    this block.  The merge cursor turns every *effective* base
        #    merge into one aggregate fold, smaller into larger.
        for absorbed, kept in delta.merges:
            uf.union(absorbed, kept)
        for live in settle_links:
            uf.union(live.address_id, live.input_id)
        retracted, folds = uf.drain_merges(self._cursor)
        if retracted:
            raise RuntimeError(
                "cluster aggregate base was rolled back; folded "
                "aggregates cannot be retracted"
            )
        balance = self._balance
        tx_count = self._tx_count
        first = self._first
        last = self._last
        for absorbed, kept in folds:
            balance[kept] += balance[absorbed]
            tx_count[kept] += tx_count[absorbed]
            first_absorbed = first[absorbed]
            if first_absorbed >= 0 and (
                first[kept] < 0 or first_absorbed < first[kept]
            ):
                first[kept] = first_absorbed
            if last[absorbed] > last[kept]:
                last[kept] = last[absorbed]
            if min_member[absorbed] < min_member[kept]:
                min_member[kept] = min_member[absorbed]

        # 6. Per-address churn folded at the post-merge roots.
        for ident, change in balance_deltas.items():
            if change:
                balance[find(ident)] += change
        for ident, hits in involvement.items():
            root = find(ident)
            tx_count[root] += hits
            if first[root] < 0:
                first[root] = height
            last[root] = height

        # 7. Rebuild the overlay from the open links (bounded by the
        #    open-window label count) and refresh the rankings for
        #    every touched cluster.
        self._build_overlay(open_links)
        grouped = self._overlay_of
        new_entries: list[tuple[int, int, int, int]] = []
        for root in {find(ident) for ident in involved}:
            if root in grouped:
                continue
            new_entries.append(
                (min_member[root], uf.size_of(root), balance[root],
                 tx_count[root])
            )
        for group in self._overlay_groups:
            new_entries.append(
                (group.cid, group.size, group.balance, group.tx_count)
            )
        self._refresh_ranks(old_cids, new_entries)

    def _build_overlay(self, open_links) -> None:
        """Group base roots connected by open (voidable) change links."""
        find = self._uf.find
        grouping = UnionFind()
        for live in open_links:
            ra = find(live.address_id)
            rb = find(live.input_id)
            if ra != rb:
                grouping.union(ra, rb)
        groups: list[_OverlayGroup] = []
        uf = self._uf
        for roots in grouping.components().values():
            # Every tracked root was unioned with a distinct partner, so
            # components here always span at least two base clusters.
            size = balance = tx_count = 0
            first = last = -1
            cid = None
            for root in roots:
                size += uf.size_of(root)
                balance += self._balance[root]
                tx_count += self._tx_count[root]
                root_first = self._first[root]
                if root_first >= 0 and (first < 0 or root_first < first):
                    first = root_first
                if self._last[root] > last:
                    last = self._last[root]
                root_min = self._min_member[root]
                if cid is None or root_min < cid:
                    cid = root_min
            groups.append(
                _OverlayGroup(
                    cid=cid,
                    roots=tuple(sorted(roots)),
                    size=size,
                    balance=balance,
                    tx_count=tx_count,
                    first_seen=first,
                    last_seen=last,
                )
            )
        self._overlay_groups = groups
        self._overlay_of = {
            root: group for group in groups for root in group.roots
        }

    def _refresh_ranks(
        self,
        old_cids: set[int],
        new_entries: list[tuple[int, int, int, int]],
    ) -> None:
        """Apply one block's ranking churn: stale ids out, live ids in.

        Inclusion mirrors the batch ``_agg`` builders exactly: ``size``
        ranks every cluster in the universe; ``balance`` and
        ``activity`` rank only clusters with a positive total (balances
        are non-negative, so this equals the batch pass that skips
        zero-balance member addresses).
        """
        ranks = self._ranks
        new_cids = {entry[0] for entry in new_entries}
        for cid in old_cids - new_cids:
            for rank_index in ranks.values():
                rank_index.discard(cid)
        size_index = ranks["size"]
        balance_index = ranks["balance"]
        activity_index = ranks["activity"]
        for cid, size, balance, tx_count in new_entries:
            size_index.set(cid, size)
            if balance > 0:
                balance_index.set(cid, balance)
            else:
                balance_index.discard(cid)
            if tx_count > 0:
                activity_index.set(cid, tx_count)
            else:
                activity_index.discard(cid)

    # ------------------------------------------------------------------
    # queries (all at the view's height)
    # ------------------------------------------------------------------

    def cluster_id_of(self, ident: int | None) -> int | None:
        """Canonical cluster id for an address id, or ``None`` if the id
        is outside the view's universe."""
        if ident is None or not 0 <= ident < len(self._uf):
            return None
        root = self._uf.find(ident)
        group = self._overlay_of.get(root)
        return group.cid if group is not None else self._min_member[root]

    def _locate(self, cluster_id: int) -> tuple[int, _OverlayGroup | None]:
        """Resolve a canonical id to its base root / overlay group."""
        if not 0 <= cluster_id < len(self._uf):
            raise KeyError(cluster_id)
        root = self._uf.find(cluster_id)
        return root, self._overlay_of.get(root)

    def size_of_cluster(self, cluster_id: int) -> int:
        root, group = self._locate(cluster_id)
        return group.size if group is not None else self._uf.size_of(root)

    def balance_of_cluster(self, cluster_id: int) -> int:
        root, group = self._locate(cluster_id)
        return group.balance if group is not None else self._balance[root]

    def activity_of_cluster(self, cluster_id: int) -> ClusterActivity | None:
        """Aggregate activity, or ``None`` for a never-active cluster
        (matching the batch rollup, which skips zero-count clusters)."""
        root, group = self._locate(cluster_id)
        if group is not None:
            if not group.tx_count:
                return None
            return ClusterActivity(
                tx_count=group.tx_count,
                first_seen=group.first_seen,
                last_seen=group.last_seen,
            )
        if not self._tx_count[root]:
            return None
        return ClusterActivity(
            tx_count=self._tx_count[root],
            first_seen=self._first[root],
            last_seen=self._last[root],
        )

    def _rank_index(self, by: str) -> RankIndex:
        rank_index = self._ranks.get(by)
        if rank_index is None:
            raise ValueError(
                f"ranking metric must be one of {TOP_CLUSTER_METRICS}"
            )
        return rank_index

    def top(self, n: int, by: str) -> tuple[tuple[int, int], ...]:
        """The best ``n`` clusters by one metric: ``(id, value)`` pairs."""
        return self._rank_index(by).top(n)

    def rank_of(self, by: str, cluster_id: int) -> int | None:
        """1-based standing of one cluster under one metric."""
        return self._rank_index(by).rank_of(cluster_id)

    def ranking(self, by: str) -> ClusterRanking:
        """Materialize one metric's full per-height ranking object."""
        return self._rank_index(by).as_ranking()

    @property
    def cluster_count(self) -> int:
        """Clusters at the tip (the size ranking covers every cluster)."""
        return len(self._ranks["size"])

    # ------------------------------------------------------------------
    # durable state (snapshot / restore)
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """Plain-data state: the base partition and its fold arrays.

        The overlay, open-label set, and rank indexes are *derived*
        (from the engine's open labels and the base aggregates) and are
        rebuilt on restore — exporting them would only create a second
        source of truth to keep consistent.
        """
        return {
            "height": self._height,
            "uf": self._uf.export_state(),
            "balance": list(self._balance),
            "tx_count": list(self._tx_count),
            "first_seen": list(self._first),
            "last_seen": list(self._last),
            "min_member": list(self._min_member),
        }

    @classmethod
    def from_state(
        cls,
        index: ChainIndex,
        state: dict,
        *,
        engine: IncrementalClusteringEngine,
        follow: bool = True,
    ) -> "ClusterAggregateView":
        """Rebuild a view from :meth:`export_state` output, no catch-up.

        ``engine`` must be the restored engine at the same height — the
        open-label overlay is reconstructed from its live label state,
        so restored rankings are identical to the exporting view's.
        """
        view = cls.__new__(cls)
        view.engine = engine
        view._uf = IntUnionFind.from_state(state["uf"])
        view._cursor = view._uf.merge_cursor()
        view._balance = list(state["balance"])
        view._tx_count = list(state["tx_count"])
        view._first = list(state["first_seen"])
        view._last = list(state["last_seen"])
        view._min_member = list(state["min_member"])
        if engine.height != state["height"]:
            raise ValueError(
                f"aggregate state is at height {state['height']} but the "
                f"engine is at {engine.height}"
            )
        view._open = set(engine.open_labels())
        view._rebuild_derived()
        view._adopt(index, state["height"], follow)
        return view

    def _rebuild_derived(self) -> None:
        """Reconstruct overlay groups and rank indexes from base state."""
        open_links = [
            live for live in self._open if live.input_id is not None
        ]
        self._build_overlay(open_links)
        self._ranks = {metric: RankIndex() for metric in TOP_CLUSTER_METRICS}
        entries: list[tuple[int, int, int, int]] = []
        grouped = self._overlay_of
        for root, size in self._uf.component_sizes().items():
            if root in grouped:
                continue
            entries.append(
                (self._min_member[root], size, self._balance[root],
                 self._tx_count[root])
            )
        for group in self._overlay_groups:
            entries.append(
                (group.cid, group.size, group.balance, group.tx_count)
            )
        self._refresh_ranks(set(), entries)

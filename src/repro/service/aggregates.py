"""Differential per-cluster aggregates: the merge-aware materialized view.

Every ranked or rolled-up forensics answer — ``top_clusters``,
``cluster_profile``, ``cluster_balance`` — needs whole-partition
aggregates: per-cluster balance, activity, size, and a per-metric
ranking.  The batch path rebuilds those from a full pass over every
address array on the first query after each block, so per-block serving
cost grows with chain size.  :class:`ClusterAggregateView` instead
folds each block's *deltas* as it streams:

* per-address balance/activity churn arrives pre-flattened on the
  block's shared :class:`~repro.chain.delta.BlockDelta` (the one
  transaction walk the whole fan-out shares): balance folds read the
  flat event log, incidence folds read the per-tx deduplicated involved
  lists, and only the touched clusters are updated;
* H1 co-spend unions and settled H2 change links arrive as merge events
  (:meth:`IncrementalClusteringEngine.cluster_delta
  <repro.core.incremental.IncrementalClusteringEngine.cluster_delta>`,
  itself re-exposing the
  :meth:`IntUnionFind.drain_merges
  <repro.core.union_find.IntUnionFind.drain_merges>` merge-log hook),
  and each merge folds the absorbed cluster's aggregate into the kept
  cluster's — O(1) per merge, never a member scan;
* H2 labels whose §4.2 wait window is still open are *overlaid*, not
  folded: a later receive may void them, so their change links join
  clusters only in a small overlay (bounded by the open-window label
  count, with untouched groups reused verbatim across flushes), while
  the fold-for-good happens the block their window closes;
* folding is *lazily flushed*: ingest only queues the shared delta, and
  the first query or export at the new tip folds every queued block and
  refreshes overlay + rankings once — interleaved traffic pays the same
  as eager per-block maintenance, bulk ingest (catch-up, tail replay)
  coalesces it.

Per-flush maintenance is therefore O(queued churn + merges + changed
overlay), not O(addresses).

Cluster identity is *canonical*: a cluster's public id is its minimum
member address id (ids are dense and first-sight ordered, so this is
the cluster's earliest-seen address).  Canonical ids are a pure
function of the partition — independent of union order, restore
history, or batch-vs-differential construction — which is what lets
the property suite demand byte-equality between this view and the
batch ``_agg`` rebuild, and what makes ranking tie-breaks stable (see
:class:`~repro.service.queries.ClusterRanking`).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..chain.delta import BlockDelta
from ..chain.index import ChainIndex
from ..core.arrays import IntVector
from ..core.incremental import IncrementalClusteringEngine
from ..core.union_find import IntUnionFind
from ..obs import COUNT_BUCKETS, NULL_REGISTRY
from .queries import ClusterRanking, TOP_CLUSTER_METRICS
from .views import ClusterActivity, MaterializedView


def _fold_array(state_value) -> IntVector:
    """Restore one fold array from bytes (v2) or a list (v1 snapshots).

    The live arrays are :class:`~repro.core.arrays.IntVector` buffers:
    the merge folds index them scalar-by-scalar (item access returns
    plain Python ints), while the kernelized churn fold scatters into
    the backing numpy array directly."""
    if isinstance(state_value, bytes):
        return IntVector.from_bytes(state_value)
    return IntVector.from_list(state_value)


class RankIndex:
    """One metric's live ranking: a sorted key list maintained by churn.

    Keys are ``(-value, cluster id)`` so ascending list order is the
    serving order: best value first, ties broken by the smallest
    canonical cluster id.  Updates cost O(log n) to locate plus a
    C-level ``memmove``; reads are slices (:meth:`top`) or a bisect
    (:meth:`rank_of`) — no per-block re-sort anywhere.

    Two backings share this interface.  The live tip view mutates, so
    it carries the key list and value map.  A settled horizon state is
    immutable and serves only a ``top(n)`` slice or a single-id
    ``rank_of``, so :meth:`from_columns` keeps just the two lexsorted
    numpy columns (``_neg``, ``_cid``) and never pays the
    list-of-tuples / dict materialization; a point lookup is one
    C-level equality scan.  Mutators materialize the list backing on
    first touch, so the distinction never leaks.
    """

    __slots__ = ("_keys", "_values", "_neg", "_cid")

    def __init__(self) -> None:
        self._keys: list[tuple[int, int]] = []
        self._values: dict[int, int] = {}
        self._neg: np.ndarray | None = None
        self._cid: np.ndarray | None = None

    def _materialize(self) -> None:
        """Switch an array-backed index to the mutable list backing."""
        if self._neg is None:
            return
        negs, cids = self._neg, self._cid
        self._keys = list(zip(negs.tolist(), cids.tolist()))
        self._values = dict(zip(cids.tolist(), np.negative(negs).tolist()))
        self._neg = None
        self._cid = None

    def _position_of(self, cluster_id: int) -> int:
        """Array backing: 0-based rank of ``cluster_id``, or -1.

        Ids are unique, so one vectorized equality scan finds the
        cluster's (single) slot — no value map needed."""
        hits = np.nonzero(self._cid == cluster_id)[0]
        return int(hits[0]) if len(hits) else -1

    def __len__(self) -> int:
        if self._neg is not None:
            return len(self._neg)
        return len(self._keys)

    def __contains__(self, cluster_id: int) -> bool:
        if self._neg is not None:
            return self._position_of(cluster_id) >= 0
        return cluster_id in self._values

    def value_of(self, cluster_id: int) -> int | None:
        if self._neg is not None:
            position = self._position_of(cluster_id)
            return -int(self._neg[position]) if position >= 0 else None
        return self._values.get(cluster_id)

    def set(self, cluster_id: int, value: int) -> None:
        """Insert or move one cluster's entry."""
        self._materialize()
        old = self._values.get(cluster_id)
        if old == value:
            return
        if old is not None:
            del self._keys[bisect_left(self._keys, (-old, cluster_id))]
        insort(self._keys, (-value, cluster_id))
        self._values[cluster_id] = value

    def discard(self, cluster_id: int) -> None:
        """Drop one cluster's entry (no-op when absent)."""
        self._materialize()
        old = self._values.pop(cluster_id, None)
        if old is not None:
            del self._keys[bisect_left(self._keys, (-old, cluster_id))]

    def apply(self, discards, updates) -> None:
        """Bulk churn: drop ``discards`` ids, then upsert ``updates``
        ``(cluster id, value)`` pairs.

        Small batches walk the incremental :meth:`set`/:meth:`discard`
        path; a batch comparable to the index itself rewrites the value
        map and re-sorts once — O(n log n) beats thousands of O(n)
        list memmoves, which is the regime deferred time-travel
        finalization lands in."""
        self._materialize()
        if len(discards) + len(updates) < max(64, len(self._keys) // 8):
            for cluster_id in discards:
                self.discard(cluster_id)
            for cluster_id, value in updates:
                self.set(cluster_id, value)
            return
        values = self._values
        for cluster_id in discards:
            values.pop(cluster_id, None)
        values.update(updates)
        if not values:
            self._keys = []
            return
        cids = np.fromiter(values.keys(), dtype="<i8", count=len(values))
        negs = np.fromiter(values.values(), dtype="<i8", count=len(values))
        np.negative(negs, out=negs)
        order = np.lexsort((cids, negs))
        self._keys = list(
            zip(negs[order].tolist(), cids[order].tolist())
        )

    def top(self, n: int) -> tuple[tuple[int, int], ...]:
        """The best ``n`` entries as ``(cluster id, value)`` pairs."""
        if self._neg is not None:
            return tuple(
                zip(
                    self._cid[:n].tolist(),
                    np.negative(self._neg[:n]).tolist(),
                )
            )
        return tuple((cid, -neg) for neg, cid in self._keys[:n])

    def rank_of(self, cluster_id: int) -> int | None:
        """1-based rank of one cluster, or ``None`` if not ranked."""
        if self._neg is not None:
            position = self._position_of(cluster_id)
            return position + 1 if position >= 0 else None
        value = self._values.get(cluster_id)
        if value is None:
            return None
        return bisect_left(self._keys, (-value, cluster_id)) + 1

    def as_ranking(self) -> ClusterRanking:
        """Materialize the full, immutable per-height ranking object."""
        if self._neg is not None:
            order = tuple(
                zip(self._cid.tolist(), np.negative(self._neg).tolist())
            )
        else:
            order = tuple((cid, -neg) for neg, cid in self._keys)
        return ClusterRanking(
            order=order,
            rank_of={cid: rank for rank, (cid, _value) in enumerate(order, 1)},
        )

    def copy(self) -> "RankIndex":
        """An independent copy (checkpoint material for time travel)."""
        clone = RankIndex.__new__(RankIndex)
        if self._neg is not None:
            clone._keys = []
            clone._values = {}
            clone._neg = self._neg.copy()
            clone._cid = self._cid.copy()
            return clone
        clone._keys = list(self._keys)
        clone._values = dict(self._values)
        clone._neg = None
        clone._cid = None
        return clone

    @classmethod
    def from_columns(cls, cluster_ids, values) -> "RankIndex":
        """Build wholesale from parallel id/value numpy columns — one
        lexsort, stored as the array backing (the time-travel settle
        path; ids must be unique)."""
        index = cls.__new__(cls)
        vals = np.asarray(values, dtype="<i8")
        cids = np.asarray(cluster_ids, dtype="<i8")
        negs = np.negative(vals)
        order = np.lexsort((cids, negs))
        index._keys = []
        index._values = {}
        index._neg = negs[order]
        index._cid = cids[order]
        return index


@dataclass(frozen=True)
class _OverlayGroup:
    """Base clusters joined only by still-voidable H2 change links."""

    cid: int
    """Canonical id of the combined cluster (min over member minimums)."""

    roots: tuple[int, ...]
    """The base-partition roots the open links connect."""

    size: int
    balance: int
    tx_count: int
    first_seen: int
    last_seen: int


@dataclass(frozen=True, slots=True)
class _HeightRecord:
    """One folded height's entry in the aggregate delta log.

    The time-travel analog of :class:`BalanceView`'s per-height event
    log: everything a replay needs to advance a materialized
    :class:`_HorizonState` from height ``h-1`` to ``h`` without
    re-reading the chain.  Base merges are *not* stored here — ``mark``
    is the base union-find's log position after the height's folds, so
    the merge span is read off the live base's own (append-only) log.
    Columnar churn buffers are the block delta's arrays, retained by
    reference like :class:`~repro.service.views.BalanceView` retains its
    event columns.  Label transitions reference the engine's live label
    objects (identity-shared; replay reads only the immutable
    ``address_id``/``input_id`` fields).
    """

    height: int
    max_id: int
    """Universe bound at this height (ids are dense, so ``max_id + 1``
    is the prefix universe)."""
    mark: int
    """Base merge-log position after this height's unions folded."""
    born_open: tuple
    """Labels born at this height whose §4.2 window is open (overlay
    entries until voided or settled)."""
    closed: tuple
    """Labels voided or settled at this height (they leave the open
    overlay set; a settle's permanent link is inside the merge span)."""
    event_ids: np.ndarray
    event_values: np.ndarray
    involved_flat: np.ndarray


class _HorizonState:
    """The full aggregate state materialized at one historical height.

    A checkpoint (or replay scratch) for time travel: the base
    partition, the five per-root fold arrays, the per-address
    balance/activity arrays (so historical ``cluster_profile`` answers
    carry as-of-height address fields too), the open-label overlay, and
    the three rank indexes.  Advancing to the next height replays one
    :class:`_HeightRecord`; serving always advances a :meth:`clone`, so
    materialized checkpoints are never mutated.
    """

    __slots__ = (
        "height", "mark", "uf",
        "balance", "tx_count", "first", "last", "min_member",
        "a_balance", "a_tx_count", "a_first", "a_last",
        "open", "groups", "group_of", "ranks", "derived_dirty",
    )

    def __init__(self) -> None:
        self.height = -1
        self.mark = 0
        self.uf = IntUnionFind()
        self.balance = IntVector()
        self.tx_count = IntVector()
        self.first = IntVector()
        self.last = IntVector()
        self.min_member = IntVector()
        self.a_balance = IntVector()
        self.a_tx_count = IntVector()
        self.a_first = IntVector()
        self.a_last = IntVector()
        self.open: set = set()
        self.groups: list[_OverlayGroup] = []
        self.group_of: dict[int, _OverlayGroup] = {}
        self.ranks: dict[str, RankIndex] = {
            metric: RankIndex() for metric in TOP_CLUSTER_METRICS
        }
        self.derived_dirty = True
        """True while ``groups``/``group_of``/``ranks`` lag the base
        state — replay advances only the base folds and :meth:`settle`
        rebuilds the derived structures wholesale at serve time."""

    def clone(self) -> "_HorizonState":
        """An independent copy of the *base* state — array memcpys plus
        container copies, never a per-id Python loop.

        The derived structures (overlay groups, rank indexes) are NOT
        copied: every clone exists to be advanced by replay, which
        invalidates them anyway, and the served height rebuilds them
        wholesale via :meth:`settle`.  The clone starts dirty."""
        clone = _HorizonState.__new__(_HorizonState)
        clone.height = self.height
        clone.mark = self.mark
        clone.uf = self.uf.copy()
        clone.balance = self.balance.copy()
        clone.tx_count = self.tx_count.copy()
        clone.first = self.first.copy()
        clone.last = self.last.copy()
        clone.min_member = self.min_member.copy()
        clone.a_balance = self.a_balance.copy()
        clone.a_tx_count = self.a_tx_count.copy()
        clone.a_first = self.a_first.copy()
        clone.a_last = self.a_last.copy()
        clone.open = set(self.open)
        clone.groups = []
        clone.group_of = {}
        clone.ranks = {metric: RankIndex() for metric in TOP_CLUSTER_METRICS}
        clone.derived_dirty = True
        return clone

    def settle(self) -> None:
        """(Re)build the derived structures — overlay groups and rank
        indexes — wholesale from the settled base folds.

        Replay (:meth:`ClusterAggregateView._tt_advance`) maintains only
        the base partition and fold arrays; this pays the whole derived
        epilogue exactly once per *served* height: one vectorized pass
        gathers every component's fold columns, one lexsort per metric
        builds its rank index, and every overlay group re-aggregates its
        few member roots.  That beats maintaining the derived state
        incrementally across N replayed heights by the depth of the
        replay.  Idempotent; a clean state returns immediately."""
        if not self.derived_dirty:
            return
        uf = self.uf
        self.groups = []
        self.group_of = {}
        open_links = [
            live for live in self.open if live.input_id is not None
        ]
        if open_links:
            owners = uf.find_many(
                np.fromiter(
                    (live.address_id for live in open_links),
                    dtype="<i8",
                    count=len(open_links),
                )
            )
            spenders = uf.find_many(
                np.fromiter(
                    (live.input_id for live in open_links),
                    dtype="<i8",
                    count=len(open_links),
                )
            )
            self._settle_overlay(owners, spenders)
        roots = uf.root_ids()
        if self.group_of:
            ungrouped = np.ones(len(uf), dtype=bool)
            ungrouped[
                np.fromiter(
                    self.group_of, dtype="<i8", count=len(self.group_of)
                )
            ] = False
            roots = roots[ungrouped[roots]]
        cids = self.min_member.array[roots]
        sizes = uf.root_sizes.array[roots]
        balances = self.balance.array[roots]
        tx_counts = self.tx_count.array[roots]
        if self.groups:
            groups = self.groups
            cids = np.concatenate(
                (cids, [group.cid for group in groups])
            )
            sizes = np.concatenate(
                (sizes, [group.size for group in groups])
            )
            balances = np.concatenate(
                (balances, [group.balance for group in groups])
            )
            tx_counts = np.concatenate(
                (tx_counts, [group.tx_count for group in groups])
            )
        positive_balance = balances > 0
        active = tx_counts > 0
        self.ranks = {
            "size": RankIndex.from_columns(cids, sizes),
            "balance": RankIndex.from_columns(
                cids[positive_balance], balances[positive_balance]
            ),
            "activity": RankIndex.from_columns(
                cids[active], tx_counts[active]
            ),
        }
        self.derived_dirty = False

    def _settle_overlay(
        self, owners: np.ndarray, spenders: np.ndarray
    ) -> None:
        """Vectorized overlay grouping for :meth:`settle`, matching
        :meth:`ClusterAggregateView._build_overlay`'s aggregation.

        The open-link pair graph is tiny (one edge per open label), so
        components come from a scalar union-find over its roots; every
        per-group quantity — sorted member tuple, fold sums, seen-range
        extremes, canonical id — is then a ``reduceat`` over one
        lexsorted gather instead of a per-root Python read."""
        parent: dict[int, int] = {}
        get = parent.get

        def gfind(item: int) -> int:
            root = item
            while True:
                above = get(root, root)
                if above == root:
                    break
                root = above
            while item != root:
                parent[item], item = root, parent[item]
            return root

        for ra, rb in zip(owners.tolist(), spenders.tolist()):
            if ra == rb:
                continue
            if ra not in parent:
                parent[ra] = ra
            if rb not in parent:
                parent[rb] = rb
            fa = gfind(ra)
            fb = gfind(rb)
            if fa != fb:
                parent[fb] = fa
        if not parent:
            return
        items = np.fromiter(parent, dtype="<i8", count=len(parent))
        labels = np.fromiter(
            (gfind(item) for item in parent), dtype="<i8", count=len(parent)
        )
        order = np.lexsort((items, labels))
        members = items[order]
        grouped = labels[order]
        starts = np.nonzero(
            np.concatenate(([True], grouped[1:] != grouped[:-1]))
        )[0]
        sizes = np.add.reduceat(self.uf.root_sizes.array[members], starts)
        balances = np.add.reduceat(self.balance.array[members], starts)
        tx_counts = np.add.reduceat(self.tx_count.array[members], starts)
        cids = np.minimum.reduceat(self.min_member.array[members], starts)
        lasts = np.maximum.reduceat(self.last.array[members], starts)
        unseen = np.iinfo("<i8").max
        firsts = self.first.array[members].copy()
        firsts[firsts < 0] = unseen
        firsts = np.minimum.reduceat(firsts, starts)
        firsts[firsts == unseen] = -1
        bounds = starts.tolist()
        bounds.append(len(members))
        member_list = members.tolist()
        groups: list[_OverlayGroup] = []
        group_of: dict[int, _OverlayGroup] = {}
        rows = zip(
            cids.tolist(), sizes.tolist(), balances.tolist(),
            tx_counts.tolist(), firsts.tolist(), lasts.tolist(),
        )
        for i, (cid, size, balance, tx_count, first, last) in enumerate(rows):
            roots_key = tuple(member_list[bounds[i]:bounds[i + 1]])
            group = _OverlayGroup(
                cid=cid,
                roots=roots_key,
                size=size,
                balance=balance,
                tx_count=tx_count,
                first_seen=first,
                last_seen=last,
            )
            groups.append(group)
            for root in roots_key:
                group_of[root] = group
        self.groups = groups
        self.group_of = group_of


def _refresh_rank_indexes(
    ranks: dict[str, RankIndex],
    old_cids: set[int],
    new_entries: list[tuple[int, int, int, int]],
) -> None:
    """Rank churn shared by live flushes and time-travel replay (same
    inclusion rule as the batch builders: ``size`` ranks everything,
    ``balance``/``activity`` only positive totals).  Batched per metric
    so a large refresh (a deferred time-travel finalize) takes each
    index's one-sort bulk path instead of per-entry memmoves."""
    new_cids = {entry[0] for entry in new_entries}
    gone = old_cids - new_cids
    size_updates: list[tuple[int, int]] = []
    balance_discards: list[int] = list(gone)
    balance_updates: list[tuple[int, int]] = []
    activity_discards: list[int] = list(gone)
    activity_updates: list[tuple[int, int]] = []
    for cid, size, balance, tx_count in new_entries:
        size_updates.append((cid, size))
        if balance > 0:
            balance_updates.append((cid, balance))
        else:
            balance_discards.append(cid)
        if tx_count > 0:
            activity_updates.append((cid, tx_count))
        else:
            activity_discards.append(cid)
    ranks["size"].apply(gone, size_updates)
    ranks["balance"].apply(balance_discards, balance_updates)
    ranks["activity"].apply(activity_discards, activity_updates)


class HorizonAggregates:
    """Read-only cluster-aggregate surface at one historical height.

    Returned by :meth:`ClusterAggregateView.horizon`; exposes the same
    query methods the live view serves at the tip, plus the per-address
    reads a historical ``cluster_profile`` needs, all against a replayed
    :class:`_HorizonState`.  Instances share materialized states with
    the view's checkpoint spine and memo — strictly read-only.
    """

    __slots__ = ("_state",)

    def __init__(self, state: _HorizonState) -> None:
        self._state = state

    @property
    def height(self) -> int:
        return self._state.height

    def cluster_id_of(self, ident: int | None) -> int | None:
        state = self._state
        if ident is None or not 0 <= ident < len(state.uf):
            return None
        root = state.uf.find(ident)
        group = state.group_of.get(root)
        return group.cid if group is not None else state.min_member[root]

    def cluster_placements_of(
        self, idents
    ) -> list[tuple[int, int] | None]:
        state = self._state
        universe = len(state.uf)
        find = state.uf.find
        overlay_get = state.group_of.get
        min_member = state.min_member
        out: list[tuple[int, int] | None] = []
        append = out.append
        for ident in idents:
            if ident is None or not 0 <= ident < universe:
                append(None)
                continue
            root = find(ident)
            group = overlay_get(root)
            append(
                (root, group.cid if group is not None else min_member[root])
            )
        return out

    def _locate(self, cluster_id: int) -> tuple[int, _OverlayGroup | None]:
        state = self._state
        if not 0 <= cluster_id < len(state.uf):
            raise KeyError(cluster_id)
        root = state.uf.find(cluster_id)
        return root, state.group_of.get(root)

    def size_of_cluster(self, cluster_id: int) -> int:
        root, group = self._locate(cluster_id)
        return (
            group.size if group is not None else self._state.uf.size_of(root)
        )

    def balance_of_cluster(self, cluster_id: int) -> int:
        root, group = self._locate(cluster_id)
        return (
            group.balance if group is not None else self._state.balance[root]
        )

    def activity_of_cluster(self, cluster_id: int) -> ClusterActivity | None:
        root, group = self._locate(cluster_id)
        if group is not None:
            if not group.tx_count:
                return None
            return ClusterActivity(
                tx_count=group.tx_count,
                first_seen=group.first_seen,
                last_seen=group.last_seen,
            )
        state = self._state
        if not state.tx_count[root]:
            return None
        return ClusterActivity(
            tx_count=state.tx_count[root],
            first_seen=state.first[root],
            last_seen=state.last[root],
        )

    def _rank_index(self, by: str) -> RankIndex:
        rank_index = self._state.ranks.get(by)
        if rank_index is None:
            raise ValueError(
                f"ranking metric must be one of {TOP_CLUSTER_METRICS}"
            )
        return rank_index

    def top(self, n: int, by: str) -> tuple[tuple[int, int], ...]:
        return self._rank_index(by).top(n)

    def rank_of(self, by: str, cluster_id: int) -> int | None:
        return self._rank_index(by).rank_of(cluster_id)

    def ranking(self, by: str) -> ClusterRanking:
        return self._rank_index(by).as_ranking()

    @property
    def cluster_count(self) -> int:
        return len(self._state.ranks["size"])

    # -- per-address reads (historical profile fields) -----------------

    def balance_of_id(self, ident: int) -> int:
        state = self._state
        if 0 <= ident < len(state.a_balance):
            return state.a_balance[ident]
        return 0

    def tx_count_of_id(self, ident: int) -> int:
        state = self._state
        if 0 <= ident < len(state.a_tx_count):
            return state.a_tx_count[ident]
        return 0

    def seen_range_of_id(self, ident: int) -> tuple[int, int] | None:
        state = self._state
        if 0 <= ident < len(state.a_first) and state.a_first[ident] >= 0:
            return state.a_first[ident], state.a_last[ident]
        return None


class DirtyRootCursor:
    """One consumer's registration for dirty-root naming churn.

    Mirrors :class:`~repro.core.union_find.MergeCursor`: each consumer
    holds its own cursor, and :meth:`ClusterAggregateView.drain_naming_dirty`
    returns (and clears) only *that cursor's* accumulated set — so the
    query engine's incremental cluster-name aggregate and the invariant
    auditor can both follow naming churn without starving each other.
    Pending roots are distributed into every registered cursor at drain
    time, so an idle consumer's backlog is a deduplicated set of base
    roots (bounded by the universe), never an unbounded log.
    """

    __slots__ = ("dirty",)

    def __init__(self) -> None:
        self.dirty: set[int] = set()


class ClusterAggregateView(MaterializedView):
    """Streaming per-cluster balance/activity/size/ranking maintenance.

    Attach *after* the service's
    :class:`~repro.core.incremental.IncrementalClusteringEngine` (the
    service constructor and snapshot-restore path both do): each block's
    :meth:`_apply_delta` pulls the engine's
    :meth:`~repro.core.incremental.IncrementalClusteringEngine.cluster_delta`
    for the height, so the engine must already have clustered it.

    Internal structure: a *base* partition (own
    :class:`~repro.core.union_find.IntUnionFind`) carrying H1 unions
    plus permanently settled H2 change links, with per-base-root
    aggregate arrays folded on every base merge via the union-find's
    merge-cursor hook; plus an *overlay* of open-window H2 links.  Base
    folds are irreversible (min/max folds have no inverse) — which is
    exactly why voidable links never enter the base: a §4.2 void simply
    drops the link from the next flush's overlay, and the engine's own
    checkpoint/rollback time-travel brackets never leak in (they
    restore the merge log exactly, and this view's base is never rolled
    back — the flush refuses retractions loudly).

    Maintenance is **lazily flushed**: :meth:`_apply_delta` only queues
    the block's shared :class:`~repro.chain.delta.BlockDelta` (O(1) on
    the ingest hot path), and the first query/export at the new tip
    folds every queued block and refreshes overlay + rankings *once*.
    Under interleaved traffic that equals per-block maintenance; under
    bulk ingest (catch-up, snapshot tail replay, block sync) the rank
    and overlay churn for a cluster touched in many queued blocks
    coalesces into a single update.  The deferral is safe because
    everything a flush reads is stable history: the engine's per-height
    merge spans and label churn never change once a height is
    clustered, and the open-label fields the overlay reads
    (``address_id``/``input_id``) are immutable.
    """

    OBSERVER_NAME = "aggregates"

    _TT_INTERVAL = 16
    """Checkpoint spine spacing: replaying to any height crosses at
    most this many records once the spine is warm.  Spacing trades
    checkpoint memory for replay depth; with the overlay/rank epilogue
    deferred to serve time, short replays are cheap enough that a dense
    spine pays for itself immediately under scrubbing workloads."""

    _TT_MEMO_SIZE = 4
    """Exact-height LRU depth (mirrors the engine's as-of memo)."""

    def __init__(
        self,
        index: ChainIndex,
        *,
        engine: IncrementalClusteringEngine,
        follow: bool = True,
        use_kernels: bool = True,
        time_travel: bool = True,
        metrics=None,
    ) -> None:
        self.engine = engine
        self._use_kernels = use_kernels
        """Kernelized churn: per-address balance/incidence folding is
        batched per *flush* through :meth:`_fold_churn` (numpy group-by
        over every queued block's columnar buffers) instead of one
        Python dict pass per block.  ``use_kernels=False`` keeps the
        scalar per-block reference fold."""
        self._uf = IntUnionFind()
        """Base partition: H1 merges + settled change links."""
        self._cursor = self._uf.merge_cursor()
        """Fold hook: every base merge is drained into aggregate folds."""
        self._balance = IntVector()
        """Per base root: summed member balance (junk at non-roots)."""
        self._tx_count = IntVector()
        self._first = IntVector()
        self._last = IntVector()
        self._min_member = IntVector()
        """Per base root: minimum member id — the canonical cluster id."""
        self._open: set = set()
        """Open-window (still voidable) live labels, maintained from the
        engine's per-block born/voided/settled deltas."""
        self._overlay_groups: list[_OverlayGroup] = []
        self._overlay_of: dict[int, _OverlayGroup] = {}
        """base root -> the overlay group currently absorbing it."""
        self._ranks: dict[str, RankIndex] = {
            metric: RankIndex() for metric in TOP_CLUSTER_METRICS
        }
        self._pending: list[BlockDelta] = []
        """Blocks observed but not yet folded (drained by :meth:`_flush`
        on the first query or export at the new tip)."""
        self._naming_dirty: set[int] = set()
        """Base roots whose *canonical id mapping* may have changed
        since the last :meth:`drain_naming_dirty` — fold endpoints and
        structurally changed overlay groups, never plain churn (balance
        or activity updates cannot move a cluster's id).  This is the
        *pending* set: drains distribute it into every registered
        :class:`DirtyRootCursor` before returning the caller's own."""
        self._naming_cursors: list[DirtyRootCursor] = []
        self._default_naming_cursor: DirtyRootCursor | None = None
        """Backs cursor-less :meth:`drain_naming_dirty` calls (the
        pre-cursor single-consumer API), lazily registered."""
        self.naming_epoch = 0
        """Bumped once per drain that observed structural dirty roots:
        name-bearing query answers depend on the canonical-id mapping as
        well as the height, so caches key on ``(height, naming_epoch)``
        for those kinds (see :meth:`QueryEngine._cache_key
        <repro.service.queries.QueryEngine._cache_key>`)."""
        self._tt_enabled = time_travel
        self._tt_records: dict[int, _HeightRecord] = {}
        """The per-height aggregate delta log, keyed by height."""
        self._tt_base: _HorizonState | None = (
            _HorizonState() if time_travel else None
        )
        """Oldest materialized state (genesis for a fresh view; the
        restore height after a v2/v3 snapshot seeds it).  ``None`` means
        time travel cannot serve yet."""
        self._tt_spine: dict[int, _HorizonState] = {}
        """Sparse checkpoints at :attr:`_TT_INTERVAL` multiples,
        materialized lazily as replays first cross them."""
        self._tt_memo: OrderedDict[int, _HorizonState] = OrderedDict()
        """Exact-height LRU of recently served horizon states."""
        super().__init__(index, follow=follow, metrics=metrics)

    # ------------------------------------------------------------------
    # streaming maintenance
    # ------------------------------------------------------------------

    def _apply_delta(self, delta: BlockDelta) -> None:
        engine = self.engine
        if engine.height < delta.height:
            raise ValueError(
                f"engine is at height {engine.height} but block "
                f"{delta.height} arrived; attach ClusterAggregateView "
                f"after a following engine (a detached engine, a refused "
                f"non-monotonic block, or view-before-engine "
                f"subscription order all leave the merge deltas missing)"
            )
        self._pending.append(delta)

    def _flush(self) -> None:
        """Fold every queued block, then refresh overlay and rankings.

        The fold itself runs per queued block, in order (first/last-seen
        and stale-id reads are height-sensitive); the overlay rebuild
        and the rank churn run once at the end over the union of every
        queued block's touched ids — the coalescing that makes bulk
        ingest cheap.
        """
        pending = self._pending
        if not pending:
            return
        self._pending = []
        metrics = self.metrics
        timed = metrics.enabled
        if timed:
            flush_start = perf_counter()
            metrics.histogram(
                "aggregates.queued_blocks", buckets=COUNT_BUCKETS
            ).observe(len(pending))
            metrics.counter("aggregates.churn_rows").inc(
                sum(
                    len(delta.event_ids) + len(delta.involved_flat)
                    for delta in pending
                )
            )
        uf = self._uf
        find = uf.find
        min_member = self._min_member
        prev_groups = self._overlay_groups
        prev_of = self._overlay_of

        stale_cids: set[int] = set()
        touched: set[int] = set()
        deferred: list[
            tuple[int, np.ndarray, np.ndarray, np.ndarray]
        ] | None = ([] if self._use_kernels else None)
        for delta in pending:
            self._fold_block(delta, stale_cids, touched, deferred)
        if deferred:
            # Kernel mode deferred every block's per-address churn; fold
            # it now, after the per-block merge folds (so every id lands
            # at its post-merge root) and before the overlay rebuild
            # (which reads the base arrays).
            self._fold_churn(deferred, touched)

        # Overlay rebuild from the now-current open links, resolving
        # each endpoint's post-fold base root exactly once.  A root
        # *newly* absorbed by a group loses its standalone rank entry;
        # roots grouped before the flush never had one.  Groups whose
        # topology and member aggregates are untouched are reused
        # verbatim — their rank entries are already correct, so they
        # contribute neither stale ids nor new entries.
        open_links = [
            live for live in self._open if live.input_id is not None
        ]
        # Resolve the flush's touched ids to post-fold roots in one
        # batch gather — at bulk-ingest flushes this set spans every
        # address the queued blocks touched.
        touched_roots = (
            set(
                uf.find_many(
                    np.fromiter(touched, dtype="<i8", count=len(touched))
                ).tolist()
            )
            if touched
            else set()
        )
        pairs: list[tuple[int, int]] = []
        for live in open_links:
            ra = find(live.address_id)
            rb = find(live.input_id)
            pairs.append((ra, rb))
            if ra not in prev_of:
                stale_cids.add(min_member[ra])
                touched_roots.add(ra)
            if rb not in prev_of:
                stale_cids.add(min_member[rb])
                touched_roots.add(rb)
        self._build_overlay(pairs, touched_roots)

        # Pre-flush groups that did not survive verbatim dissolve: their
        # ids may vanish and their member roots may stand alone again.
        # A group replaced by a rebuilt one was handled structurally in
        # :meth:`_build_overlay`; one that vanished outright reverts its
        # members' canonical ids to standalone, so they re-resolve.
        reused = {id(group) for group in self._overlay_groups}
        overlay_of = self._overlay_of
        naming_dirty = self._naming_dirty
        for group in prev_groups:
            if id(group) not in reused:
                stale_cids.add(group.cid)
                for root in group.roots:
                    touched_roots.add(find(root))
                    if overlay_of.get(root) is None:
                        # Reverted to standalone (or folded away): its
                        # canonical id left the group.  Members landing
                        # in a rebuilt group were marked structurally in
                        # _build_overlay; this per-root check catches
                        # the ones no new group absorbed.
                        naming_dirty.add(root)

        # Rank churn, once per touched cluster: stale ids out, live
        # entries in.  Plain churn never changes a cluster's id — those
        # entries are overwritten in place, not discarded — so the
        # stale set stays O(merges + links + changed groups), not
        # O(churn + open labels).
        grouped = self._overlay_of
        sizes = uf.root_sizes
        balance = self._balance
        tx_count = self._tx_count
        prev_ids = {id(group) for group in prev_groups}
        new_entries: list[tuple[int, int, int, int]] = []
        for root in touched_roots:
            if root in grouped:
                continue
            new_entries.append(
                (min_member[root], sizes[root], balance[root],
                 tx_count[root])
            )
        for group in self._overlay_groups:
            if id(group) in prev_ids:
                continue  # reused verbatim: entries already live
            new_entries.append(
                (group.cid, group.size, group.balance, group.tx_count)
            )
        self._refresh_ranks(stale_cids, new_entries)
        if timed:
            seconds = perf_counter() - flush_start
            metrics.histogram("aggregates.flush_seconds").observe(seconds)
            metrics.flight.record(
                "flush",
                height=self._height,
                blocks=len(pending),
                seconds=seconds,
            )
        log = self.index.log
        if log.enabled:
            log.debug(
                "aggregate_flush",
                height=self._height,
                blocks=len(pending),
            )

    def _fold_block(
        self,
        delta: BlockDelta,
        stale_cids: set[int],
        touched: set[int],
        deferred: list | None = None,
    ) -> None:
        """Fold one queued block into the base partition and arrays.

        ``stale_cids`` collects canonical ids that may disappear
        (resolved *before* the block's unions fold them away);
        ``touched`` collects address ids whose post-fold clusters need
        their rank entries refreshed.  When ``deferred`` is given
        (kernel mode) the per-address balance/incidence fold is
        deferred: the block's columnar buffers are queued for one
        batched :meth:`_fold_churn` pass at the end of the flush.
        """
        height = delta.height
        churn = self.engine.cluster_delta(height)
        uf = self._uf
        find = uf.find
        min_member = self._min_member

        # 1. Universe growth, once per block off the delta's max id.
        grown_from = len(uf)
        max_id = delta.max_id
        if max_id >= grown_from:
            uf.ensure(max_id + 1)
            n = max_id + 1
            self._balance.grow_to(n)
            self._tx_count.grow_to(n)
            self._first.grow_to(n, fill=-1)
            self._last.grow_to(n, fill=-1)
            min_member.grow_to(n)
            min_member.array[grown_from:] = np.arange(
                grown_from, n, dtype="<i8"
            )

        # 2. Open-label bookkeeping off the engine's delta: watched
        #    births join the overlay set, voids and settles leave it.
        open_set = self._open
        for live in churn.born:
            if live.deadline is not None:
                open_set.add(live)
        for live in churn.voided:
            open_set.discard(live)
        for live in churn.settled:
            open_set.discard(live)
        settle_links = [
            live for live in churn.settled if live.input_id is not None
        ]

        # 3. Canonical ids the block's unions can fold away, resolved
        #    before any mutation.
        for absorbed, kept in churn.merges:
            stale_cids.add(min_member[find(absorbed)])
            stale_cids.add(min_member[find(kept)])
            touched.add(absorbed)
            touched.add(kept)
        for live in settle_links:
            stale_cids.add(min_member[find(live.address_id)])
            stale_cids.add(min_member[find(live.input_id)])
            touched.add(live.address_id)
            touched.add(live.input_id)

        # 4. Fold the block's merges into the base: H1 unions (replayed
        #    off the engine's merge log) plus change links that settled
        #    this block.  The merge cursor turns every *effective* base
        #    merge into one aggregate fold, smaller into larger.
        for absorbed, kept in churn.merges:
            uf.union(absorbed, kept)
        for live in settle_links:
            uf.union(live.address_id, live.input_id)
        retracted, folds = uf.drain_merges(self._cursor)
        if retracted:
            raise RuntimeError(
                "cluster aggregate base was rolled back; folded "
                "aggregates cannot be retracted"
            )
        balance = self._balance
        tx_count = self._tx_count
        first = self._first
        last = self._last
        naming_dirty = self._naming_dirty
        for absorbed, kept in folds:
            naming_dirty.add(absorbed)
            naming_dirty.add(kept)
            balance[kept] += balance[absorbed]
            tx_count[kept] += tx_count[absorbed]
            first_absorbed = first[absorbed]
            if first_absorbed >= 0 and (
                first[kept] < 0 or first_absorbed < first[kept]
            ):
                first[kept] = first_absorbed
            if last[absorbed] > last[kept]:
                last[kept] = last[absorbed]
            if min_member[absorbed] < min_member[kept]:
                min_member[kept] = min_member[absorbed]

        # Delta-log capture: everything a horizon replay needs to cross
        # this height.  The mark is taken *after* the block's unions, so
        # ``(previous mark, mark]`` on the (append-only) base log is
        # exactly this block's effective merges; the columnar churn
        # buffers are retained by reference, BalanceView-style.
        if self._tt_enabled:
            self._tt_records[height] = _HeightRecord(
                height=height,
                max_id=delta.max_id,
                mark=uf.checkpoint(),
                born_open=tuple(
                    live for live in churn.born if live.deadline is not None
                ),
                closed=tuple(churn.voided) + tuple(churn.settled),
                event_ids=delta.event_ids,
                event_values=delta.event_values,
                involved_flat=delta.involved_flat,
            )

        # 5. Per-address churn folded at the post-merge roots: balance
        #    deltas off the delta's flat event log, incidences off the
        #    pre-deduplicated per-tx involved lists — one find per
        #    touched id (every balance-event id also has an incidence,
        #    so the single pass covers both dicts).  Kernel mode defers
        #    this to one batched pass per flush: balance is a pure sum,
        #    first/last are min/max folds, and all three commute with
        #    the merge folds above, so applying the whole flush's churn
        #    at the final post-merge roots is equivalent.
        if deferred is not None:
            deferred.append(
                (height, delta.event_ids, delta.event_values,
                 delta.involved_flat)
            )
            return
        self._fold_block_churn(delta, touched)

    def _fold_block_churn(self, delta: BlockDelta, touched: set[int]) -> None:
        """Scalar per-block churn fold: the per-element reference path
        that :meth:`_fold_churn` batches per flush in kernel mode (and
        the stage the scale benchmark times against it)."""
        height = delta.height
        find = self._uf.find
        balance = self._balance
        tx_count = self._tx_count
        first = self._first
        last = self._last
        balance_deltas: dict[int, int] = {}
        for ident, change in delta.events:
            balance_deltas[ident] = balance_deltas.get(ident, 0) + change
        involvement: dict[int, int] = {}
        for txd in delta.txs:
            for ident in txd.involved:
                involvement[ident] = involvement.get(ident, 0) + 1
        for ident, hits in involvement.items():
            root = find(ident)
            tx_count[root] += hits
            if first[root] < 0:
                first[root] = height
            last[root] = height
            change = balance_deltas.get(ident)
            if change:
                balance[root] += change
        touched.update(involvement)

    def _fold_churn(
        self,
        churn: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]],
        touched: set[int],
    ) -> None:
        """Batched per-address churn fold over one flush's queued blocks.

        Pure numpy: the whole flush's event and involvement columns are
        resolved to their post-merge roots in two
        :meth:`~repro.core.union_find.IntUnionFind.find_many` batch
        gathers, then scattered straight into the fold arrays' backing
        stores — ``np.add.at`` for balance sums and incidence counts,
        ``np.minimum.at`` / ``np.maximum.at`` for first/last-seen.  No
        per-id Python loop survives.

        Equivalence with the scalar per-block fold: balance is a sum
        decomposition (merge folds preserve sums), tx_count likewise,
        and first/last are min/max folds — the scalar "set first if
        unseen" relies on heights arriving in increasing order, which
        the min scatter reproduces without the ordering assumption (the
        ``-1`` never-seen sentinel is swapped for +inf at the touched
        roots first, and every touched root receives at least one real
        height, so no sentinel survives).  Applying churn after this
        flush's merge folds puts each contribution at its final root,
        where sums/mins/maxes land identically.  ``touched`` collects
        the resolved roots rather than the member ids — equivalent
        downstream, which only reads ``touched`` through ``find``.
        """
        inv_ids = np.concatenate([block[3] for block in churn])
        if not len(inv_ids):
            return
        inv_heights = np.concatenate(
            [
                np.full(len(block[3]), block[0], dtype=np.int64)
                for block in churn
            ]
        )
        event_ids = np.concatenate([block[1] for block in churn])
        event_values = np.concatenate([block[2] for block in churn])
        uf = self._uf
        if len(event_ids):
            np.add.at(
                self._balance.array, uf.find_many(event_ids), event_values
            )
        inv_roots = uf.find_many(inv_ids)
        np.add.at(self._tx_count.array, inv_roots, 1)
        uniq_roots = np.unique(inv_roots)
        first = self._first.array
        unseen = first[uniq_roots]
        unseen[unseen < 0] = np.iinfo(np.int64).max
        first[uniq_roots] = unseen
        np.minimum.at(first, inv_roots, inv_heights)
        np.maximum.at(self._last.array, inv_roots, inv_heights)
        touched.update(uniq_roots.tolist())

    def _build_overlay(
        self,
        root_pairs: list[tuple[int, int]],
        touched_roots: set[int],
    ) -> None:
        """Group base roots connected by open (voidable) change links.

        ``root_pairs`` holds each open link's endpoints already resolved
        to base roots (the caller needs those roots anyway); grouping
        runs on a small inline dict-backed union-find, and per-group
        aggregation reads the base arrays directly.  A component whose
        root set matches a pre-flush group exactly and touches no root
        in ``touched_roots`` reuses that group object verbatim — the
        flush detects reuse by identity and skips its rank churn.
        """
        prev_of = self._overlay_of
        parent: dict[int, int] = {}
        get = parent.get

        def gfind(item: int) -> int:
            root = item
            while True:
                above = get(root, root)
                if above == root:
                    break
                root = above
            while item != root:
                parent[item], item = root, parent[item]
            return root

        for ra, rb in root_pairs:
            if ra == rb:
                continue
            if ra not in parent:
                parent[ra] = ra
            if rb not in parent:
                parent[rb] = rb
            fa = gfind(ra)
            fb = gfind(rb)
            if fa != fb:
                parent[fb] = fa
        members: dict[int, list[int]] = {}
        for item in parent:
            members.setdefault(gfind(item), []).append(item)
        groups: list[_OverlayGroup] = []
        reuse_hits = 0
        sizes = self._uf.root_sizes
        balances = self._balance
        tx_counts = self._tx_count
        firsts = self._first
        lasts = self._last
        min_member = self._min_member
        for roots in members.values():
            # Every tracked root was unioned with a distinct partner, so
            # components here always span at least two base clusters.
            roots_key = tuple(sorted(roots))
            prev = prev_of.get(roots_key[0])
            if (
                prev is not None
                and prev.roots == roots_key
                and touched_roots.isdisjoint(roots_key)
            ):
                # Same topology, no member churn or fold: every
                # aggregate (and the cid) is provably unchanged.
                groups.append(prev)
                reuse_hits += 1
                continue
            size = balance = tx_count = 0
            first = last = -1
            cid = None
            for root in roots_key:
                size += sizes[root]
                balance += balances[root]
                tx_count += tx_counts[root]
                root_first = firsts[root]
                if root_first >= 0 and (first < 0 or root_first < first):
                    first = root_first
                if lasts[root] > last:
                    last = lasts[root]
                root_min = min_member[root]
                if cid is None or root_min < cid:
                    cid = root_min
            if prev is None or prev.cid != cid or prev.roots != roots_key:
                # Structural change: member roots' canonical-id mapping
                # shifted (an aggregates-only rebuild keeps every id).
                self._naming_dirty.update(roots_key)
                if prev is not None:
                    self._naming_dirty.update(prev.roots)
            groups.append(
                _OverlayGroup(
                    cid=cid,
                    roots=roots_key,
                    size=size,
                    balance=balance,
                    tx_count=tx_count,
                    first_seen=first,
                    last_seen=last,
                )
            )
        if reuse_hits and self.metrics.enabled:
            self.metrics.counter("aggregates.overlay_reuse_hits").inc(
                reuse_hits
            )
        self._overlay_groups = groups
        self._overlay_of = {
            root: group for group in groups for root in group.roots
        }

    def _refresh_ranks(
        self,
        old_cids: set[int],
        new_entries: list[tuple[int, int, int, int]],
    ) -> None:
        """Apply one flush's ranking churn: stale ids out, live ids in.

        Inclusion mirrors the batch ``_agg`` builders exactly: ``size``
        ranks every cluster in the universe; ``balance`` and
        ``activity`` rank only clusters with a positive total (balances
        are non-negative, so this equals the batch pass that skips
        zero-balance member addresses).
        """
        ranks = self._ranks
        new_cids = {entry[0] for entry in new_entries}
        for cid in old_cids - new_cids:
            for rank_index in ranks.values():
                rank_index.discard(cid)
        size_index = ranks["size"]
        balance_index = ranks["balance"]
        activity_index = ranks["activity"]
        for cid, size, balance, tx_count in new_entries:
            size_index.set(cid, size)
            if balance > 0:
                balance_index.set(cid, balance)
            else:
                balance_index.discard(cid)
            if tx_count > 0:
                activity_index.set(cid, tx_count)
            else:
                activity_index.discard(cid)

    # ------------------------------------------------------------------
    # queries (all at the view's height; each flushes queued blocks)
    # ------------------------------------------------------------------

    def cluster_id_of(self, ident: int | None) -> int | None:
        """Canonical cluster id for an address id, or ``None`` if the id
        is outside the view's universe."""
        self._flush()
        if ident is None or not 0 <= ident < len(self._uf):
            return None
        root = self._uf.find(ident)
        group = self._overlay_of.get(root)
        return group.cid if group is not None else self._min_member[root]

    def cluster_placements_of(
        self, idents
    ) -> list[tuple[int, int] | None]:
        """Bulk :meth:`cluster_id_of` returning ``(base root, canonical
        id)`` per input id (``None`` for ids outside the universe).

        One flush, locals bound once: the cluster-name aggregate
        resolves batches of tagged addresses through this instead of one
        method call (plus flush check) per id, and keeps the returned
        root to know when a cached resolution goes stale (see
        :meth:`drain_naming_dirty`).
        """
        self._flush()
        uf = self._uf
        universe = len(uf)
        find = uf.find
        overlay_get = self._overlay_of.get
        min_member = self._min_member
        out: list[tuple[int, int] | None] = []
        append = out.append
        for ident in idents:
            if ident is None or not 0 <= ident < universe:
                append(None)
                continue
            root = find(ident)
            group = overlay_get(root)
            append(
                (root, group.cid if group is not None else min_member[root])
            )
        return out

    def naming_cursor(self) -> DirtyRootCursor:
        """Register a dirty-root consumer (see :class:`DirtyRootCursor`).

        The cursor sees only roots marked dirty *after* registration —
        a new consumer does a full build first (ids resolved through
        :meth:`cluster_placements_of` carry their base root for exactly
        this), then follows churn through :meth:`drain_naming_dirty`.
        Cursors are not durable state: a restored view starts with none
        registered, and consumers re-register against the view they
        actually follow.
        """
        cursor = DirtyRootCursor()
        self._naming_cursors.append(cursor)
        return cursor

    def release_naming_cursor(self, cursor: DirtyRootCursor) -> None:
        """Deregister a cursor (its backlog stops accumulating)."""
        try:
            self._naming_cursors.remove(cursor)
        except ValueError:
            pass
        if cursor is self._default_naming_cursor:
            self._default_naming_cursor = None

    def drain_naming_dirty(
        self, cursor: DirtyRootCursor | None = None
    ) -> set[int]:
        """Return (and clear) the base roots whose canonical-id mapping
        may have changed since ``cursor`` last drained.

        Every registered cursor observes every dirty root exactly once:
        the pending set is distributed into each cursor's own set here,
        then the caller's set is handed over and replaced.  Calling
        without a cursor uses a lazily registered default — the old
        single-consumer API, still what a lone consumer needs.  An id
        resolved through :meth:`cluster_placements_of` stays valid until
        a drain reports its root — fold endpoints and structural overlay
        changes are reported, plain churn (which cannot move a cluster's
        id) is not.
        """
        self._flush()
        if cursor is None:
            cursor = self._default_naming_cursor
            if cursor is None:
                cursor = self._default_naming_cursor = self.naming_cursor()
        pending = self._naming_dirty
        if pending:
            self.naming_epoch += 1
            for registered in self._naming_cursors:
                registered.dirty |= pending
            self._naming_dirty = set()
        dirty = cursor.dirty
        if not dirty:
            return dirty
        cursor.dirty = set()
        return dirty

    @property
    def pending_blocks(self) -> int:
        """Blocks queued but not yet folded (the flush-queue depth the
        health model reports)."""
        return len(self._pending)

    def _locate(self, cluster_id: int) -> tuple[int, _OverlayGroup | None]:
        """Resolve a canonical id to its base root / overlay group."""
        self._flush()
        if not 0 <= cluster_id < len(self._uf):
            raise KeyError(cluster_id)
        root = self._uf.find(cluster_id)
        return root, self._overlay_of.get(root)

    def size_of_cluster(self, cluster_id: int) -> int:
        root, group = self._locate(cluster_id)
        return group.size if group is not None else self._uf.size_of(root)

    def balance_of_cluster(self, cluster_id: int) -> int:
        root, group = self._locate(cluster_id)
        return group.balance if group is not None else self._balance[root]

    def activity_of_cluster(self, cluster_id: int) -> ClusterActivity | None:
        """Aggregate activity, or ``None`` for a never-active cluster
        (matching the batch rollup, which skips zero-count clusters)."""
        root, group = self._locate(cluster_id)
        if group is not None:
            if not group.tx_count:
                return None
            return ClusterActivity(
                tx_count=group.tx_count,
                first_seen=group.first_seen,
                last_seen=group.last_seen,
            )
        if not self._tx_count[root]:
            return None
        return ClusterActivity(
            tx_count=self._tx_count[root],
            first_seen=self._first[root],
            last_seen=self._last[root],
        )

    def _rank_index(self, by: str) -> RankIndex:
        self._flush()
        rank_index = self._ranks.get(by)
        if rank_index is None:
            raise ValueError(
                f"ranking metric must be one of {TOP_CLUSTER_METRICS}"
            )
        return rank_index

    def top(self, n: int, by: str) -> tuple[tuple[int, int], ...]:
        """The best ``n`` clusters by one metric: ``(id, value)`` pairs."""
        return self._rank_index(by).top(n)

    def rank_of(self, by: str, cluster_id: int) -> int | None:
        """1-based standing of one cluster under one metric."""
        return self._rank_index(by).rank_of(cluster_id)

    def ranking(self, by: str) -> ClusterRanking:
        """Materialize one metric's full per-height ranking object."""
        return self._rank_index(by).as_ranking()

    @property
    def cluster_count(self) -> int:
        """Clusters at the tip (the size ranking covers every cluster)."""
        self._flush()
        return len(self._ranks["size"])

    # ------------------------------------------------------------------
    # time travel (historical horizons)
    # ------------------------------------------------------------------

    def covers(self, height: int) -> bool:
        """True when :meth:`horizon` can serve ``height`` by replay —
        the height is inside the delta log's materialized span."""
        self._flush()
        return (
            self._tt_enabled
            and self._tt_base is not None
            and self._tt_base.height <= height <= self._height
        )

    def horizon(self, height: int) -> HorizonAggregates | None:
        """The aggregate surface at a historical ``height``, or ``None``
        when the delta log does not cover it (time travel disabled, or a
        v2/v3 restore whose pre-restore history was never logged).

        Replays forward from the nearest materialized state — the base,
        a spine checkpoint, or a memoized exact height — applying one
        :class:`_HeightRecord` per height crossed.  Spine checkpoints at
        :attr:`_TT_INTERVAL` multiples are materialized the first time a
        replay crosses them, so a warm view bounds any replay to one
        interval of records instead of the whole log.
        """
        self._flush()
        if not (
            self._tt_enabled
            and self._tt_base is not None
            and self._tt_base.height <= height <= self._height
        ):
            return None
        metrics = self.metrics
        timed = metrics.enabled
        memo = self._tt_memo
        state = memo.get(height)
        if state is not None:
            memo.move_to_end(height)
            if timed:
                metrics.counter("timetravel.memo_hits").inc()
            return HorizonAggregates(state)
        if timed:
            start = perf_counter()
        best = self._tt_base
        for spine_height, checkpoint in self._tt_spine.items():
            if best.height < spine_height <= height:
                best = checkpoint
        for memo_height in memo:
            if best.height < memo_height <= height:
                best = memo[memo_height]
        depth = height - best.height
        if timed and depth < height - self._tt_base.height:
            metrics.counter("timetravel.checkpoint_hits").inc()
        if best.height == height:
            state = best
        else:
            state = best.clone()
            spine = self._tt_spine
            records = self._tt_records
            interval = self._TT_INTERVAL
            while state.height < height:
                self._tt_advance(state, records[state.height + 1])
                crossed = state.height
                if (
                    crossed < height
                    and crossed % interval == 0
                    and crossed not in spine
                ):
                    spine[crossed] = state.clone()
                    if timed:
                        metrics.counter(
                            "timetravel.checkpoints_materialized"
                        ).inc()
            memo[height] = state
            while len(memo) > self._TT_MEMO_SIZE:
                memo.popitem(last=False)
        # Settle the deferred overlay/rank rebuild at the served height
        # only — spine checkpoints stay lazy until directly served.
        state.settle()
        if timed:
            seconds = perf_counter() - start
            metrics.histogram(
                "timetravel.replay_heights", buckets=COUNT_BUCKETS
            ).observe(depth)
            metrics.histogram("timetravel.replay_seconds").observe(seconds)
            metrics.flight.record(
                "timetravel",
                height=height,
                tip=self._height,
                depth=depth,
                seconds=seconds,
            )
        return HorizonAggregates(state)

    def _tt_advance(self, state: _HorizonState, record: _HeightRecord) -> None:
        """Advance one materialized state across one height record.

        Mirrors the live flush's fold order — universe growth,
        open-label transitions, merge folds, per-address churn — so a
        replayed state at ``h`` is value-identical to the live view had
        ingestion stopped at ``h``.  Merge folds read the live base's
        log span ``(state.mark, record.mark]``: each entry's endpoints
        are the exact roots at its application point, so stale canonical
        ids read straight off ``min_member`` with no finds, and the span
        replays onto the state's own union-find in O(1) per entry.

        The flush epilogue (overlay rebuild + rank churn) is *deferred*:
        only the served height's derived state is ever read, so replay
        advances just the base folds and :meth:`_HorizonState.settle`
        rebuilds the derived structures wholesale once per horizon
        instead of once per height crossed.
        """
        height = record.height
        uf = state.uf

        # 1. Universe growth.
        grown_from = len(uf)
        if record.max_id >= grown_from:
            n = record.max_id + 1
            uf.ensure(n)
            state.balance.grow_to(n)
            state.tx_count.grow_to(n)
            state.first.grow_to(n, fill=-1)
            state.last.grow_to(n, fill=-1)
            state.min_member.grow_to(n)
            state.min_member.array[grown_from:] = np.arange(
                grown_from, n, dtype="<i8"
            )
            state.a_balance.grow_to(n)
            state.a_tx_count.grow_to(n)
            state.a_first.grow_to(n, fill=-1)
            state.a_last.grow_to(n, fill=-1)

        # 2. Open-label transitions.
        open_set = state.open
        for live in record.born_open:
            open_set.add(live)
        for live in record.closed:
            open_set.discard(live)

        # 3. Merge folds off the base log span, sequentially: an entry's
        #    ``kept`` may be absorbed by a later entry, so min_member
        #    reads interleave with the folds exactly as the recorded
        #    unions did.
        span = self._uf.log_span(state.mark, record.mark)
        min_member = state.min_member
        balance = state.balance
        tx_count = state.tx_count
        first = state.first
        last = state.last
        for absorbed, kept in span:
            balance[kept] += balance[absorbed]
            tx_count[kept] += tx_count[absorbed]
            first_absorbed = first[absorbed]
            if first_absorbed >= 0 and (
                first[kept] < 0 or first_absorbed < first[kept]
            ):
                first[kept] = first_absorbed
            if last[absorbed] > last[kept]:
                last[kept] = last[absorbed]
            if min_member[absorbed] < min_member[kept]:
                min_member[kept] = min_member[absorbed]
        uf.replay(span)
        state.mark = record.mark

        # 4. Per-address churn at this height — the same kernel folds
        #    the live views run, scattered into both the per-address
        #    arrays and the per-root fold arrays at post-span roots.
        find_many = uf.find_many
        involved = record.involved_flat
        if len(involved):
            np.add.at(state.a_tx_count.array, involved, 1)
            a_first = state.a_first.array
            a_first[involved[a_first[involved] < 0]] = height
            state.a_last.array[involved] = height
            inv_roots = find_many(involved)
            np.add.at(tx_count.array, inv_roots, 1)
            uniq_roots = np.unique(inv_roots)
            first_arr = first.array
            # Heights replay in order, so a seen first is already the
            # minimum; only the -1 sentinel takes this height.
            first_arr[uniq_roots[first_arr[uniq_roots] < 0]] = height
            last.array[uniq_roots] = height
        if len(record.event_ids):
            np.add.at(
                state.a_balance.array, record.event_ids, record.event_values
            )
            np.add.at(
                balance.array,
                find_many(record.event_ids),
                record.event_values,
            )
        state.derived_dirty = True
        state.height = height

    def seed_time_travel_base(self, balances, activity) -> None:
        """Anchor the delta log at the view's *current* height from the
        restored sibling views.

        v2/v3 snapshots carry no time-travel segment: history below the
        restore height is unrecoverable, but seeding a base checkpoint
        here means every height from the restore point forward is logged
        and served.  ``balances`` / ``activity`` are the service's
        restored :class:`~repro.service.views.BalanceView` /
        :class:`~repro.service.views.ActivityView` at the same height.
        """
        if not self._tt_enabled:
            return
        self._flush()
        base = _HorizonState()
        base.height = self._height
        base.mark = self._uf.checkpoint()
        base.uf = self._uf.copy()
        base.balance = self._balance.copy()
        base.tx_count = self._tx_count.copy()
        base.first = self._first.copy()
        base.last = self._last.copy()
        base.min_member = self._min_member.copy()
        n = len(base.uf)
        # Sibling views grow off the same per-block max_id, so their
        # arrays already span the universe; grow_to is belt-and-braces
        # for an empty chain.
        base.a_balance = balances._balances.copy()
        base.a_balance.grow_to(n)
        base.a_tx_count = activity._tx_counts.copy()
        base.a_tx_count.grow_to(n)
        base.a_first = activity._first_seen.copy()
        base.a_first.grow_to(n, fill=-1)
        base.a_last = activity._last_seen.copy()
        base.a_last.grow_to(n, fill=-1)
        base.open = set(self._open)
        base.settle()
        self._tt_base = base
        self._tt_records = {}
        self._tt_spine = {}
        self._tt_memo = OrderedDict()

    def export_time_travel(self) -> dict | None:
        """The delta log + base checkpoint as plain data (the optional
        ``timetravel`` snapshot segment), or ``None`` when disabled.

        Label references serialize as indices into the engine's
        birth-ordered label list (the same convention the engine's own
        export uses), so a restore re-binds them to the restored
        engine's live label objects.  The spine and memo are replay
        caches, rebuilt on demand — never exported.
        """
        if not self._tt_enabled or self._tt_base is None:
            return None
        self._flush()
        label_index = {
            id(live): position
            for position, live in enumerate(self.engine._labels)
        }
        base = self._tt_base
        return {
            "version": 1,
            "height": self._height,
            "base": {
                "height": base.height,
                "mark": base.mark,
                "uf": base.uf.export_state(),
                "balance": base.balance.tobytes(),
                "tx_count": base.tx_count.tobytes(),
                "first_seen": base.first.tobytes(),
                "last_seen": base.last.tobytes(),
                "min_member": base.min_member.tobytes(),
                "a_balance": base.a_balance.tobytes(),
                "a_tx_count": base.a_tx_count.tobytes(),
                "a_first": base.a_first.tobytes(),
                "a_last": base.a_last.tobytes(),
                "open": [label_index[id(live)] for live in base.open],
            },
            "records": [
                (
                    record.height,
                    record.max_id,
                    record.mark,
                    [label_index[id(live)] for live in record.born_open],
                    [label_index[id(live)] for live in record.closed],
                    record.event_ids.tobytes(),
                    record.event_values.tobytes(),
                    record.involved_flat.tobytes(),
                )
                for record in sorted(
                    self._tt_records.values(), key=lambda r: r.height
                )
            ],
        }

    def load_time_travel(self, state: dict) -> None:
        """Restore :meth:`export_time_travel` output onto this view.

        The engine must already be restored: label references are
        indices into its birth-ordered label list, re-bound here to the
        same live objects the view's ``_open`` set holds.
        """
        labels = self.engine._labels
        base_state = state["base"]
        base = _HorizonState()
        base.height = base_state["height"]
        base.mark = base_state["mark"]
        base.uf = IntUnionFind.from_state(base_state["uf"])
        base.balance = IntVector.from_bytes(base_state["balance"])
        base.tx_count = IntVector.from_bytes(base_state["tx_count"])
        base.first = IntVector.from_bytes(base_state["first_seen"])
        base.last = IntVector.from_bytes(base_state["last_seen"])
        base.min_member = IntVector.from_bytes(base_state["min_member"])
        base.a_balance = IntVector.from_bytes(base_state["a_balance"])
        base.a_tx_count = IntVector.from_bytes(base_state["a_tx_count"])
        base.a_first = IntVector.from_bytes(base_state["a_first"])
        base.a_last = IntVector.from_bytes(base_state["a_last"])
        base.open = {labels[position] for position in base_state["open"]}
        base.settle()
        self._tt_enabled = True
        self._tt_base = base
        self._tt_records = {
            height: _HeightRecord(
                height=height,
                max_id=max_id,
                mark=mark,
                born_open=tuple(labels[position] for position in born),
                closed=tuple(labels[position] for position in closed),
                event_ids=np.frombuffer(event_ids, dtype="<i8"),
                event_values=np.frombuffer(event_values, dtype="<i8"),
                involved_flat=np.frombuffer(involved_flat, dtype="<i8"),
            )
            for height, max_id, mark, born, closed,
            event_ids, event_values, involved_flat in state["records"]
        }
        self._tt_spine = {}
        self._tt_memo = OrderedDict()

    # ------------------------------------------------------------------
    # durable state (snapshot / restore)
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """Plain-data state: the base partition and its fold arrays.

        The overlay, open-label set, and rank indexes are *derived*
        (from the engine's open labels and the base aggregates) and are
        rebuilt on restore — exporting them would only create a second
        source of truth to keep consistent.  Queued blocks are flushed
        first, so an export always reflects the view's full height.

        Version 2: the five fold arrays export as raw int64 bytes (one
        buffer each); :meth:`from_state` still accepts the version-1
        list shape.
        """
        self._flush()
        return {
            "version": 2,
            "height": self._height,
            "uf": self._uf.export_state(),
            "balance": self._balance.tobytes(),
            "tx_count": self._tx_count.tobytes(),
            "first_seen": self._first.tobytes(),
            "last_seen": self._last.tobytes(),
            "min_member": self._min_member.tobytes(),
        }

    @classmethod
    def from_state(
        cls,
        index: ChainIndex,
        state: dict,
        *,
        engine: IncrementalClusteringEngine,
        follow: bool = True,
        use_kernels: bool = True,
        time_travel: bool = True,
        metrics=None,
    ) -> "ClusterAggregateView":
        """Rebuild a view from :meth:`export_state` output, no catch-up.

        ``engine`` must be the restored engine at the same height — the
        open-label overlay is reconstructed from its live label state,
        so restored rankings are identical to the exporting view's.
        Accepts both the version-2 bytes shape and the pre-columnar
        version-1 list shape.

        The delta log restores separately (:meth:`load_time_travel` for
        manifest-v4 snapshots with a ``timetravel`` segment;
        :meth:`seed_time_travel_base` anchors a fresh base at the
        restore height for older snapshots) — until one of those runs,
        :meth:`covers` is ``False`` and historical horizons fall back to
        the batch rebuild.
        """
        view = cls.__new__(cls)
        view.metrics = metrics if metrics is not None else NULL_REGISTRY
        view.engine = engine
        view._use_kernels = use_kernels
        view._uf = IntUnionFind.from_state(state["uf"])
        view._cursor = view._uf.merge_cursor()
        view._balance = _fold_array(state["balance"])
        view._tx_count = _fold_array(state["tx_count"])
        view._first = _fold_array(state["first_seen"])
        view._last = _fold_array(state["last_seen"])
        view._min_member = _fold_array(state["min_member"])
        if engine.height != state["height"]:
            raise ValueError(
                f"aggregate state is at height {state['height']} but the "
                f"engine is at {engine.height}"
            )
        view._open = set(engine.open_labels())
        view._pending = []
        view._naming_dirty = set()
        view._naming_cursors = []
        view._default_naming_cursor = None
        view.naming_epoch = 0
        view._tt_enabled = time_travel
        view._tt_base = None
        view._tt_records = {}
        view._tt_spine = {}
        view._tt_memo = OrderedDict()
        view._rebuild_derived()
        view._adopt(index, state["height"], follow)
        return view

    def _rebuild_derived(self) -> None:
        """Reconstruct overlay groups and rank indexes from base state."""
        self._overlay_groups = []
        self._overlay_of = {}
        find = self._uf.find
        pairs = [
            (find(live.address_id), find(live.input_id))
            for live in self._open
            if live.input_id is not None
        ]
        self._build_overlay(pairs, set())
        self._ranks = {metric: RankIndex() for metric in TOP_CLUSTER_METRICS}
        entries: list[tuple[int, int, int, int]] = []
        grouped = self._overlay_of
        for root, size in self._uf.component_sizes().items():
            if root in grouped:
                continue
            entries.append(
                (self._min_member[root], size, self._balance[root],
                 self._tx_count[root])
            )
        for group in self._overlay_groups:
            entries.append(
                (group.cid, group.size, group.balance, group.tx_count)
            )
        self._refresh_ranks(set(), entries)

"""The uniform query API the forensics service answers.

A :class:`Query` is a hashable ``(kind, args)`` value — exactly the
cache key shape — covering the paper's interactive forensics questions:

===================  ==========================  =============================
kind                 args                        answer
===================  ==========================  =============================
``cluster_of``       ``(address,)``              cluster root id or ``None``
``balance_of``       ``(address,)``              satoshis currently held
``cluster_balance``  ``(address,)``              satoshis held by the whole
                                                 cluster containing address
``trace_taint``      ``(label,)``                theft-taint summary: initial /
                                                 unspent taint, entities
                                                 reached with amounts
``top_clusters``     ``(n, by)``                 ``((root, value, name), ...)``
                                                 ranked by ``size`` |
                                                 ``balance`` | ``activity``
``cluster_profile``  ``(address,)``              dict: cluster root, size,
                                                 balances, activity, rank,
                                                 name
===================  ==========================  =============================

:class:`QueryEngine` answers them from the service's warm views.  Every
answer is memoized in the height-keyed LRU
(:class:`~repro.service.cache.QueryCache`), so repeats against an
unchanged tip are dictionary hits and a new block invalidates by
construction.  Whole-partition aggregates (cluster balances, activity,
naming) are themselves cached under reserved ``_agg:*`` queries, which
is what makes ``top_clusters`` after ``cluster_profile`` nearly free.
Ranked queries share one sorted index per ``(height, metric)`` — a
:class:`ClusterRanking` under ``_agg:ranking:*`` — so ``top_clusters``
with any ``n`` slices the same sort and ``cluster_profile`` reads its
cluster's rank from it instead of re-ranking per distinct ``(n, by)``
pair.  :meth:`QueryEngine.answer_many` additionally groups a batch by
kind so same-view queries share one round of partition/view lookups.

Answers are plain data and must be treated as immutable — they are
shared by every caller that hits the same cache entry.
"""

from __future__ import annotations

from dataclasses import dataclass

QUERY_KINDS = (
    "cluster_of",
    "balance_of",
    "cluster_balance",
    "trace_taint",
    "top_clusters",
    "cluster_profile",
)

TOP_CLUSTER_METRICS = ("size", "balance", "activity")


@dataclass(frozen=True)
class Query:
    """One cacheable question: ``kind`` plus hashable ``args``."""

    kind: str
    args: tuple = ()


@dataclass(frozen=True)
class ClusterRanking:
    """One metric's full cluster ranking at one height.

    Built once per ``(height, metric)`` and shared by every query that
    ranks: ``top_clusters`` answers are prefixes of :attr:`order`, and
    ``cluster_profile`` reads a cluster's standing from :attr:`rank_of`.
    """

    order: tuple[tuple[int, int], ...]
    """``(root, value)`` pairs, best first (ties broken by root id)."""

    rank_of: dict[int, int]
    """``root -> 1-based rank`` over every cluster in :attr:`order`."""

    def top(self, n: int) -> tuple[tuple[int, int], ...]:
        """The best ``n`` entries (the whole ranking if ``n`` exceeds it)."""
        return self.order[:n]


def parse_query(tokens: list[str]) -> Query:
    """Parse CLI/workload-script tokens into a :class:`Query`.

    The first token is the kind (hyphens and underscores are
    interchangeable), e.g. ``["cluster-of", "1Abc..."]``,
    ``["top-clusters", "5", "balance"]``, ``["trace-taint", "Betcoin",
    "theft"]`` (trailing tokens of a taint label are re-joined).
    """
    if not tokens:
        raise ValueError("empty query")
    kind = tokens[0].replace("-", "_")
    rest = tokens[1:]
    if kind in ("cluster_of", "balance_of", "cluster_balance", "cluster_profile"):
        if len(rest) != 1:
            raise ValueError(f"{kind} takes exactly one address argument")
        return Query(kind, (rest[0],))
    if kind == "trace_taint":
        if not rest:
            raise ValueError("trace_taint takes a case label")
        return Query(kind, (" ".join(rest),))
    if kind == "top_clusters":
        n = int(rest[0]) if rest else 10
        by = rest[1] if len(rest) > 1 else "size"
        if by not in TOP_CLUSTER_METRICS:
            raise ValueError(
                f"top_clusters metric must be one of {TOP_CLUSTER_METRICS}"
            )
        return Query(kind, (n, by))
    raise ValueError(f"unknown query kind {tokens[0]!r} (kinds: {QUERY_KINDS})")


def format_answer(query: Query, answer) -> str:
    """Render one answer for the CLI (one-shot ``repro query``)."""
    if query.kind == "trace_taint":
        if answer is None:
            return f"taint case {query.args[0]!r} is not watched"
        lines = [
            f"taint case {query.args[0]!r}: initial {answer['initial_taint']}, "
            f"unspent {answer['unspent_taint']:.0f}, "
            f"txs {answer['txs_processed']}"
        ]
        for entity, value in answer["reached"]:
            lines.append(f"  reached {entity}: {value:.0f}")
        return "\n".join(lines)
    if query.kind == "top_clusters":
        n, by = query.args
        lines = [f"top {n} clusters by {by}:"]
        for root, value, name in answer:
            suffix = f"  ({name})" if name else ""
            lines.append(f"  cluster {root}: {value}{suffix}")
        return "\n".join(lines)
    if query.kind == "cluster_profile":
        if answer is None:
            return "address unknown to the clustering"
        return "\n".join(f"  {key}: {value}" for key, value in answer.items())
    return str(answer)


class QueryEngine:
    """Answers queries from a
    :class:`~repro.service.service.ForensicsService`'s warm state."""

    def __init__(self, service) -> None:
        self.service = service

    # -- entry points --------------------------------------------------

    def answer(self, query: Query):
        """Answer one query, memoized at the current chain height."""
        handler = self._HANDLERS.get(query.kind)
        if handler is None:
            raise ValueError(
                f"unknown query kind {query.kind!r} (kinds: {QUERY_KINDS})"
            )
        cache = self.service.cache
        key = self._cache_key(query)
        found, value = cache.lookup(key)
        if found:
            return value
        value = handler(self, query)
        cache.put(key, value)
        return value

    def _cache_key(self, query: Query):
        """Taint answers depend on the watch set, not just the height —
        key them on the view's watch epoch too, so ``watch_theft`` at an
        unchanged tip invalidates rather than serving pre-watch answers."""
        if query.kind == "trace_taint":
            return (self.service.height, self.service.taint.epoch, query)
        return (self.service.height, query)

    def answer_many(self, queries: list[Query]) -> list:
        """Answer a batch; answers come back in input order.

        Same-view queries are grouped by kind so each kind's shared
        state (the tip partition, the per-height cluster aggregates) is
        built exactly once, by the group's first miss, before its
        siblings run — the amortization itself is the `_agg:*` / engine
        memoization, so interleaved :meth:`answer` calls converge to
        the same cost; grouping just makes the build order
        deterministic."""
        answers: list = [None] * len(queries)
        by_kind: dict[str, list[int]] = {}
        for position, query in enumerate(queries):
            by_kind.setdefault(query.kind, []).append(position)
        for positions in by_kind.values():
            for position in positions:
                answers[position] = self.answer(queries[position])
        return answers

    # -- cached whole-partition aggregates -----------------------------

    def _aggregate(self, name: str, build):
        cache = self.service.cache
        key = (self.service.height, Query(f"_agg:{name}"))
        found, value = cache.lookup(key)
        if found:
            return value
        value = build()
        cache.put(key, value)
        return value

    def _cluster_balances(self) -> dict[int, int]:
        return self._aggregate(
            "cluster_balances",
            lambda: self.service.balances.cluster_balances(
                self.service.clustering.uf
            ),
        )

    def _cluster_activity(self):
        return self._aggregate(
            "cluster_activity",
            lambda: self.service.activity.cluster_activity(
                self.service.clustering.uf
            ),
        )

    def _naming(self):
        return self._aggregate("naming", self.service.build_naming)

    def _ranking(self, by: str) -> ClusterRanking:
        """The shared per-height sorted index for one metric."""
        if by not in TOP_CLUSTER_METRICS:
            raise ValueError(
                f"ranking metric must be one of {TOP_CLUSTER_METRICS}"
            )
        return self._aggregate(f"ranking:{by}", lambda: self._build_ranking(by))

    def _build_ranking(self, by: str) -> ClusterRanking:
        if by == "size":
            metric = self.service.clustering.component_sizes()
        elif by == "balance":
            metric = self._cluster_balances()
        else:  # activity
            metric = {
                root: activity.tx_count
                for root, activity in self._cluster_activity().items()
            }
        order = tuple(sorted(metric.items(), key=lambda kv: (-kv[1], kv[0])))
        rank_of = {root: rank for rank, (root, _value) in enumerate(order, 1)}
        return ClusterRanking(order=order, rank_of=rank_of)

    # -- handlers ------------------------------------------------------

    def _answer_cluster_of(self, query: Query):
        return self.service.clustering.cluster_of(query.args[0])

    def _answer_balance_of(self, query: Query):
        return self.service.balances.balance_of(query.args[0])

    def _answer_cluster_balance(self, query: Query):
        root = self.service.clustering.cluster_of(query.args[0])
        if root is None:
            return None
        return self._cluster_balances().get(root, 0)

    def _answer_trace_taint(self, query: Query):
        if query.args[0] not in self.service.taint.labels:
            return None  # unwatched case: a client error, not a crash
        case = self.service.taint.case(query.args[0])
        reached = tuple(
            sorted(case.at_entities.items(), key=lambda kv: (-kv[1], kv[0]))
        )
        return {
            "label": case.label,
            "initial_taint": case.initial_taint,
            "unspent_taint": sum(case.taint.values()),
            "txs_processed": case.txs_processed,
            "reached": reached,
        }

    def _answer_top_clusters(self, query: Query):
        n, by = query.args
        naming = self._naming()
        return tuple(
            (
                root,
                value,
                naming.name_of_cluster(root) if naming is not None else None,
            )
            for root, value in self._ranking(by).top(n)
        )

    def _answer_cluster_profile(self, query: Query):
        address = query.args[0]
        service = self.service
        clustering = service.clustering
        root = clustering.cluster_of(address)
        if root is None:
            return None
        ident = service.index.interner.id_of(address)
        seen = service.activity.seen_range_of_id(ident)
        cluster_activity = self._cluster_activity().get(root)
        naming = self._naming()
        return {
            "address": address,
            "address_id": ident,
            "cluster": root,
            "cluster_size": clustering.uf.size_of(root),
            "balance": service.balances.balance_of_id(ident),
            "cluster_balance": self._cluster_balances().get(root, 0),
            "tx_count": service.activity.tx_count_of_id(ident),
            "first_seen": seen[0] if seen else None,
            "last_seen": seen[1] if seen else None,
            "cluster_tx_count": (
                cluster_activity.tx_count if cluster_activity else 0
            ),
            "cluster_rank": self._ranking("size").rank_of.get(root),
            "name": (
                naming.name_of_address_id(ident) if naming is not None else None
            ),
        }

    _HANDLERS = {
        "cluster_of": _answer_cluster_of,
        "balance_of": _answer_balance_of,
        "cluster_balance": _answer_cluster_balance,
        "trace_taint": _answer_trace_taint,
        "top_clusters": _answer_top_clusters,
        "cluster_profile": _answer_cluster_profile,
    }


"""The uniform query API the forensics service answers.

A :class:`Query` is a hashable ``(kind, args)`` value — exactly the
cache key shape — covering the paper's interactive forensics questions:

===================  ==========================  =============================
kind                 args                        answer
===================  ==========================  =============================
``cluster_of``       ``(address,)``              canonical cluster id or
                                                 ``None``
``balance_of``       ``(address,)``              satoshis currently held
``cluster_balance``  ``(address,)``              satoshis held by the whole
                                                 cluster containing address
``trace_taint``      ``(label,)``                theft-taint summary: initial /
                                                 unspent taint, entities
                                                 reached with amounts
``top_clusters``     ``(n, by)``                 ``((cluster id, value, name),
                                                 ...)`` ranked by ``size`` |
                                                 ``balance`` | ``activity``
``cluster_profile``  ``(address,)``              dict: cluster id, size,
                                                 balances, activity, rank,
                                                 name
===================  ==========================  =============================

The cluster kinds (``cluster_of``, ``cluster_balance``,
``top_clusters``, ``cluster_profile``) accept one optional trailing
``height`` argument — ``Query("top_clusters", (10, "size", 420))`` asks
the question *as of block 420*.  Historical horizons are served by
replaying the aggregate view's per-height delta log forward from the
nearest materialized checkpoint
(:meth:`~repro.service.aggregates.ClusterAggregateView.horizon`);
when the view is absent or its log does not reach back that far, the
batch ``_agg`` rebuild runs against the partition-as-of-``h``
(:meth:`~repro.core.incremental.IncrementalClusteringEngine.cluster_as_of`),
cached under ``(h, _agg:*)`` — history is immutable, so those entries
never go stale.

:class:`QueryEngine` answers them from the service's warm views.  Every
answer is memoized in the height-keyed LRU
(:class:`~repro.service.cache.QueryCache`), so repeats against an
unchanged tip are dictionary hits and a new block invalidates by
construction.

Cluster ids in answers are **canonical**: a cluster is identified by
its minimum member address id (dense first-sight interned ids, so this
is the cluster's earliest-seen address).  Canonical ids depend only on
the partition — not on union order, restores, or which maintenance
path produced the answer — which keeps ranking tie-breaks stable and
makes the differential and batch paths byte-comparable.

Cluster-level questions are served, whenever the service's
:class:`~repro.service.aggregates.ClusterAggregateView` is live at the
tip, straight from its differentially maintained per-cluster state and
rank indexes — O(answer) per query, O(block churn + merges) per block.
When the view is absent or behind the tip (detached, or a historical
horizon below its live height), the engine falls back to the batch
rebuild: whole-partition aggregates (cluster balances, activity,
canonical ids, names) cached under reserved ``_agg:*`` queries, with
one shared :class:`ClusterRanking` per ``(height, metric)`` under
``_agg:ranking:*``.  :meth:`QueryEngine.answer_many` additionally
groups a batch by kind so same-view queries share one round of
partition/view lookups.

Answers are plain data and must be treated as immutable — they are
shared by every caller that hits the same cache entry.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from time import perf_counter

from ..obs import next_request_id
from ..tagging.naming import top_entity
from .views import ClusterActivity

QUERY_KINDS = (
    "cluster_of",
    "balance_of",
    "cluster_balance",
    "trace_taint",
    "top_clusters",
    "cluster_profile",
)

TOP_CLUSTER_METRICS = ("size", "balance", "activity")


@dataclass(frozen=True)
class Query:
    """One cacheable question: ``kind`` plus hashable ``args``."""

    kind: str
    args: tuple = ()


@dataclass(frozen=True)
class ClusterRanking:
    """One metric's full cluster ranking at one height.

    Built once per ``(height, metric)`` and shared by every query that
    ranks: ``top_clusters`` answers are prefixes of :attr:`order`, and
    ``cluster_profile`` reads a cluster's standing from :attr:`rank_of`.

    **Tie-break contract:** clusters with equal metric values rank by
    ascending canonical cluster id — the cluster's minimum member
    address id, i.e. its earliest-seen address.  Canonical ids are a
    pure function of the partition, so the order is identical across
    batch rebuilds, snapshot restores, and differential maintenance
    (pinned by ``tests/service/test_ranking_determinism.py``).
    """

    order: tuple[tuple[int, int], ...]
    """``(canonical cluster id, value)`` pairs, best first (ties broken
    by ascending canonical id; see the class docstring)."""

    rank_of: dict[int, int]
    """``canonical id -> 1-based rank`` over every cluster in
    :attr:`order`."""

    def top(self, n: int) -> tuple[tuple[int, int], ...]:
        """The best ``n`` entries (the whole ranking if ``n`` exceeds it)."""
        return self.order[:n]


def parse_query(tokens: list[str]) -> Query:
    """Parse CLI/workload-script tokens into a :class:`Query`.

    The first token is the kind (hyphens and underscores are
    interchangeable), e.g. ``["cluster-of", "1Abc..."]``,
    ``["top-clusters", "5", "balance"]``, ``["trace-taint", "Betcoin",
    "theft"]`` (trailing tokens of a taint label are re-joined).  The
    cluster kinds accept one optional trailing height token for
    historical horizons: ``["cluster-of", "1Abc...", "420"]``,
    ``["top-clusters", "5", "balance", "420"]``.
    """
    if not tokens:
        raise ValueError("empty query")
    kind = tokens[0].replace("-", "_")
    rest = tokens[1:]
    if kind in ("cluster_of", "balance_of", "cluster_balance", "cluster_profile"):
        if kind != "balance_of" and len(rest) == 2:
            return Query(kind, (rest[0], int(rest[1])))
        if len(rest) != 1:
            raise ValueError(f"{kind} takes exactly one address argument")
        return Query(kind, (rest[0],))
    if kind == "trace_taint":
        if not rest:
            raise ValueError("trace_taint takes a case label")
        return Query(kind, (" ".join(rest),))
    if kind == "top_clusters":
        n = int(rest[0]) if rest else 10
        by = rest[1] if len(rest) > 1 else "size"
        if by not in TOP_CLUSTER_METRICS:
            raise ValueError(
                f"top_clusters metric must be one of {TOP_CLUSTER_METRICS}"
            )
        if len(rest) > 2:
            return Query(kind, (n, by, int(rest[2])))
        return Query(kind, (n, by))
    raise ValueError(f"unknown query kind {tokens[0]!r} (kinds: {QUERY_KINDS})")


def format_answer(query: Query, answer) -> str:
    """Render one answer for the CLI (one-shot ``repro query``)."""
    if query.kind == "trace_taint":
        if answer is None:
            return f"taint case {query.args[0]!r} is not watched"
        lines = [
            f"taint case {query.args[0]!r}: initial {answer['initial_taint']}, "
            f"unspent {answer['unspent_taint']:.0f}, "
            f"txs {answer['txs_processed']}"
        ]
        for entity, value in answer["reached"]:
            lines.append(f"  reached {entity}: {value:.0f}")
        return "\n".join(lines)
    if query.kind == "top_clusters":
        n, by = query.args
        lines = [f"top {n} clusters by {by}:"]
        for root, value, name in answer:
            suffix = f"  ({name})" if name else ""
            lines.append(f"  cluster {root}: {value}{suffix}")
        return "\n".join(lines)
    if query.kind == "cluster_profile":
        if answer is None:
            return "address unknown to the clustering"
        return "\n".join(f"  {key}: {value}" for key, value in answer.items())
    return str(answer)


class QueryEngine:
    """Answers queries from a
    :class:`~repro.service.service.ForensicsService`'s warm state."""

    def __init__(self, service) -> None:
        self.service = service
        self._tag_entries: list[list] | None = None
        """Per tag (in ``all_tags`` order): ``[address id | None, entity,
        confidence, address]``.  Lazily built; ids are interned once per
        address ever (first-sight, stable), so each name build only
        re-checks entries whose addresses were still unseen.  The order
        is preserved so confidence sums accumulate exactly like the
        batch path's ``all_tags`` walk."""
        self._tag_unresolved = 0
        """Count of entries with a still-``None`` id."""
        self._tag_count = -1
        """``len(service.tags)`` when ``_tag_entries`` was built: the
        store is append-only, so a changed count means new tags (which
        can land mid-``all_tags``-order) — entries and the incremental
        naming state are rebuilt from scratch."""
        self._naming_state: dict | None = None
        """Incremental cluster-name state for the live-view path:
        per-entry last-resolved base roots and canonical ids, the
        ``cid -> sorted entry indices`` grouping, and the served name
        map.  Re-validated per height against the view's dirty-root
        drain, so a height without cid-moving churn serves the previous
        map untouched."""
        self._naming_cursor = None
        """This engine's :class:`~repro.service.aggregates.DirtyRootCursor`
        on the aggregate view's dirty-root feed.  Registered lazily on
        the first live name build, so an engine that never names
        clusters costs the view nothing — and other consumers (the
        auditor) drain their own cursors without starving this one."""

    # -- entry points --------------------------------------------------

    def answer(self, query: Query, *, request_id: str | None = None):
        """Answer one query, memoized at the current chain height.

        ``request_id`` tags the query's flight-recorder span so every
        dispatch of one client request correlates; :meth:`answer_many`
        stamps one automatically (the convention an HTTP tier reuses by
        forwarding its own id).
        """
        handler = self._HANDLERS.get(query.kind)
        if handler is None:
            raise ValueError(
                f"unknown query kind {query.kind!r} (kinds: {QUERY_KINDS})"
            )
        metrics = self.service.metrics
        timed = metrics.enabled
        if timed:
            start = perf_counter()
        cache = self.service.cache
        key = self._cache_key(query)
        found, value = cache.lookup(key)
        if not found:
            try:
                value = handler(self, query)
            except Exception as exc:
                log = self.service.log
                if log.enabled:
                    log.error(
                        "query_error",
                        kind=query.kind,
                        height=self.service.height,
                        error=repr(exc),
                    )
                raise
            cache.put(key, value)
        if timed:
            seconds = perf_counter() - start
            metrics.histogram("query.seconds", kind=query.kind).observe(
                seconds
            )
            span = {
                "query": query.kind,
                "hit": found,
                "height": self.service.height,
                "seconds": seconds,
            }
            if request_id is not None:
                span["request_id"] = request_id
            metrics.flight.record("query", **span)
        return value

    def _cache_key(self, query: Query):
        """Taint answers depend on the watch set, not just the height —
        key them on the view's watch epoch too, so ``watch_theft`` at an
        unchanged tip invalidates rather than serving pre-watch answers.

        Name-bearing kinds additionally carry the aggregate view's
        *naming epoch* (bumped on every structural dirty-root drain):
        a merge can rename a cluster without the answering engine
        having drained yet, and an epoch-free key would keep serving
        the pre-merge name from the cache at an unchanged tip."""
        kind = query.kind
        if kind == "trace_taint":
            return (
                self.service.height,
                self.service.taint.epoch,
                self._naming_epoch(),
                query,
            )
        if kind in ("top_clusters", "cluster_profile"):
            return (self.service.height, self._naming_epoch(), query)
        return (self.service.height, query)

    def _naming_epoch(self) -> int:
        view = self.service.aggregates
        return view.naming_epoch if view is not None else 0

    def answer_many(
        self, queries: list[Query], *, request_id: str | None = None
    ) -> list:
        """Answer a batch; answers come back in input order.

        Same-view queries are grouped by kind so each kind's shared
        state (the tip partition, the per-height cluster aggregates) is
        built exactly once, by the group's first miss, before its
        siblings run — the amortization itself is the `_agg:*` / engine
        memoization, so interleaved :meth:`answer` calls converge to
        the same cost; grouping just makes the build order
        deterministic.

        Every dispatch carries one shared ``request_id`` (minted here
        when the caller passes none) so a batch's flight-recorder spans
        correlate."""
        if request_id is None and self.service.metrics.enabled:
            request_id = next_request_id()
        answers: list = [None] * len(queries)
        by_kind: dict[str, list[int]] = {}
        for position, query in enumerate(queries):
            by_kind.setdefault(query.kind, []).append(position)
        for positions in by_kind.values():
            for position in positions:
                answers[position] = self.answer(
                    queries[position], request_id=request_id
                )
        return answers

    # -- differential fast path ----------------------------------------

    def _live_aggregates(self):
        """The service's differential cluster-aggregate view, when it is
        live at the tip — otherwise ``None`` and cluster answers fall
        back to the batch ``_agg`` rebuild (the only remaining use of
        that path: views that are detached or behind the tip, i.e.
        historical horizons below the view's live height)."""
        view = self.service.aggregates
        if view is not None and view.height == self.service.height:
            return view
        return None

    # -- cached whole-partition aggregates (batch fallback) ------------

    def _aggregate(self, name: str, build):
        cache = self.service.cache
        key = (self.service.height, Query(f"_agg:{name}"))
        found, value = cache.lookup(key)
        if found:
            return value
        value = build()
        cache.put(key, value)
        return value

    def _cluster_balances(self) -> dict[int, int]:
        return self._aggregate(
            "cluster_balances",
            lambda: self.service.balances.cluster_balances(
                self.service.clustering.uf
            ),
        )

    def _cluster_activity(self):
        return self._aggregate(
            "cluster_activity",
            lambda: self.service.activity.cluster_activity(
                self.service.clustering.uf
            ),
        )

    def _canonical(self) -> dict[int, int]:
        """Batch fallback: partition root -> canonical cluster id."""
        return self._aggregate("canonical", self._build_canonical)

    def _build_canonical(self) -> dict[int, int]:
        find_root = self.service.clustering.uf.find_root
        canonical: dict[int, int] = {}
        for ident in range(len(self.service.clustering.uf)):
            root = find_root(ident)
            if root not in canonical:
                # Ids ascend, so a root's first member is its minimum.
                canonical[root] = ident
        return canonical

    def _cluster_names(self) -> dict[int, str] | None:
        """``canonical id -> name`` at the tip, or ``None`` without tags.

        Same winner rule as :class:`~repro.tagging.naming.ClusterNaming`
        (both apply :func:`~repro.tagging.naming.ranked_entities`'s
        ordering — here via its single-winner form
        :func:`~repro.tagging.naming.top_entity`), keyed by canonical
        cluster id so both maintenance paths serve identical names."""
        return self._aggregate("cluster_names", self._build_cluster_names)

    def _resolved_tags(self) -> tuple[list[list], list[int]]:
        """Every tag as ``[address id | None, entity, confidence,
        address]`` in ``all_tags`` order, ids resolved incrementally;
        plus the indices of entries resolved by *this* call."""
        entries = self._tag_entries
        tags = self.service.tags
        if entries is None or self._tag_count != len(tags):
            entries = self._tag_entries = [
                [None, tag.entity, tag.confidence, tag.address]
                for tag in tags.all_tags()
            ]
            self._tag_count = len(tags)
            self._tag_unresolved = len(entries)
            self._naming_state = None  # indices shifted: rebuild in full
        fresh: list[int] = []
        if self._tag_unresolved:
            id_of = self.service.index.interner.id_of
            for position, entry in enumerate(entries):
                if entry[0] is None:
                    ident = id_of(entry[3])
                    if ident is not None:
                        entry[0] = ident
                        fresh.append(position)
            self._tag_unresolved -= len(fresh)
        return entries, fresh

    def _name_of_entries(self, indices: list[int], entries: list[list]) -> str:
        """Winner entity over one cluster's tag entries.

        ``indices`` ascend, so confidence sums accumulate in ``all_tags``
        order — bit-identical to the batch path's full walk."""
        weights: dict[str, float] = {}
        for position in indices:
            entry = entries[position]
            entity = entry[1]
            weights[entity] = weights.get(entity, 0.0) + entry[2]
        return top_entity(weights)

    def _build_cluster_names(self) -> dict[int, str] | None:
        tags = self.service.tags
        if tags is None:
            return None
        view = self._live_aggregates()
        if view is None:
            canonical = self._canonical()
            find_root = self.service.clustering.uf.find_root
            weights: dict[int, dict[str, float]] = {}
            for tag in tags.all_tags():
                root = find_root(tag.address)
                if root is None:
                    continue
                cluster_id = canonical[root]
                entity_weights = weights.setdefault(cluster_id, {})
                entity_weights[tag.entity] = (
                    entity_weights.get(tag.entity, 0.0) + tag.confidence
                )
            return {
                cluster_id: top_entity(entity_weights)
                for cluster_id, entity_weights in weights.items()
            }

        entries, fresh = self._resolved_tags()
        if self._naming_cursor is None:
            self._naming_cursor = view.naming_cursor()
        dirty = view.drain_naming_dirty(self._naming_cursor)
        state = self._naming_state
        if state is None:
            placements = view.cluster_placements_of(
                entry[0] for entry in entries
            )
            roots: list[int | None] = []
            cids: list[int | None] = []
            by_cid: dict[int, list[int]] = {}
            for position, placed in enumerate(placements):
                if placed is None:
                    roots.append(None)
                    cids.append(None)
                    continue
                root, cid = placed
                roots.append(root)
                cids.append(cid)
                by_cid.setdefault(cid, []).append(position)
            names = {
                cid: self._name_of_entries(indices, entries)
                for cid, indices in by_cid.items()
            }
            self._naming_state = {
                "roots": roots, "cids": cids, "by_cid": by_cid,
                "names": names,
            }
            return names

        roots = state["roots"]
        cids = state["cids"]
        by_cid = state["by_cid"]
        affected = list(fresh)
        if dirty:
            for position, root in enumerate(roots):
                if root is not None and root in dirty:
                    affected.append(position)
        if not affected:
            return state["names"]
        affected = sorted(set(affected))
        placements = view.cluster_placements_of(
            entries[position][0] for position in affected
        )
        changed_cids: set[int] = set()
        for position, placed in zip(affected, placements):
            old_cid = cids[position]
            root, cid = placed if placed is not None else (None, None)
            roots[position] = root
            if cid == old_cid:
                continue
            if old_cid is not None:
                by_cid[old_cid].remove(position)
                changed_cids.add(old_cid)
            if cid is not None:
                insort(by_cid.setdefault(cid, []), position)
                changed_cids.add(cid)
            cids[position] = cid
        if not changed_cids:
            return state["names"]
        # Copy-on-write: maps already served for earlier heights stay
        # frozen in the height-keyed cache.
        names = dict(state["names"])
        for cid in changed_cids:
            indices = by_cid.get(cid)
            if indices:
                names[cid] = self._name_of_entries(indices, entries)
            else:
                by_cid.pop(cid, None)
                names.pop(cid, None)
        state["names"] = names
        return names

    def _ranking(self, by: str) -> ClusterRanking:
        """The shared per-height sorted index for one metric."""
        if by not in TOP_CLUSTER_METRICS:
            raise ValueError(
                f"ranking metric must be one of {TOP_CLUSTER_METRICS}"
            )
        return self._aggregate(f"ranking:{by}", lambda: self._build_ranking(by))

    def _build_ranking(self, by: str) -> ClusterRanking:
        view = self._live_aggregates()
        if view is not None:
            return view.ranking(by)
        canonical = self._canonical()
        if by == "size":
            metric = self.service.clustering.component_sizes()
        elif by == "balance":
            metric = self._cluster_balances()
        else:  # activity
            metric = {
                root: activity.tx_count
                for root, activity in self._cluster_activity().items()
            }
        order = tuple(
            sorted(
                ((canonical[root], value) for root, value in metric.items()),
                key=lambda kv: (-kv[1], kv[0]),
            )
        )
        rank_of = {cid: rank for rank, (cid, _value) in enumerate(order, 1)}
        return ClusterRanking(order=order, rank_of=rank_of)

    # -- historical horizons (h < tip) ---------------------------------

    def _historical_height(self, args: tuple, arity: int) -> int | None:
        """The optional trailing horizon height of ``args``, validated.

        Returns ``None`` for tip questions — both the plain
        ``arity``-argument form and an explicit ``h == tip`` (the tip
        fast path serves those).  Raises ``ValueError`` outside
        ``0..tip``.
        """
        if len(args) <= arity:
            return None
        height = args[arity]
        tip = self.service.height
        if not isinstance(height, int) or isinstance(height, bool):
            raise ValueError(
                f"horizon height must be an int, got {height!r}"
            )
        if not 0 <= height <= tip:
            raise ValueError(f"horizon height {height} outside 0..{tip}")
        return None if height == tip else height

    def _horizon_view(self, height: int):
        """Replayed aggregate state at ``height``
        (:class:`~repro.service.aggregates.HorizonAggregates`), or
        ``None`` when the view is absent or its delta log does not
        reach back that far — then the batch ``_agg@h`` rebuild runs."""
        view = self.service.aggregates
        if view is not None and view.covers(height):
            return view.horizon(height)
        return None

    def _aggregate_at(self, height: int, name: str, build):
        """Like :meth:`_aggregate`, but keyed at the *horizon* height:
        history is immutable, so an ``_agg@h`` entry built once serves
        every later tip without invalidation."""
        cache = self.service.cache
        key = (height, Query(f"_agg:{name}"))
        found, value = cache.lookup(key)
        if found:
            return value
        value = build()
        cache.put(key, value)
        return value

    def _clustering_at(self, height: int):
        return self.service.engine.cluster_as_of(height)

    def _canonical_at(self, height: int) -> dict[int, int]:
        """Batch fallback at ``height``: root -> canonical cluster id."""

        def build() -> dict[int, int]:
            uf = self._clustering_at(height).uf
            find_root = uf.find_root
            canonical: dict[int, int] = {}
            for ident in range(len(uf)):
                root = find_root(ident)
                if root not in canonical:
                    # Ids ascend, so a root's first member is its minimum.
                    canonical[root] = ident
            return canonical

        return self._aggregate_at(height, "canonical", build)

    def _address_balances_at(self, height: int) -> dict[int, int]:
        """``address id -> balance`` after block ``height`` (nonzero
        entries only), re-summed from the balance view's event log —
        the same per-height ``(ids, values)`` records the time-travel
        replay folds, applied here without aggregate state."""

        def build() -> dict[int, int]:
            events_at = self.service.balances.events_at
            balances: dict[int, int] = {}
            for h in range(height + 1):
                for ident, change in events_at(h):
                    total = balances.get(ident, 0) + change
                    if total:
                        balances[ident] = total
                    else:
                        balances.pop(ident, None)
            return balances

        return self._aggregate_at(height, "address_balances", build)

    def _cluster_balances_at(self, height: int) -> dict[int, int]:
        def build() -> dict[int, int]:
            find_root = self._clustering_at(height).uf.find_root
            out: dict[int, int] = {}
            for ident, balance in sorted(
                self._address_balances_at(height).items()
            ):
                root = find_root(ident)
                if root is None:
                    continue
                out[root] = out.get(root, 0) + balance
            return out

        return self._aggregate_at(height, "cluster_balances", build)

    def _address_activity_at(self, height: int):
        """Per-address ``(tx counts, first seen, last seen)`` dicts at
        ``height``, re-walked from the chain's block deltas (the same
        involvement multiset :class:`~repro.service.views.ActivityView`
        scatters at the tip)."""

        def build():
            block_delta = self.service.index.block_delta
            counts: dict[int, int] = {}
            first: dict[int, int] = {}
            last: dict[int, int] = {}
            for h in range(height + 1):
                for ident in block_delta(h).involved_flat.tolist():
                    counts[ident] = counts.get(ident, 0) + 1
                    if ident not in first:
                        first[ident] = h
                    last[ident] = h
            return counts, first, last

        return self._aggregate_at(height, "address_activity", build)

    def _cluster_activity_at(self, height: int) -> dict[int, ClusterActivity]:
        def build() -> dict[int, ClusterActivity]:
            find_root = self._clustering_at(height).uf.find_root
            counts, first, last = self._address_activity_at(height)
            agg_counts: dict[int, int] = {}
            agg_first: dict[int, int] = {}
            agg_last: dict[int, int] = {}
            for ident in sorted(counts):
                root = find_root(ident)
                if root is None:
                    continue
                agg_counts[root] = agg_counts.get(root, 0) + counts[ident]
                seen_first = first[ident]
                seen_last = last[ident]
                if root not in agg_first or seen_first < agg_first[root]:
                    agg_first[root] = seen_first
                if root not in agg_last or seen_last > agg_last[root]:
                    agg_last[root] = seen_last
            return {
                root: ClusterActivity(
                    tx_count=agg_counts[root],
                    first_seen=agg_first[root],
                    last_seen=agg_last[root],
                )
                for root in agg_counts
            }

        return self._aggregate_at(height, "cluster_activity", build)

    def _ranking_at(self, height: int, by: str) -> ClusterRanking:
        if by not in TOP_CLUSTER_METRICS:
            raise ValueError(
                f"ranking metric must be one of {TOP_CLUSTER_METRICS}"
            )

        def build() -> ClusterRanking:
            canonical = self._canonical_at(height)
            if by == "size":
                metric = self._clustering_at(height).component_sizes()
            elif by == "balance":
                metric = self._cluster_balances_at(height)
            else:  # activity
                metric = {
                    root: activity.tx_count
                    for root, activity in self._cluster_activity_at(
                        height
                    ).items()
                }
            order = tuple(
                sorted(
                    (
                        (canonical[root], value)
                        for root, value in metric.items()
                    ),
                    key=lambda kv: (-kv[1], kv[0]),
                )
            )
            rank_of = {
                cid: rank for rank, (cid, _value) in enumerate(order, 1)
            }
            return ClusterRanking(order=order, rank_of=rank_of)

        return self._aggregate_at(height, f"ranking:{by}", build)

    def _cluster_names_at(self, height: int) -> dict[int, str] | None:
        """``canonical id -> name`` at ``height``, or ``None`` without
        tags.  With a covering horizon the map is a replay: tag ids go
        through the horizon's cached ``(root, cid)`` placements instead
        of an O(tags) partition walk.  The cache key carries the tag
        count so tags added after the first build re-enter history."""
        tags = self.service.tags
        if tags is None:
            return None

        def build() -> dict[int, str]:
            entries, _fresh = self._resolved_tags()
            hz = self._horizon_view(height)
            if hz is not None:
                placements = hz.cluster_placements_of(
                    entry[0] for entry in entries
                )
                by_cid: dict[int, list[int]] = {}
                for position, placed in enumerate(placements):
                    if placed is not None:
                        by_cid.setdefault(placed[1], []).append(position)
                return {
                    cid: self._name_of_entries(indices, entries)
                    for cid, indices in by_cid.items()
                }
            canonical = self._canonical_at(height)
            find_root = self._clustering_at(height).uf.find_root
            weights: dict[int, dict[str, float]] = {}
            for tag in tags.all_tags():
                root = find_root(tag.address)
                if root is None:
                    continue
                entity_weights = weights.setdefault(canonical[root], {})
                entity_weights[tag.entity] = (
                    entity_weights.get(tag.entity, 0.0) + tag.confidence
                )
            return {
                cid: top_entity(entity_weights)
                for cid, entity_weights in weights.items()
            }

        return self._aggregate_at(
            height, f"cluster_names:{len(tags)}", build
        )

    # -- handlers ------------------------------------------------------

    def _answer_cluster_of(self, query: Query):
        address = query.args[0]
        height = self._historical_height(query.args, 1)
        if height is not None:
            hz = self._horizon_view(height)
            if hz is not None:
                ident = self.service.index.interner.id_of(address)
                return hz.cluster_id_of(ident)
            root = self._clustering_at(height).uf.find_root(address)
            return None if root is None else self._canonical_at(height)[root]
        view = self._live_aggregates()
        if view is not None:
            ident = self.service.index.interner.id_of(address)
            return view.cluster_id_of(ident)
        root = self.service.clustering.cluster_of(address)
        return None if root is None else self._canonical()[root]

    def _answer_balance_of(self, query: Query):
        return self.service.balances.balance_of(query.args[0])

    def _answer_cluster_balance(self, query: Query):
        address = query.args[0]
        height = self._historical_height(query.args, 1)
        if height is not None:
            hz = self._horizon_view(height)
            if hz is not None:
                ident = self.service.index.interner.id_of(address)
                cluster_id = hz.cluster_id_of(ident)
                if cluster_id is None:
                    return None
                return hz.balance_of_cluster(cluster_id)
            root = self._clustering_at(height).uf.find_root(address)
            if root is None:
                return None
            return self._cluster_balances_at(height).get(root, 0)
        view = self._live_aggregates()
        if view is not None:
            ident = self.service.index.interner.id_of(address)
            cluster_id = view.cluster_id_of(ident)
            if cluster_id is None:
                return None
            return view.balance_of_cluster(cluster_id)
        root = self.service.clustering.cluster_of(address)
        if root is None:
            return None
        return self._cluster_balances().get(root, 0)

    def _answer_trace_taint(self, query: Query):
        if query.args[0] not in self.service.taint.labels:
            return None  # unwatched case: a client error, not a crash
        case = self.service.taint.case(query.args[0])
        reached = tuple(
            sorted(case.at_entities.items(), key=lambda kv: (-kv[1], kv[0]))
        )
        return {
            "label": case.label,
            "initial_taint": case.initial_taint,
            "unspent_taint": sum(case.taint.values()),
            "txs_processed": case.txs_processed,
            "reached": reached,
        }

    def _answer_top_clusters(self, query: Query):
        n, by = query.args[0], query.args[1]
        height = self._historical_height(query.args, 2)
        if height is not None:
            names = self._cluster_names_at(height)
            hz = self._horizon_view(height)
            entries = (
                hz.top(n, by)
                if hz is not None
                else self._ranking_at(height, by).top(n)
            )
            return tuple(
                (
                    cluster_id,
                    value,
                    names.get(cluster_id) if names is not None else None,
                )
                for cluster_id, value in entries
            )
        names = self._cluster_names()
        view = self._live_aggregates()
        entries = view.top(n, by) if view is not None else self._ranking(by).top(n)
        return tuple(
            (
                cluster_id,
                value,
                names.get(cluster_id) if names is not None else None,
            )
            for cluster_id, value in entries
        )

    def _answer_cluster_profile(self, query: Query):
        address = query.args[0]
        service = self.service
        ident = service.index.interner.id_of(address)
        if ident is None:
            return None
        height = self._historical_height(query.args, 1)
        if height is not None:
            return self._profile_at(height, address, ident)
        view = self._live_aggregates()
        if view is not None:
            cluster_id = view.cluster_id_of(ident)
            if cluster_id is None:
                return None
            cluster_size = view.size_of_cluster(cluster_id)
            cluster_balance = view.balance_of_cluster(cluster_id)
            cluster_activity = view.activity_of_cluster(cluster_id)
            cluster_rank = view.rank_of("size", cluster_id)
        else:
            clustering = service.clustering
            root = clustering.uf.find_root(ident)
            if root is None:
                return None
            cluster_id = self._canonical()[root]
            cluster_size = clustering.uf.size_of(root)
            cluster_balance = self._cluster_balances().get(root, 0)
            cluster_activity = self._cluster_activity().get(root)
            cluster_rank = self._ranking("size").rank_of.get(cluster_id)
        seen = service.activity.seen_range_of_id(ident)
        names = self._cluster_names()
        return {
            "address": address,
            "address_id": ident,
            "cluster": cluster_id,
            "cluster_size": cluster_size,
            "balance": service.balances.balance_of_id(ident),
            "cluster_balance": cluster_balance,
            "tx_count": service.activity.tx_count_of_id(ident),
            "first_seen": seen[0] if seen else None,
            "last_seen": seen[1] if seen else None,
            "cluster_tx_count": (
                cluster_activity.tx_count if cluster_activity else 0
            ),
            "cluster_rank": cluster_rank,
            "name": (
                names.get(cluster_id) if names is not None else None
            ),
        }

    def _profile_at(self, height: int, address: str, ident: int):
        """The historical ``cluster_profile`` body: same keys as the
        tip answer, every field as of ``height``."""
        names = self._cluster_names_at(height)
        hz = self._horizon_view(height)
        if hz is not None:
            cluster_id = hz.cluster_id_of(ident)
            if cluster_id is None:
                return None
            cluster_activity = hz.activity_of_cluster(cluster_id)
            seen = hz.seen_range_of_id(ident)
            return {
                "address": address,
                "address_id": ident,
                "cluster": cluster_id,
                "cluster_size": hz.size_of_cluster(cluster_id),
                "balance": hz.balance_of_id(ident),
                "cluster_balance": hz.balance_of_cluster(cluster_id),
                "tx_count": hz.tx_count_of_id(ident),
                "first_seen": seen[0] if seen else None,
                "last_seen": seen[1] if seen else None,
                "cluster_tx_count": (
                    cluster_activity.tx_count if cluster_activity else 0
                ),
                "cluster_rank": hz.rank_of("size", cluster_id),
                "name": (
                    names.get(cluster_id) if names is not None else None
                ),
            }
        clustering = self._clustering_at(height)
        root = clustering.uf.find_root(ident)
        if root is None:
            return None
        cluster_id = self._canonical_at(height)[root]
        counts, first, last = self._address_activity_at(height)
        cluster_activity = self._cluster_activity_at(height).get(root)
        seen = (first[ident], last[ident]) if ident in first else None
        return {
            "address": address,
            "address_id": ident,
            "cluster": cluster_id,
            "cluster_size": clustering.uf.size_of(root),
            "balance": self._address_balances_at(height).get(ident, 0),
            "cluster_balance": self._cluster_balances_at(height).get(root, 0),
            "tx_count": counts.get(ident, 0),
            "first_seen": seen[0] if seen else None,
            "last_seen": seen[1] if seen else None,
            "cluster_tx_count": (
                cluster_activity.tx_count if cluster_activity else 0
            ),
            "cluster_rank": self._ranking_at(height, "size").rank_of.get(
                cluster_id
            ),
            "name": names.get(cluster_id) if names is not None else None,
        }

    _HANDLERS = {
        "cluster_of": _answer_cluster_of,
        "balance_of": _answer_balance_of,
        "cluster_balance": _answer_cluster_balance,
        "trace_taint": _answer_trace_taint,
        "top_clusters": _answer_top_clusters,
        "cluster_profile": _answer_cluster_profile,
    }


"""Height-keyed LRU for memoized query answers.

The serving layer's invariant: an answer computed against a fixed chain
height never changes (the chain is append-only and every view is a pure
function of the block prefix).  So the cache key is ``(height, query)``
— a new block *is* the invalidation, because every lookup against the
new tip misses and recomputes, while the LRU quietly ages out answers
for heights nobody asks about anymore.  Nothing is ever explicitly
flushed, and time-travel queries against old heights stay cacheable.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

_MISS = object()


class QueryCache:
    """A small LRU with hit/miss accounting."""

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable):
        """The cached value, or the module-private miss sentinel.

        Use :meth:`lookup` for an ``(found, value)`` pair instead of
        comparing against the sentinel.
        """
        value = self._entries.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
            return _MISS
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def lookup(self, key: Hashable) -> tuple[bool, object]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss."""
        value = self.get(key)
        if value is _MISS:
            return False, None
        return True, value

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        self._entries.clear()

    def stats(self) -> dict[str, float]:
        """Accounting snapshot for reports and benchmarks."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

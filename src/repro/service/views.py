"""Streaming materialized views over a :class:`~repro.chain.index.ChainIndex`.

The forensics questions of §5 — "what does this address hold *now*, who
else holds with it, where did the stolen coins go?" — used to be batch
recomputations: every answer re-walked the chain.  Each view here
instead attaches to :meth:`ChainIndex.subscribe_deltas
<repro.chain.index.ChainIndex.subscribe_deltas>` and folds every new block
into warm state the moment it is ingested, so the
:class:`~repro.service.service.ForensicsService` answers from O(1)-ish
lookups:

* :class:`BalanceView` — per-address balances (dense arrays keyed by
  interned id), per-height coinbase issuance, and the compact
  ``(address id, delta)`` event log that Figure 2's category series is
  rebuilt from without touching a single transaction again.
* :class:`TaintView` — live haircut-taint frontiers for any number of
  watched theft cases, advanced per block by the *same*
  :func:`~repro.analysis.taint.taint_step` the batch
  :class:`~repro.analysis.taint.TaintTracker` runs, so streamed state
  provably equals a from-scratch propagation at every height.
* :class:`ActivityView` — per-address transaction incidence counts and
  first/last-seen heights, the raw material for per-cluster activity
  profiles and supercluster/chokepoint queries.

Every view folds from the block's shared
:class:`~repro.chain.delta.BlockDelta` (see ``chain/delta.py``): the
index walks each block's transactions exactly once at ingestion and the
whole observer fan-out — engine, these views, the differential
aggregates — reads the one flat plan, so no view ever touches a
transaction list or re-resolves an id memo on the hot path.

Every view follows the incremental engine's contract: construction
catches up on blocks the index already holds, then streams; ``detach``
stops following.  The equivalence property (view state at height ``h``
== batch recomputation over the ``h``-prefix) is pinned by
``tests/service/test_views.py`` in the same style as the PR 1
incremental==batch clustering test, and the delta-vs-transaction-walk
property by ``tests/chain/test_delta.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..analysis.taint import TaintResult, TaintTracker, taint_step
from ..chain.delta import BlockDelta
from ..chain.index import ChainIndex
from ..chain.model import OutPoint
from ..core.arrays import IntVector, as_int64
from ..obs import NULL_REGISTRY


def _frombytes(buffer: bytes) -> np.ndarray:
    """Read-only int64 array over snapshot bytes (zero copy)."""
    return np.frombuffer(buffer, dtype="<i8")


class MaterializedView:
    """Base class: catch-up, ordered streaming, detach.

    Subclasses implement :meth:`_apply_delta`; the base class guarantees
    it sees every block's delta exactly once, in height order
    (out-of-order delivery raises, mirroring the incremental clustering
    engine).

    Folds report per-view telemetry when a ``metrics`` registry is
    given: ``view.fold_seconds{view=…}`` times each :meth:`_apply_delta`
    (a refinement of the index's per-subscriber fan-out timing) and
    ``view.grown_slots{view=…}`` counts dense-array growth.
    """

    OBSERVER_NAME = "view"
    """Subscriber label in fan-out and fold metrics (per subclass)."""

    def __init__(
        self,
        index: ChainIndex,
        *,
        follow: bool = True,
        metrics=None,
    ) -> None:
        self.index = index
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._height = -1
        self._unsubscribe = None
        for height in range(index.height + 1):
            self._observe_delta(index.block_delta(height))
        if follow:
            self._unsubscribe = index.subscribe_deltas(
                self._observe_delta, name=self.OBSERVER_NAME
            )

    def _adopt(self, index: ChainIndex, height: int, follow: bool) -> None:
        """Attach a snapshot-restored view to ``index`` at ``height``
        without replaying the catch-up (its state is already warm)."""
        if height != index.height:
            raise ValueError(
                f"view state is at height {height} but the index is at "
                f"{index.height}"
            )
        self.index = index
        if not hasattr(self, "metrics"):
            self.metrics = NULL_REGISTRY
        self._height = height
        self._unsubscribe = (
            index.subscribe_deltas(self._observe_delta, name=self.OBSERVER_NAME)
            if follow
            else None
        )

    @property
    def height(self) -> int:
        """Last height folded into the view (-1 before any block)."""
        return self._height

    def detach(self) -> None:
        """Stop observing the index (materialized state remains)."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def _observe_delta(self, delta: BlockDelta) -> None:
        if delta.height != self._height + 1:
            raise ValueError(
                f"blocks must stream in order: expected height "
                f"{self._height + 1}, got {delta.height}"
            )
        metrics = self.metrics
        if metrics.enabled:
            start = perf_counter()
            self._apply_delta(delta)
            metrics.histogram(
                "view.fold_seconds", view=self.OBSERVER_NAME
            ).observe(perf_counter() - start)
        else:
            self._apply_delta(delta)
        self._height = delta.height

    def _apply_delta(self, delta: BlockDelta) -> None:
        raise NotImplementedError


class BalanceView(MaterializedView):
    """Per-address balances + the per-height delta log, streamed.

    Replaces the chain re-walk in
    :meth:`~repro.analysis.balances.BalanceAnalyzer.series`: instead of
    iterating every address record and every block per call, the
    analyzer replays this view's compact event log (pass the view via
    ``BalanceAnalyzer(..., view=...)``).  Point queries
    (:meth:`balance_of`, :meth:`cluster_balances`) read the dense
    balance array directly.

    The fold is kernelized by default: one ``np.add.at`` scatter of the
    delta's columnar event buffers into an :class:`IntVector` grown once
    per block from ``max_id``.  ``use_kernels=False`` selects the scalar
    per-event reference loop (same state, same answers — pinned by
    ``tests/service/test_fold_kernels.py``).
    """

    OBSERVER_NAME = "balances"

    def __init__(
        self,
        index: ChainIndex,
        *,
        follow: bool = True,
        use_kernels: bool = True,
        metrics=None,
    ) -> None:
        self._use_kernels = use_kernels
        self._balances = IntVector()
        """Current balance per interned address id."""
        self._events: list[tuple[np.ndarray, np.ndarray]] = []
        """Per height: the delta's columnar ``(ids, signed deltas)``
        event buffers, retained by reference — no per-block copy."""
        self._coinbase: list[int] = []
        """Coins issued at each height."""
        self._supply: list[int] = []
        """Cumulative issuance by each height."""
        super().__init__(index, follow=follow, metrics=metrics)

    def _apply_delta(self, delta: BlockDelta) -> None:
        # The delta pre-flattened the block's debits and credits into
        # the exact per-height event log this view keeps.  Every event
        # id is ≤ max_id, so one grow per block covers the whole fold.
        balances = self._balances
        if delta.max_id >= len(balances):
            if self.metrics.enabled:
                self.metrics.counter(
                    "view.grown_slots", view=self.OBSERVER_NAME
                ).inc(delta.max_id + 1 - len(balances))
            balances.grow_to(delta.max_id + 1)
        if self._use_kernels:
            np.add.at(balances.array, delta.event_ids, delta.event_values)
        else:
            for ident, change in delta.events:
                balances[ident] += change
        self._events.append((delta.event_ids, delta.event_values))
        self._coinbase.append(delta.minted)
        self._supply.append(
            (self._supply[-1] if self._supply else 0) + delta.minted
        )

    # -- durable state -------------------------------------------------

    def export_state(self) -> dict:
        """Plain-data state: balances, the event log, and issuance.

        Version 2: the balance array and the per-height event columns
        export as raw int64 bytes — one buffer copy each, instead of the
        old O(events) Python list-of-lists rebuild per snapshot.
        """
        return {
            "version": 2,
            "height": self._height,
            "balances": self._balances.tobytes(),
            "events_ids": [ids.tobytes() for ids, _values in self._events],
            "events_values": [
                values.tobytes() for _ids, values in self._events
            ],
            "coinbase": list(self._coinbase),
            "supply": list(self._supply),
        }

    @classmethod
    def from_state(
        cls,
        index: ChainIndex,
        state: dict,
        *,
        follow: bool = True,
        use_kernels: bool = True,
        metrics=None,
    ) -> "BalanceView":
        """Rebuild a view from :meth:`export_state` output, no catch-up.

        Accepts both the version-2 bytes shape and the pre-columnar
        version-1 list shape, so old snapshots stay restorable.
        """
        view = cls.__new__(cls)
        view.metrics = metrics if metrics is not None else NULL_REGISTRY
        view._use_kernels = use_kernels
        if state.get("version", 1) >= 2:
            view._balances = IntVector.from_bytes(state["balances"])
            view._events = [
                (_frombytes(ids), _frombytes(values))
                for ids, values in zip(
                    state["events_ids"], state["events_values"]
                )
            ]
        else:
            view._balances = IntVector.from_list(state["balances"])
            view._events = [
                (
                    as_int64([event[0] for event in events]),
                    as_int64([event[1] for event in events]),
                )
                for events in state["events"]
            ]
        view._coinbase = list(state["coinbase"])
        view._supply = list(state["supply"])
        view._adopt(index, state["height"], follow)
        return view

    # -- point queries -------------------------------------------------

    def balance_of_id(self, ident: int) -> int:
        """Current balance of an interned address id (0 if never seen)."""
        if 0 <= ident < len(self._balances):
            return self._balances[ident]
        return 0

    def balance_of(self, address: str) -> int:
        """Current balance of an address string (reporting edge)."""
        ident = self.index.interner.id_of(address)
        return 0 if ident is None else self.balance_of_id(ident)

    @property
    def supply(self) -> int:
        """Total coins issued by the view's height."""
        return self._supply[-1] if self._supply else 0

    def supply_at(self, height: int) -> int:
        """Cumulative issuance by ``height``."""
        return self._supply[height]

    def coinbase_at(self, height: int) -> int:
        """Coins issued at exactly ``height``."""
        return self._coinbase[height]

    def events_at(self, height: int) -> list[tuple[int, int]]:
        """The ``(address id, delta)`` log for one height (Python ints)."""
        ids, values = self._events[height]
        return list(zip(ids.tolist(), values.tolist()))

    def cluster_balances(self, partition) -> dict[int, int]:
        """``cluster root -> summed member balance`` in one array pass.

        ``partition`` is an
        :class:`~repro.core.clustering.InternedPartition` (or anything
        with an id-keyed ``find_root``); addresses the partition has not
        seen keep their balance out of every cluster.
        """
        find_root = partition.find_root
        out: dict[int, int] = {}
        balances = self._balances.array
        nonzero = np.nonzero(balances)[0]
        for ident, balance in zip(
            nonzero.tolist(), balances[nonzero].tolist()
        ):
            root = find_root(ident)
            if root is None:
                continue
            out[root] = out.get(root, 0) + balance
        return out


@dataclass
class TaintCase:
    """One watched theft: live frontier plus arrival accounting."""

    label: str
    sources: tuple[OutPoint, ...]
    initial_taint: int
    taint: dict[OutPoint, float] = field(default_factory=dict)
    at_entities: dict[str, float] = field(default_factory=dict)
    txs_processed: int = 0

    def as_result(self) -> TaintResult:
        """Snapshot the case as a batch-shaped
        :class:`~repro.analysis.taint.TaintResult`."""
        return TaintResult(
            initial_taint=self.initial_taint,
            taint_by_outpoint=dict(self.taint),
            taint_at_entities=dict(self.at_entities),
            txs_processed=self.txs_processed,
        )


class TaintView(MaterializedView):
    """Incremental haircut-taint propagation for watched theft cases.

    :meth:`watch` registers a case: a catch-up propagation (the batch
    :class:`~repro.analysis.taint.TaintTracker`) brings it level with
    the chain tip, after which every new block's transactions are folded
    through :func:`~repro.analysis.taint.taint_step` — the identical
    inner loop, so streamed case state equals a fresh batch propagation
    at every height.  ``name_of_address`` must be stable over time for
    that equivalence to hold (the service wires direct tag lookups, not
    height-dependent cluster naming).
    """

    OBSERVER_NAME = "taint"

    def __init__(
        self,
        index: ChainIndex,
        *,
        name_of_address=None,
        min_taint: float = 1.0,
        follow: bool = True,
        metrics=None,
    ) -> None:
        self.name_of_address = name_of_address or (lambda _a: None)
        self.min_taint = min_taint
        self._cases: dict[str, TaintCase] = {}
        self.epoch = 0
        """Bumped on every :meth:`watch`: taint answers depend on the
        watch set as well as the chain height, so caches key on
        ``(height, epoch)`` — (re)watching at an unchanged tip must not
        serve pre-watch answers."""
        super().__init__(index, follow=follow, metrics=metrics)

    def _apply_delta(self, delta: BlockDelta) -> None:
        if not self._cases:
            return
        index = self.index
        for case in self._cases.values():
            if not case.taint:
                continue
            for txd in delta.txs:
                if txd.is_coinbase:
                    continue
                frontier = taint_step(
                    index,
                    txd.tx,
                    case.taint,
                    name_of_address=self.name_of_address,
                    min_taint=self.min_taint,
                    at_entities=case.at_entities,
                )
                if frontier is not None:
                    case.txs_processed += 1

    # -- durable state -------------------------------------------------

    def export_state(self) -> dict:
        """Plain-data state: every watched case's live frontier.

        ``name_of_address`` is deliberately *not* part of the state —
        it is configuration (the service rewires it from the restored
        tag store), and the view's equivalence contract already requires
        it to be time-stable.
        """
        return {
            "height": self._height,
            "epoch": self.epoch,
            "cases": [
                (
                    case.label,
                    [(point.txid, point.vout) for point in case.sources],
                    case.initial_taint,
                    {
                        (point.txid, point.vout): value
                        for point, value in case.taint.items()
                    },
                    dict(case.at_entities),
                    case.txs_processed,
                )
                for case in self._cases.values()
            ],
        }

    @classmethod
    def from_state(
        cls,
        index: ChainIndex,
        state: dict,
        *,
        name_of_address=None,
        min_taint: float = 1.0,
        follow: bool = True,
        metrics=None,
    ) -> "TaintView":
        """Rebuild a view from :meth:`export_state` output, no catch-up.

        Restored cases resume streaming immediately — no batch
        re-propagation, which is exactly the recovery-time win the
        state store exists for.
        """
        view = cls.__new__(cls)
        view.metrics = metrics if metrics is not None else NULL_REGISTRY
        view.name_of_address = name_of_address or (lambda _a: None)
        view.min_taint = min_taint
        view._cases = {}
        view.epoch = state["epoch"]
        for label, sources, initial, taint, at_entities, processed in state["cases"]:
            view._cases[label] = TaintCase(
                label=label,
                sources=tuple(OutPoint(txid, vout) for txid, vout in sources),
                initial_taint=initial,
                taint={
                    OutPoint(txid, vout): value
                    for (txid, vout), value in taint.items()
                },
                at_entities=dict(at_entities),
                txs_processed=processed,
            )
        view._adopt(index, state["height"], follow)
        return view

    # -- case management ----------------------------------------------

    def watch(self, label: str, sources: list[OutPoint]) -> TaintCase:
        """Start tracking taint from the given outpoints under ``label``.

        Spends already in the chain are caught up with a batch
        propagation; subsequent blocks stream.  Re-watching a label
        replaces the case.
        """
        tracker = TaintTracker(
            self.index,
            name_of_address=self.name_of_address,
            min_taint=self.min_taint,
        )
        caught_up = tracker.propagate(list(sources), max_txs=10 ** 9)
        case = TaintCase(
            label=label,
            sources=tuple(sources),
            initial_taint=caught_up.initial_taint,
            taint=dict(caught_up.taint_by_outpoint),
            at_entities=dict(caught_up.taint_at_entities),
            txs_processed=caught_up.txs_processed,
        )
        self._cases[label] = case
        self.epoch += 1
        return case

    def watch_tx(self, label: str, txid: bytes) -> TaintCase:
        """Watch every output of one transaction (a whole theft tx)."""
        tx = self.index.tx(txid)
        return self.watch(
            label, [OutPoint(txid, vout) for vout in range(len(tx.outputs))]
        )

    def watch_txs(self, label: str, txids: list[bytes]) -> TaintCase:
        """Watch every output of several transactions as one case."""
        sources: list[OutPoint] = []
        for txid in txids:
            tx = self.index.tx(txid)
            sources.extend(OutPoint(txid, vout) for vout in range(len(tx.outputs)))
        return self.watch(label, sources)

    @property
    def labels(self) -> list[str]:
        """Watched case labels, registration-ordered."""
        return list(self._cases)

    def case(self, label: str) -> TaintCase:
        """The live case for ``label`` (``KeyError`` if unwatched)."""
        return self._cases[label]

    def result_for(self, label: str) -> TaintResult:
        """Batch-shaped result snapshot for one case."""
        return self._cases[label].as_result()


@dataclass(frozen=True, slots=True)
class ClusterActivity:
    """Aggregate activity of one cluster (Table 1 / chokepoint fodder)."""

    tx_count: int
    """Summed member incidences: a tx touching k member addresses
    counts k times (address-tx incidences, not distinct txs)."""

    first_seen: int
    last_seen: int


class ActivityView(MaterializedView):
    """Per-address tx incidence counts and first/last-seen heights.

    A transaction *involves* an address when the address appears among
    its resolved input senders or its outputs — the delta's
    pre-deduplicated :attr:`~repro.chain.delta.TxDelta.involved` list,
    read here without allocating a per-tx set.  Per-cluster rollups
    (:meth:`cluster_activity`) feed the service's ``top_clusters`` /
    ``cluster_profile`` queries.

    Kernelized by default: incidence is one ``np.add.at`` scatter of
    the delta's flat per-tx involvement multiset, first/last-seen one
    masked assignment over the block's deduplicated ids.
    ``use_kernels=False`` selects the scalar per-id reference loop.
    """

    OBSERVER_NAME = "activity"

    def __init__(
        self,
        index: ChainIndex,
        *,
        follow: bool = True,
        use_kernels: bool = True,
        metrics=None,
    ) -> None:
        self._use_kernels = use_kernels
        self._tx_counts = IntVector()
        self._first_seen = IntVector()
        self._last_seen = IntVector()
        super().__init__(index, follow=follow, metrics=metrics)

    def _apply_delta(self, delta: BlockDelta) -> None:
        height = delta.height
        counts = self._tx_counts
        first = self._first_seen
        last = self._last_seen
        if delta.max_id >= len(counts):
            n = delta.max_id + 1
            if self.metrics.enabled:
                self.metrics.counter(
                    "view.grown_slots", view=self.OBSERVER_NAME
                ).inc(n - len(counts))
            counts.grow_to(n)
            first.grow_to(n, fill=-1)
            last.grow_to(n, fill=-1)
        if self._use_kernels:
            # involved_flat repeats an id once per involving tx — the
            # incidence multiset — while first/last touch each involved
            # id once off the deduplicated column.
            np.add.at(counts.array, delta.involved_flat, 1)
            ids = delta.involved_ids
            first_arr = first.array
            seen = first_arr[ids]
            first_arr[ids] = np.where(seen < 0, height, seen)
            last.array[ids] = height
        else:
            for txd in delta.txs:
                for ident in txd.involved:
                    counts[ident] += 1
                    if first[ident] < 0:
                        first[ident] = height
                    last[ident] = height

    # -- durable state -------------------------------------------------

    def export_state(self) -> dict:
        """Plain-data state: the three dense per-id arrays.

        Version 2: raw int64 bytes per array (one buffer copy each).
        """
        return {
            "version": 2,
            "height": self._height,
            "tx_counts": self._tx_counts.tobytes(),
            "first_seen": self._first_seen.tobytes(),
            "last_seen": self._last_seen.tobytes(),
        }

    @classmethod
    def from_state(
        cls,
        index: ChainIndex,
        state: dict,
        *,
        follow: bool = True,
        use_kernels: bool = True,
        metrics=None,
    ) -> "ActivityView":
        """Rebuild a view from :meth:`export_state` output, no catch-up.

        Accepts both the version-2 bytes shape and the pre-columnar
        version-1 list shape, so old snapshots stay restorable.
        """
        view = cls.__new__(cls)
        view.metrics = metrics if metrics is not None else NULL_REGISTRY
        view._use_kernels = use_kernels
        if state.get("version", 1) >= 2:
            view._tx_counts = IntVector.from_bytes(state["tx_counts"])
            view._first_seen = IntVector.from_bytes(state["first_seen"])
            view._last_seen = IntVector.from_bytes(state["last_seen"])
        else:
            view._tx_counts = IntVector.from_list(state["tx_counts"])
            view._first_seen = IntVector.from_list(state["first_seen"])
            view._last_seen = IntVector.from_list(state["last_seen"])
        view._adopt(index, state["height"], follow)
        return view

    # -- queries -------------------------------------------------------

    def tx_count_of_id(self, ident: int) -> int:
        """Transactions involving an address id (0 if never seen)."""
        if 0 <= ident < len(self._tx_counts):
            return self._tx_counts[ident]
        return 0

    def seen_range_of_id(self, ident: int) -> tuple[int, int] | None:
        """``(first, last)`` involvement heights, or ``None`` if unseen."""
        if 0 <= ident < len(self._first_seen) and self._first_seen[ident] >= 0:
            return self._first_seen[ident], self._last_seen[ident]
        return None

    def cluster_activity(self, partition) -> dict[int, ClusterActivity]:
        """``cluster root -> ClusterActivity`` in one array pass."""
        find_root = partition.find_root
        counts: dict[int, int] = {}
        first: dict[int, int] = {}
        last: dict[int, int] = {}
        count_arr = self._tx_counts.array
        first_arr = self._first_seen.array
        last_arr = self._last_seen.array
        nonzero = np.nonzero(count_arr)[0]
        for ident, count, seen_first, seen_last in zip(
            nonzero.tolist(),
            count_arr[nonzero].tolist(),
            first_arr[nonzero].tolist(),
            last_arr[nonzero].tolist(),
        ):
            root = find_root(ident)
            if root is None:
                continue
            counts[root] = counts.get(root, 0) + count
            if root not in first or seen_first < first[root]:
                first[root] = seen_first
            if root not in last or seen_last > last[root]:
                last[root] = seen_last
        return {
            root: ClusterActivity(
                tx_count=counts[root],
                first_seen=first[root],
                last_seen=last[root],
            )
            for root in counts
        }

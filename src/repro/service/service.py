"""The forensics query service: warm views + cached query API.

:class:`ForensicsService` is the serving layer the ROADMAP's
production-scale north star asks for.  It owns one
:class:`~repro.core.incremental.IncrementalClusteringEngine` and the
three streaming materialized views, all attached to the same
:meth:`ChainIndex.subscribe <repro.chain.index.ChainIndex.subscribe>`
fan-out, so every ``add_block``:

1. clusters the block incrementally (H1 unions + live H2 labels),
2. folds balances, taint frontiers, and activity into warm state,
3. implicitly invalidates the query cache (answers are keyed by
   height).

Queries then run against warm state instead of re-walking the chain:
``cluster_of`` reads the memoized tip partition, ``balance_of`` indexes
a dense array, ``trace_taint`` snapshots a live frontier, and the
cluster aggregates behind ``top_clusters``/``cluster_profile`` are
built once per height and shared.  ``benchmarks/bench_query_service.py``
pins the payoff: a mixed 100+-query workload answered warm beats the
equivalent cold batch recomputations by well over an order of
magnitude.

Construction catches up on whatever the index already holds, so the
service can be stood up against a fully ingested chain or attached at
genesis and fed block by block — both end in identical state (the
view == batch property tests stream exactly this way).
"""

from __future__ import annotations

from dataclasses import asdict

from ..chain.index import ChainIndex
from ..core.clustering import Clustering
from ..core.heuristic2 import Heuristic2Config, dice_addresses_from_tags
from ..core.incremental import IncrementalClusteringEngine
from ..obs import NULL_LOGGER, NULL_REGISTRY
from ..tagging.tags import TagStore
from .aggregates import ClusterAggregateView
from .cache import QueryCache
from .queries import Query, QueryEngine
from .views import ActivityView, BalanceView, TaintView


class ForensicsService:
    """Serves forensics queries from streaming materialized state."""

    def __init__(
        self,
        index: ChainIndex,
        *,
        tags: TagStore | None = None,
        h2_config: Heuristic2Config | None = None,
        dice_addresses: frozenset[str] = frozenset(),
        name_of_address=None,
        min_taint: float = 1.0,
        cache_size: int = 4096,
        differential_aggregates: bool = True,
        time_travel: bool = True,
        metrics=None,
        log=None,
    ) -> None:
        """``tags`` drives cluster naming (profiles, top-cluster labels)
        and, unless ``name_of_address`` overrides it, the taint stop
        condition.  The taint namer must be *stable over chain growth*
        for streamed state to equal batch recomputation, so it defaults
        to direct tag lookups — not height-dependent cluster naming.

        ``differential_aggregates=False`` skips the
        :class:`~repro.service.aggregates.ClusterAggregateView`, forcing
        every cluster query onto the batch ``_agg`` rebuild path — the
        benchmark baseline and the fallback-path test fixture; such a
        service cannot be snapshotted.

        ``time_travel=False`` keeps the differential view but drops its
        per-height delta log, so historical-horizon queries fall back
        to the batch ``_agg@h`` rebuild — the time-travel benchmark
        baseline.

        ``metrics`` is an optional
        :class:`~repro.obs.MetricsRegistry`: when given (and enabled)
        it is attached to the index and every component, so ingest,
        folds, flushes, queries, and cache accounting all report into
        one registry (see ``docs/metrics.md``).

        ``log`` is an optional structured event logger
        (:class:`~repro.obs.JsonLinesLogger`): when given (and enabled)
        it is attached to the index, so ingest, subscriber failures,
        flushes, and query errors all land in one JSON-lines stream
        (see ``docs/observability.md``).
        """
        self.index = index
        self.tags = tags
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        if self.metrics.enabled:
            index.metrics = self.metrics
        self.log = log if log is not None else NULL_LOGGER
        if self.log.enabled:
            index.log = self.log
        self.auditor = None
        """The attached :class:`~repro.obs.InvariantAuditor`, when one
        was constructed over this service (it registers itself)."""
        self._custom_namer = name_of_address is not None
        self.engine = IncrementalClusteringEngine(
            index,
            h2_config=h2_config,
            dice_addresses=dice_addresses,
            metrics=self.metrics,
        )
        # The aggregate view folds each block's merge deltas, so it must
        # observe blocks after the engine (subscription order is
        # registration order).
        self.aggregates = (
            ClusterAggregateView(
                index,
                engine=self.engine,
                time_travel=time_travel,
                metrics=self.metrics,
            )
            if differential_aggregates
            else None
        )
        self.balances = BalanceView(index, metrics=self.metrics)
        self.activity = ActivityView(index, metrics=self.metrics)
        tag_map = tags.as_mapping() if tags is not None else {}
        self.taint = TaintView(
            index,
            name_of_address=name_of_address or tag_map.get,
            min_taint=min_taint,
            metrics=self.metrics,
        )
        self.cache = QueryCache(cache_size)
        self._wire_cache_metrics()
        self.queries = QueryEngine(self)

    def _wire_cache_metrics(self) -> None:
        """Expose the cache's own accounting as sampled gauges — read at
        snapshot time, zero cost on the lookup hot path."""
        if not self.metrics.enabled:
            return
        cache = self.cache
        metrics = self.metrics
        metrics.gauge_fn("cache.hits", lambda: cache.hits)
        metrics.gauge_fn("cache.misses", lambda: cache.misses)
        metrics.gauge_fn("cache.evictions", lambda: cache.evictions)
        metrics.gauge_fn("cache.entries", lambda: len(cache))
        metrics.gauge_fn("cache.hit_rate", lambda: cache.hit_rate)

    @classmethod
    def from_world(
        cls,
        world,
        *,
        include_public_tags: bool = True,
        crawl_seed: int = 0,
        **kwargs,
    ) -> "ForensicsService":
        """Stand the service up the way an analyst would against a
        simulated :class:`~repro.simulation.economy.World`: attack tags
        (+ optional public crawl) for naming and the dice exception, and
        a watched taint case per scripted theft.
        """
        from ..simulation.params import DICE_GAMES
        from ..tagging.sources import PublicTagCrawl

        attack = world.extras.get("attack")
        tags = attack.tags if attack is not None else TagStore()
        if include_public_tags:
            tags = tags.merged_with(PublicTagCrawl(world, seed=crawl_seed).crawl())
        kwargs.setdefault(
            "dice_addresses", dice_addresses_from_tags(tags, DICE_GAMES)
        )
        service = cls(world.index, tags=tags, **kwargs)
        for theft in world.extras.get("thefts", ()):
            service.watch_theft(
                theft.record.spec.name, theft.record.theft_txids
            )
        return service

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        """Chain tip height (-1 when empty); the cache key component."""
        return self.index.height

    @property
    def clustering(self) -> Clustering:
        """The tip clustering (memoized per height inside the engine)."""
        return self.engine.cluster_as_of()

    def watch_theft(self, label: str, theft_txids) -> None:
        """Register a theft case: taint every output of the given
        transactions and keep the frontier warm from here on."""
        self.taint.watch_txs(label, list(theft_txids))

    def detach(self) -> None:
        """Stop following the index (state freezes at current height)."""
        self.engine.detach()
        if self.aggregates is not None:
            self.aggregates.detach()
        self.balances.detach()
        self.activity.detach()
        self.taint.detach()

    # ------------------------------------------------------------------
    # durable state (snapshot / restore)
    # ------------------------------------------------------------------

    STATE_VERSION = 1

    def export_state(self) -> dict:
        """The service-level configuration a snapshot must carry.

        Component *state* (engine, views, chain) is exported by the
        components themselves; this is everything else a restore needs
        to reassemble an equivalent service: the H2 configuration, the
        dice set, the tag store, and the cache/taint settings.
        """
        if self._custom_namer:
            raise ValueError(
                "cannot snapshot a service with a custom name_of_address "
                "callable; only the default tag-map namer is serializable"
            )
        return {
            "version": self.STATE_VERSION,
            "h2_config": asdict(self.engine.h2_config),
            "dice_addresses": sorted(self.engine.dice_addresses),
            "min_taint": self.taint.min_taint,
            "cache_size": self.cache.maxsize,
            "tags": None if self.tags is None else self.tags.export_state(),
        }

    @classmethod
    def from_snapshot(
        cls,
        index: ChainIndex,
        states: dict,
        *,
        follow: bool = True,
        metrics=None,
        log=None,
    ) -> "ForensicsService":
        """Reassemble a service from restored component states.

        ``states`` maps component names (``service``, ``engine``,
        ``balances``, ``activity``, ``taint``) to their exported state
        dicts; ``index`` must be the restored chain at the snapshot
        height.  Components subscribe to the index in the same order as
        :meth:`__init__`, so a restored service streams tail blocks
        exactly like the one that was snapshotted.
        """
        service_state = states["service"]
        version = service_state.get("version")
        if version != cls.STATE_VERSION:
            raise ValueError(
                f"unsupported service state version {version!r} "
                f"(expected {cls.STATE_VERSION})"
            )
        tags_state = service_state["tags"]
        tags = None if tags_state is None else TagStore.from_state(tags_state)
        service = cls.__new__(cls)
        service.index = index
        service.tags = tags
        service.metrics = metrics if metrics is not None else NULL_REGISTRY
        if service.metrics.enabled:
            index.metrics = service.metrics
        service.log = log if log is not None else NULL_LOGGER
        if service.log.enabled:
            index.log = service.log
        service.auditor = None
        service._custom_namer = False
        service.engine = IncrementalClusteringEngine.from_state(
            index,
            states["engine"],
            h2_config=Heuristic2Config(**service_state["h2_config"]),
            dice_addresses=frozenset(service_state["dice_addresses"]),
            follow=follow,
            metrics=service.metrics,
        )
        service.aggregates = ClusterAggregateView.from_state(
            index,
            states["aggregates"],
            engine=service.engine,
            follow=follow,
            metrics=service.metrics,
        )
        service.balances = BalanceView.from_state(
            index, states["balances"], follow=follow, metrics=service.metrics
        )
        service.activity = ActivityView.from_state(
            index, states["activity"], follow=follow, metrics=service.metrics
        )
        timetravel_state = states.get("timetravel")
        if timetravel_state is not None:
            service.aggregates.load_time_travel(timetravel_state)
        else:
            # Pre-v4 snapshots carry no delta log: re-seed the horizon
            # base at the restored height, so time travel covers the
            # tail streamed from here on while heights below the
            # snapshot stay on the batch ``_agg@h`` fallback.
            service.aggregates.seed_time_travel_base(
                service.balances, service.activity
            )
        tag_map = tags.as_mapping() if tags is not None else {}
        service.taint = TaintView.from_state(
            index,
            states["taint"],
            name_of_address=tag_map.get,
            min_taint=service_state["min_taint"],
            follow=follow,
            metrics=service.metrics,
        )
        service.cache = QueryCache(service_state["cache_size"])
        service._wire_cache_metrics()
        service.queries = QueryEngine(service)
        return service

    # ------------------------------------------------------------------
    # the query API (see service/queries.py for answer shapes)
    # ------------------------------------------------------------------

    def answer(self, query: Query, *, request_id: str | None = None):
        """Answer one :class:`~repro.service.queries.Query`."""
        return self.queries.answer(query, request_id=request_id)

    def answer_many(
        self, queries: list[Query], *, request_id: str | None = None
    ) -> list:
        """Batch entrypoint: answers in input order, grouped by kind."""
        return self.queries.answer_many(queries, request_id=request_id)

    def cluster_of(self, address: str, height: int | None = None):
        """Cluster root id for an address, or ``None`` if never seen.

        ``height`` asks the question as of that block instead of the
        tip (likewise on the other cluster kinds below)."""
        args = (address,) if height is None else (address, height)
        return self.answer(Query("cluster_of", args))

    def balance_of(self, address: str) -> int:
        """Satoshis the address holds at the tip."""
        return self.answer(Query("balance_of", (address,)))

    def cluster_balance(
        self, address: str, height: int | None = None
    ) -> int | None:
        """Satoshis held by the whole cluster containing ``address``."""
        args = (address,) if height is None else (address, height)
        return self.answer(Query("cluster_balance", args))

    def trace_taint(self, label: str) -> dict:
        """Warm taint summary for a watched theft case."""
        return self.answer(Query("trace_taint", (label,)))

    def top_clusters(
        self, n: int = 10, by: str = "size", height: int | None = None
    ) -> tuple:
        """The ``n`` largest clusters by ``size``/``balance``/``activity``."""
        args = (n, by) if height is None else (n, by, height)
        return self.answer(Query("top_clusters", args))

    def cluster_profile(
        self, address: str, height: int | None = None
    ) -> dict | None:
        """Everything warm about one address's cluster."""
        args = (address,) if height is None else (address, height)
        return self.answer(Query("cluster_profile", args))

    def stats(self) -> dict:
        """Serving metrics: height, watched cases, cache accounting.

        When the service carries an enabled metrics registry the
        snapshot rides along under ``"metrics"`` (counters, gauges, and
        histogram summaries — see ``docs/metrics.md``)."""
        stats = {
            "height": self.height,
            "addresses": self.index.address_count,
            "clusters": (
                self.aggregates.cluster_count
                if self.aggregates is not None
                and self.aggregates.height == self.height
                else None
            ),
            "taint_cases": len(self.taint.labels),
            **{f"cache_{k}": v for k, v in self.cache.stats().items()},
        }
        if self.metrics.enabled:
            stats["metrics"] = self.metrics.snapshot()
        stats["health"] = self.health_report().as_dict()
        return stats

    def health_report(self, store=None):
        """Component-level :class:`~repro.obs.HealthReport` rollup.

        ``store`` is an optional :class:`~repro.storage.StateStore`
        whose newest snapshot grades the durability component; without
        one, snapshot freshness is reported as degraded."""
        from ..obs.health import collect_health

        return collect_health(self, store=store, auditor=self.auditor)

"""Transaction assembly for simulated wallets.

Builds signed transactions out of a wallet's coins, implementing the
change-address idioms the paper's Heuristic 2 keys on:

* ``fresh``  — change to a newly minted, never-seen address (the Satoshi
  client behaviour that makes change identifiable);
* ``self``   — change back to an input address ("self-change", 23% of
  2013 transactions per §4.1);
* ``reuse``  — change to an existing receive address (breaks H2's
  condition 4 and creates genuine false-positive pressure);
* ``none``   — exact spend, no change output.

Signing: each input carries ``<sig> <pubkey>`` where the signature is the
wallet key's MAC over the transaction skeleton (the serialization with
empty scriptSigs), so inputs are attributable and verifiable without real
ECDSA.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..chain import crypto, script
from ..chain.model import OutPoint, Transaction, TxIn, TxOut
from ..chain.serialize import serialize_tx
from .params import ChangePolicy
from .wallet import Coin, Wallet

CHANGE_FRESH = "fresh"
CHANGE_SELF = "self"
CHANGE_REUSE = "reuse"
CHANGE_RECENT = "recent"
CHANGE_NONE = "none"
CHANGE_FIXED = "fixed"
"""Change to an explicitly designated address (services routing change
back into their hot wallet)."""

DUST = 546
"""Outputs below this are folded into the fee rather than created."""


@dataclass(frozen=True)
class BuiltTransaction:
    """A signed transaction plus bookkeeping about how it was built."""

    tx: Transaction
    spent_coins: tuple[Coin, ...]
    change_address: str | None
    change_kind: str
    change_vout: int | None

    @property
    def fee(self) -> int:
        spent = sum(c.value for c in self.spent_coins)
        return spent - self.tx.total_output_value


def choose_change_kind(policy: ChangePolicy, rng: random.Random) -> str:
    """Sample a change idiom from the policy mix."""
    roll = rng.random()
    if roll < policy.fresh:
        return CHANGE_FRESH
    roll -= policy.fresh
    if roll < policy.self_change:
        return CHANGE_SELF
    roll -= policy.self_change
    if roll < policy.reuse:
        return CHANGE_REUSE
    roll -= policy.reuse
    if roll < policy.recent:
        return CHANGE_RECENT
    return CHANGE_NONE


def _sign_inputs(
    wallet: Wallet, coins: list[Coin], outputs: list[TxOut], lock_time: int
) -> tuple[TxIn, ...]:
    """Produce signed inputs spending ``coins`` in order."""
    skeleton = Transaction(
        inputs=tuple(TxIn(prevout=c.outpoint) for c in coins),
        outputs=tuple(outputs),
        lock_time=lock_time,
    )
    message = crypto.sha256d(serialize_tx(skeleton))
    signed = []
    for coin in coins:
        keypair = wallet.key_for(coin.address)
        signature = keypair.sign(message)
        signed.append(
            TxIn(
                prevout=coin.outpoint,
                script_sig=script.sig_script(signature, keypair.pubkey),
            )
        )
    return tuple(signed)


def build_payment(
    wallet: Wallet,
    payments: list[tuple[str, int]],
    *,
    fee: int = 0,
    change_kind: str = CHANGE_FRESH,
    rng: random.Random | None = None,
    prefer_largest: bool = False,
    coins: list[Coin] | None = None,
    shuffle_outputs: bool = True,
    change_address: str | None = None,
) -> BuiltTransaction:
    """Build a signed payment from ``wallet`` to one or more recipients.

    ``payments`` is a list of ``(address, satoshis)``.  Coins are
    selected automatically unless ``coins`` pins the exact inputs (used
    by scripted actors such as the hoard dissolution).  The change
    output position is shuffled among the payment outputs — as real
    clients do — unless ``shuffle_outputs`` is disabled for tests.
    Passing ``change_address`` routes change to that exact address (the
    wallet must own it); ``change_kind`` is then ignored.
    """
    if not payments:
        raise ValueError("payments must not be empty")
    for address, value in payments:
        if value <= 0:
            raise ValueError(f"non-positive payment {value} to {address}")
    if fee < 0:
        raise ValueError("fee must be non-negative")
    if change_kind not in (
        CHANGE_FRESH, CHANGE_SELF, CHANGE_REUSE, CHANGE_RECENT, CHANGE_NONE,
    ):
        raise ValueError(f"unknown change kind {change_kind!r}")
    rng = rng or random.Random(0)

    total_payment = sum(value for _, value in payments)
    needed = total_payment + fee
    if coins is None:
        coins = wallet.select_coins(needed, prefer_largest=prefer_largest)
    total_in = sum(c.value for c in coins)
    if total_in < needed:
        raise ValueError(f"pinned coins cover {total_in} < needed {needed}")

    if change_address is not None:
        if not wallet.owns(change_address):
            raise ValueError(
                f"change address {change_address} is not owned by {wallet.owner}"
            )
        change_kind = CHANGE_FIXED
    change_value = total_in - needed
    actual_kind = change_kind
    if change_value <= DUST:
        # Sub-dust remainder goes to the miner; no change output.
        actual_kind = CHANGE_NONE
        change_address = None
        change_value = 0
    else:
        if change_kind == CHANGE_FIXED:
            pass  # explicit address already set
        elif change_kind == CHANGE_NONE:
            # An exact spend was requested but coin selection left change
            # — do what real clients do and mint a fresh change address.
            actual_kind = CHANGE_FRESH
        if actual_kind == CHANGE_FIXED:
            pass
        elif actual_kind == CHANGE_FRESH:
            change_address = wallet.fresh_address(kind="change")
        elif actual_kind == CHANGE_SELF:
            change_address = coins[0].address
        elif actual_kind == CHANGE_REUSE:
            change_address = wallet.reused_receive_address()
        elif actual_kind == CHANGE_RECENT:
            change_address = wallet.last_change_address()
            if change_address is None:
                actual_kind = CHANGE_FRESH
                change_address = wallet.fresh_address(kind="change")
        else:
            raise ValueError(f"unknown change kind {change_kind!r}")

    outputs = [
        TxOut(value=value, script_pubkey=script.p2pkh_script_for_address(address))
        for address, value in payments
    ]
    change_vout: int | None = None
    if change_address is not None:
        change_out = TxOut(
            value=change_value,
            script_pubkey=script.p2pkh_script_for_address(change_address),
        )
        if shuffle_outputs:
            change_vout = rng.randrange(len(outputs) + 1)
        else:
            change_vout = len(outputs)
        outputs.insert(change_vout, change_out)

    inputs = _sign_inputs(wallet, coins, outputs, lock_time=0)
    tx = Transaction(inputs=inputs, outputs=tuple(outputs))
    return BuiltTransaction(
        tx=tx,
        spent_coins=tuple(coins),
        change_address=change_address,
        change_kind=actual_kind,
        change_vout=change_vout,
    )


def build_sweep(
    wallet: Wallet,
    destination: str,
    *,
    coins: list[Coin] | None = None,
    fee: int = 0,
    rng: random.Random | None = None,
) -> BuiltTransaction:
    """Sweep coins into a single destination output (aggregation).

    Used for pool consolidation, exchange cold-storage sweeps, and the
    "A" (aggregation) moves in theft laundering.
    """
    coins = coins if coins is not None else wallet.coins()
    if not coins:
        raise ValueError("nothing to sweep")
    total = sum(c.value for c in coins)
    if total <= fee:
        raise ValueError(f"sweep value {total} does not cover fee {fee}")
    outputs = [
        TxOut(
            value=total - fee,
            script_pubkey=script.p2pkh_script_for_address(destination),
        )
    ]
    inputs = _sign_inputs(wallet, coins, outputs, lock_time=0)
    tx = Transaction(inputs=inputs, outputs=tuple(outputs))
    return BuiltTransaction(
        tx=tx,
        spent_coins=tuple(coins),
        change_address=None,
        change_kind=CHANGE_NONE,
        change_vout=None,
    )

"""Ownership oracle for the simulated economy.

The real paper had almost no ground truth — the authors could only tag
addresses they transacted with and estimate false-positive rates by
replaying time.  The simulator knows the owner of every address it
mints, which lets us *measure* what the paper could only bound: the true
precision/recall of each heuristic and refinement.

Ground truth is strictly an evaluation artifact: nothing in
:mod:`repro.core` reads it during clustering.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class EntityInfo:
    """Static facts about one economic entity."""

    name: str
    category: str


class GroundTruth:
    """Authoritative address→entity ownership map."""

    def __init__(self) -> None:
        self._owner_of: dict[str, str] = {}
        self._entities: dict[str, EntityInfo] = {}
        self._addresses_of: dict[str, set[str]] = defaultdict(set)

    # ------------------------------------------------------------------
    # registration (simulator side)
    # ------------------------------------------------------------------

    def register_entity(self, name: str, category: str) -> None:
        """Declare an entity before any of its addresses appear."""
        existing = self._entities.get(name)
        if existing is not None and existing.category != category:
            raise ValueError(
                f"entity {name!r} re-registered with category "
                f"{category!r} != {existing.category!r}"
            )
        self._entities[name] = EntityInfo(name=name, category=category)

    def register_address(self, address: str, owner: str) -> None:
        """Record that ``owner`` controls ``address``."""
        if owner not in self._entities:
            raise KeyError(f"unknown entity {owner!r}; register it first")
        previous = self._owner_of.get(address)
        if previous is not None and previous != owner:
            raise ValueError(
                f"address {address} already owned by {previous!r}, "
                f"cannot re-assign to {owner!r}"
            )
        self._owner_of[address] = owner
        self._addresses_of[owner].add(address)

    # ------------------------------------------------------------------
    # queries (evaluation side)
    # ------------------------------------------------------------------

    def owner_of(self, address: str) -> str | None:
        """The entity owning ``address``, or ``None`` if unregistered."""
        return self._owner_of.get(address)

    def category_of(self, entity: str) -> str | None:
        """The category of an entity, or ``None`` if unknown."""
        info = self._entities.get(entity)
        return info.category if info else None

    def category_of_address(self, address: str) -> str | None:
        """Category of the entity owning ``address``."""
        owner = self._owner_of.get(address)
        return self.category_of(owner) if owner else None

    def addresses_of(self, entity: str) -> frozenset[str]:
        """All addresses registered to an entity."""
        return frozenset(self._addresses_of.get(entity, ()))

    def same_owner(self, a: str, b: str) -> bool:
        """True when both addresses are registered to one entity."""
        owner_a = self._owner_of.get(a)
        return owner_a is not None and owner_a == self._owner_of.get(b)

    def entities(self) -> list[EntityInfo]:
        """All registered entities."""
        return list(self._entities.values())

    def entities_in_category(self, category: str) -> list[str]:
        """Names of entities in a category, sorted for determinism."""
        return sorted(
            info.name for info in self._entities.values() if info.category == category
        )

    @property
    def address_count(self) -> int:
        return len(self._owner_of)

    @property
    def entity_count(self) -> int:
        return len(self._entities)

    def true_partition(self) -> dict[str, frozenset[str]]:
        """The ideal clustering: entity → its full address set."""
        return {
            entity: frozenset(addrs)
            for entity, addrs in self._addresses_of.items()
            if addrs
        }

"""Canned worlds: the scenarios every test, example, and bench runs on.

* :func:`default_economy` — the full Table 1 service roster plus a user
  population; the workload for the clustering and tagging experiments.
* :func:`silkroad_world` — default economy plus the 1DkyBEKt hoard
  lifecycle (accumulation → dissolution → three peeling chains), the
  workload for Table 2 and Figure 2.
* :func:`theft_world` — default economy plus the seven Table 3 thefts,
  each scripted with its recorded movement grammar.
* :func:`micro_economy` — a small, fast world for unit tests.

All scenarios are deterministic in their ``seed``.
"""

from __future__ import annotations

import random

from ..chain.model import COIN
from .actors import (
    BEHAVIOUR_HONEST,
    BEHAVIOUR_RETURN_SAME,
    BEHAVIOUR_STEAL,
    CasinoSite,
    DiceGame,
    DonationService,
    Exchange,
    FixedRateExchange,
    HoardConfig,
    InvestmentScheme,
    MiningPool,
    MiscService,
    Mixer,
    PaymentGateway,
    SilkRoadHoard,
    TheftScript,
    TheftSpec,
    UserActor,
    Vendor,
    WalletService,
)
from .economy import Economy, World, finish
from .params import (
    ChangePolicy,
    DICE_GAMES,
    EconomyParams,
    MIX_SERVICES,
)

# Weights for peel-chain recipients, shaped after Table 2: exchanges
# dominate the known peels (Mt. Gox most), wallets next (Instawallet),
# then gambling and vendors; most peels go to unknown users.
TABLE2_SERVICE_WEIGHTS: dict[str, float] = {
    "Mt Gox": 30.0,
    "Instawallet": 14.0,
    "Bitstamp": 6.0,
    "CA VirtEx": 5.0,
    "Bitcoin 24": 4.0,
    "OKPay": 3.0,
    "Bitcoin Central": 2.0,
    "Bitcoin.de": 1.0,
    "Bitmarket": 1.0,
    "BTC-e": 1.0,
    "Mercado Bitcoin": 1.0,
    "WalletBit": 1.0,
    "BitZino": 2.0,
    "Seals with Clubs": 1.0,
    "Coinabul": 1.0,
    "Medsforbitcoin": 3.0,
    "Silk Road": 9.0,
}

UNKNOWN_RECIPIENT_WEIGHT = 170.0
"""Relative weight of peels going to unknown (unnamed) users; the paper
saw roughly two thirds of peels go to entities it could not name."""


def make_peel_recipient_chooser(
    economy: Economy,
    *,
    service_weights: dict[str, float] | None = None,
    unknown_weight: float = UNKNOWN_RECIPIENT_WEIGHT,
):
    """Build a ``(rng, value) -> (address, label)`` recipient chooser.

    Services are drawn by weight and asked for a live deposit address;
    "unknown" draws pick a random user, whose addresses the analyst
    cannot name — reproducing the known/unknown mix of Table 2.
    """
    weights = dict(service_weights or TABLE2_SERVICE_WEIGHTS)
    available = {
        name: weight for name, weight in weights.items()
        if name in {a.name for a in economy.actors()}
    }
    users = economy.actors_in_category("users")
    entries = sorted(available.items())
    total_service = sum(w for _, w in entries)
    total = total_service + (unknown_weight if users else 0.0)

    def choose(rng: random.Random, _value: int) -> tuple[str, str]:
        roll = rng.random() * total
        acc = 0.0
        for name, weight in entries:
            acc += weight
            if roll <= acc:
                service = economy.actor(name)
                return service.payment_address(), name
        user = rng.choice(users)
        return user.payment_address(), user.name

    return choose


# ----------------------------------------------------------------------
# roster construction
# ----------------------------------------------------------------------

def build_service_roster(economy: Economy) -> dict[str, list]:
    """Register the full Table 1 service roster; returns it by category."""
    params = economy.params
    rng = economy.child_rng("roster")
    roster: dict[str, list] = {
        "mining": [],
        "wallets": [],
        "exchanges": [],
        "fixed": [],
        "vendors": [],
        "gambling": [],
        "miscellaneous": [],
        "investment": [],
    }

    for name in params.mining_pools:
        pool = MiningPool(name, params.pool)
        economy.register(pool, hashrate=rng.uniform(0.5, 3.0))
        roster["mining"].append(pool)

    for name in params.wallet_services:
        service = WalletService(name)
        economy.register(service)
        roster["wallets"].append(service)

    for name in params.bank_exchanges:
        # Big exchanges keep more independent hot-wallet segments — the
        # paper found 20 distinct Mt. Gox clusters.
        n_segments = 6 if name in ("Mt Gox", "BTC-e", "Bitstamp") else 2
        exchange = Exchange(name, params.exchange, n_segments=n_segments)
        economy.register(exchange)
        roster["exchanges"].append(exchange)

    for name in params.fixed_exchanges:
        fixed = FixedRateExchange(name)
        economy.register(fixed)
        roster["fixed"].append(fixed)

    gateway = PaymentGateway("Bitpay")
    economy.register(gateway)
    roster["vendors"].append(gateway)
    # Vendors that must accept coins directly (Table 2 counts peels to
    # them, which requires addresses they themselves control).
    direct_vendors = {"Silk Road", "Coinabul", "Medsforbitcoin", "Casascius"}
    for name in params.vendors:
        if name in ("Bitpay", "WalletBit"):
            continue  # Bitpay is the gateway; WalletBit registered as wallet
        uses_gateway = name not in direct_vendors and rng.random() < 0.6
        vendor = Vendor(name, gateway=gateway if uses_gateway else None)
        economy.register(vendor)
        roster["vendors"].append(vendor)

    for name in params.gambling_sites:
        if name in DICE_GAMES:
            site = DiceGame(name, params.gambling)
        else:
            site = CasinoSite(name)
        economy.register(site)
        roster["gambling"].append(site)

    for name in params.misc_services:
        if name in MIX_SERVICES:
            behaviour = {
                "BitMix": BEHAVIOUR_STEAL,
                "Bitcoin Laundry": BEHAVIOUR_RETURN_SAME,
            }.get(name, BEHAVIOUR_HONEST)
            service = Mixer(name, behaviour=behaviour)
        elif name == "Wikileaks":
            service = DonationService(name)
        else:
            service = MiscService(name)
        economy.register(service)
        roster["miscellaneous"].append(service)

    for name in params.investment_schemes:
        scheme = InvestmentScheme(name)
        economy.register(scheme)
        roster["investment"].append(scheme)

    return roster


GAMBLER_FRACTION = 4
"""Every Nth user is a dice addict (heavy Satoshi-Dice-style traffic)."""


def populate_users(economy: Economy, n_users: int) -> list[UserActor]:
    """Register ``n_users`` ordinary users (every 4th one a gambler)."""
    from dataclasses import replace

    base = economy.params.user
    gambler = replace(
        base,
        activity_rate=0.22,
        gamble_weight=0.70,
        shop_weight=0.10,
        deposit_weight=0.08,
        withdraw_weight=0.07,
        mix_weight=0.05,
    )
    users = []
    for i in range(n_users):
        params = gambler if i % GAMBLER_FRACTION == 0 else base
        user = UserActor(f"user{i:04d}", params)
        economy.register(user)
        users.append(user)
    return users


def wire_pool_members(economy: Economy) -> None:
    """Enroll users, exchanges, and misc services as pool members so that
    mined coins flow into the economy (miners sell at exchanges)."""
    rng = economy.child_rng("pool-members")
    pools = economy.actors_in_category("mining")
    users = economy.actors_in_category("users")
    exchanges = economy.actors_in_category("exchanges")
    misc = economy.actors_in_category("miscellaneous")
    for pool in pools:
        if users:
            for user in rng.sample(users, max(1, len(users) // 4)):
                pool.add_member(user)
        if exchanges:
            for exchange in rng.sample(exchanges, min(4, len(exchanges))):
                pool.add_member(exchange)
        if misc and rng.random() < 0.5:
            pool.add_member(rng.choice(misc))


# ----------------------------------------------------------------------
# canned worlds
# ----------------------------------------------------------------------

def default_economy(
    seed: int = 0,
    *,
    n_blocks: int = 600,
    n_users: int = 60,
    params: EconomyParams | None = None,
    with_attack: bool = True,
    run: bool = True,
) -> World:
    """The full-roster economy used for the clustering experiments.

    With ``with_attack`` (the default) a
    :class:`~repro.tagging.attack.ReidentificationAttack` analyst runs
    inside the world, so ``world.extras["attack"]`` carries the §3 tags.
    """
    params = params or EconomyParams(seed=seed, n_blocks=n_blocks, n_users=n_users)
    economy = Economy(params)
    roster = build_service_roster(economy)
    populate_users(economy, params.n_users)
    wire_pool_members(economy)
    extras: dict = {"roster": roster}
    if with_attack:
        from ..tagging.attack import ReidentificationAttack

        extras["attack"] = ReidentificationAttack.install(economy)
    if run:
        economy.run()
    return finish(economy, **extras)


def micro_economy(
    seed: int = 0, *, n_blocks: int = 150, n_users: int = 12, run: bool = True
) -> World:
    """A small fast world for unit tests: trimmed rosters, fewer blocks."""
    params = EconomyParams(
        seed=seed,
        n_blocks=n_blocks,
        n_users=n_users,
        mining_pools=("Deepbit", "Slush", "Eligius"),
        wallet_services=("Instawallet", "My Wallet"),
        bank_exchanges=("Mt Gox", "Bitstamp", "BTC-e"),
        fixed_exchanges=("BitInstant",),
        vendors=("Silk Road", "Coinabul", "Bitmit"),
        gambling_sites=("Satoshi Dice", "Seals with Clubs"),
        misc_services=("Bitlaundry", "BitMix", "Wikileaks"),
        investment_schemes=("Bitcoin Savings & Trust",),
    )
    return default_economy(seed=seed, params=params, run=run)


def silkroad_world(
    seed: int = 1,
    *,
    n_blocks: int = 1_500,
    n_users: int = 80,
    amount_scale: float = 0.01,
    chain_hops: int = 100,
    run: bool = True,
) -> World:
    """Default economy plus the 1DkyBEKt hoard lifecycle (Table 2, Fig 2).

    Uses 6-hour blocks so the scenario spans the paper's 2011–2013
    window without needing 100k+ blocks.
    """
    params = EconomyParams(
        seed=seed,
        n_blocks=n_blocks,
        n_users=n_users,
        block_interval=21_600,
    )
    economy = Economy(params)
    roster = build_service_roster(economy)
    users = populate_users(economy, params.n_users)
    wire_pool_members(economy)
    from ..tagging.attack import ReidentificationAttack

    attack = ReidentificationAttack.install(economy)

    # Silk Road's sale income funds the hoard; crank purchase volume by
    # dedicating a cohort of heavy buyers to the marketplace.  Darknet
    # buyers are hygienic: fresh change only, never reused addresses —
    # otherwise their sheer volume would weld their own clusters into
    # Silk Road's via mislabeled change and drown the Table 2 naming.
    from dataclasses import replace as _replace

    silkroad = economy.actor("Silk Road")
    rng = economy.child_rng("silkroad-buyers")
    buyers = rng.sample(users, max(4, len(users) // 3))
    careful = ChangePolicy(fresh=0.95, self_change=0.05, reuse=0.0, recent=0.0)
    for buyer in buyers:
        buyer.params = _replace(buyer.params, change_policy=careful)
    for pool in economy.actors_in_category("mining"):
        for buyer in buyers:
            pool.add_member(buyer)

    def buyers_step(economy_: Economy, height: int) -> None:
        for buyer in buyers:
            if buyer.rng.random() < 0.5 and buyer.wallet.balance > COIN // 2:
                amount = buyer.rng.randint(COIN // 10, buyer.wallet.balance // 2)
                buyer._pay(silkroad.sale_address(amount), amount)

    economy.add_step_hook(buyers_step)

    dissolve_height = int(n_blocks * 0.7)
    hoard = SilkRoadHoard(
        "1DkyBEKt hoard",
        HoardConfig(
            accumulate_start=40,
            # Frequent aggregation keeps the marketplace's float small:
            # the war chest sits in the hoard (an unnamed cluster, like
            # the real 1DkyBEKt), not in the vendor category's balance.
            accumulate_interval=10,
            dissolve_height=dissolve_height,
            amount_scale=amount_scale,
            chain_hops=chain_hops,
        ),
        source_wallet_provider=lambda: silkroad.wallet,
    )
    economy.register(hoard)
    hoard.config.recipient_chooser = make_peel_recipient_chooser(economy)
    if run:
        economy.run()
    return finish(economy, roster=roster, hoard=hoard, attack=attack)


# Table 3, verbatim: (name, victim, BTC, movement, reaches exchanges).
# Heights place the thefts along a 6-hour-block timeline starting
# 2011-01-01 (so Jun 2011 ≈ block 600, Oct 2012 ≈ block 2640).
TABLE3_THEFTS: tuple[tuple[str, str, float, str, bool, int], ...] = (
    ("MyBitcoin", "MyBitcoin", 4_019, "A/P/S", True, 600),
    ("Linode", "Bitcoinica", 46_648, "A/P/F", True, 1_700),
    ("Betcoin", "Betcoin", 3_171, "F/A/P", True, 1_760),
    ("Bitcoinica (May)", "Bitcoinica", 18_547, "P/A", True, 2_000),
    ("Bitcoinica (Jul)", "Bitcoinica", 40_000, "P/A/S", True, 2_240),
    ("Bitfloor", "Bitfloor", 24_078, "P/A/P", True, 2_480),
    ("Trojan", "Trojan victims", 3_257, "F/A", False, 2_600),
)

BETCOIN_DORMANCY_BLOCKS = 1_400
"""Betcoin's loot sat from April 2012 to March 2013 (~350 days of
6-hour blocks) before it moved."""


def theft_world(
    seed: int = 2,
    *,
    n_blocks: int = 3_400,
    n_users: int = 50,
    amount_scale: float = 0.01,
    run: bool = True,
) -> World:
    """Default economy plus the seven Table 3 thefts."""
    params = EconomyParams(
        seed=seed,
        n_blocks=n_blocks,
        n_users=n_users,
        block_interval=21_600,
    )
    economy = Economy(params)
    roster = build_service_roster(economy)
    populate_users(economy, params.n_users)

    # Extra victims that are not part of the Table 1 roster.
    mybitcoin = WalletService("MyBitcoin")
    economy.register(mybitcoin)
    betcoin = CasinoSite("Betcoin")
    economy.register(betcoin)
    # Stand-in for the many individual wallets the trojan infected:
    # no consolidation, so the "service" is really a bag of scattered
    # per-victim coins.
    trojan_victims = WalletService("Trojan victims", consolidation_interval=10**9)
    economy.register(trojan_victims)
    wire_pool_members(economy)
    from ..tagging.attack import ReidentificationAttack

    attack = ReidentificationAttack.install(economy)

    # Pre-fund the victims through pool membership so there is something
    # to steal when each theft fires.
    pools = economy.actors_in_category("mining")
    rng = economy.child_rng("victims")
    victims = [mybitcoin, betcoin, trojan_victims,
               economy.actor("Bitcoinica"), economy.actor("Bitfloor")]
    for pool in pools:
        for victim in victims:
            pool.add_member(victim)

    chooser = make_peel_recipient_chooser(economy)
    thefts: list[TheftScript] = []
    for name, victim, paper_btc, movement, reaches, height in TABLE3_THEFTS:
        spec = TheftSpec(
            name=name,
            victim=victim,
            paper_btc=paper_btc,
            theft_height=height,
            movement=movement,
            reaches_exchanges=reaches,
            dormancy_blocks=BETCOIN_DORMANCY_BLOCKS if name == "Betcoin" else 2,
            leave_fraction_dormant=0.85 if name == "Trojan" else 0.0,
            loot_addresses=8 if name == "Trojan" else 3,
        )
        script = TheftScript(
            spec,
            amount_scale=amount_scale,
            recipient_chooser=chooser if reaches else _users_only_chooser(economy),
        )
        economy.register(script)
        thefts.append(script)
    # Thieves hold some clean coins (mining income, prior purchases)
    # that the 'F' folding moves blend with the loot.
    for pool in pools:
        for script in thefts:
            if "F" in script.spec.moves():
                pool.add_member(script)

    if run:
        economy.run()
    return finish(economy, roster=roster, thefts=thefts, attack=attack)


def _users_only_chooser(economy: Economy):
    """Peel recipients drawn only from unnamed users (no exchange reach)."""
    users = economy.actors_in_category("users")

    def choose(rng: random.Random, _value: int) -> tuple[str, str]:
        user = rng.choice(users)
        return user.payment_address(), user.name

    return choose

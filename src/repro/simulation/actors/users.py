"""Ordinary users: the organic traffic of the economy.

Users buy coins at exchanges, shop at vendors (sometimes through a
payment gateway), gamble at dice games and casinos, park funds with
wallet services, and occasionally use a mixer.  Two behaviours matter
for heuristic fidelity:

* the **change-policy mix** (fresh / self / reuse) drives how often
  Heuristic 2 can fire and how often it is genuinely wrong;
* with small probability a user *hands out an old change address* as a
  receiving address — the usage drift that produces true one-time-change
  false positives, which the §4.2 temporal estimator is built to catch.
"""

from __future__ import annotations

from ..builder import build_payment, choose_change_kind
from ..params import CATEGORY_USERS, UserParams
from ..wallet import InsufficientFundsError
from .base import Actor
from .exchange import Exchange, FixedRateExchange
from .gambling import CasinoSite, DiceGame
from .misc import InvestmentScheme
from .mixer import Mixer
from .vendor import Vendor
from .wallet_service import WalletService


class UserActor(Actor):
    """One individual with a client-side wallet."""

    def __init__(self, name: str, params: UserParams | None = None) -> None:
        super().__init__(name, CATEGORY_USERS)
        self.params = params or UserParams()
        self._service_accounts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # address hygiene (and the lack of it)
    # ------------------------------------------------------------------

    def payment_address(self) -> str:
        """Where others pay this user.

        Era-accurate mix: usually the wallet's standing receive address
        (clients of the day displayed one), sometimes a fresh one, and
        occasionally an *old change address* — the idiom drift behind
        genuine Heuristic 2 false positives.
        """
        change_addresses = self.wallet.change_addresses
        if (
            change_addresses
            and self.rng.random() < self.params.give_out_change_address_prob
        ):
            return self.rng.choice(change_addresses)
        if self.rng.random() < self.params.reuse_receive_prob:
            return self.wallet.reused_receive_address()
        return self.wallet.fresh_address()

    # ------------------------------------------------------------------
    # behaviour
    # ------------------------------------------------------------------

    def step(self, height: int) -> None:
        if self.rng.random() >= self.params.activity_rate:
            return
        if self.wallet.balance < self.params.min_payment * 4:
            self._buy_coins()
            return
        weights = [
            (self.params.gamble_weight, self._gamble),
            (self.params.shop_weight, self._shop),
            (self.params.deposit_weight, self._deposit),
            (self.params.withdraw_weight, self._withdraw),
            (self.params.mix_weight, self._mix),
        ]
        total = sum(w for w, _ in weights)
        roll = self.rng.random() * total
        acc = 0.0
        for weight, action in weights:
            acc += weight
            if roll <= acc:
                action()
                return

    def _random_amount(self) -> int:
        return self.rng.randint(self.params.min_payment, self.params.max_payment)

    def _pay(self, address: str, amount: int, *, pin_coin=None) -> bool:
        """Build+submit a payment; returns False when funds are short."""
        fee = self.economy.params.fee
        change_kind = choose_change_kind(self.params.change_policy, self.rng)
        coins = [pin_coin] if pin_coin is not None else None
        try:
            built = build_payment(
                self.wallet,
                [(address, amount)],
                fee=fee,
                change_kind=change_kind,
                rng=self.rng,
                coins=coins,
            )
        except (InsufficientFundsError, ValueError):
            return False
        self.economy.submit(built, self.wallet)
        return True

    def _buy_coins(self) -> None:
        exchanges = self.economy.actors_in_category("exchanges")
        fixed = self.economy.actors_in_category("fixed")
        sellers = exchanges + fixed
        if not sellers:
            return
        seller = self.rng.choice(sellers)
        amount = self._random_amount() * 4
        destination = self.payment_address()
        if isinstance(seller, Exchange):
            seller.sell_coins(destination, amount)
        elif isinstance(seller, FixedRateExchange):
            seller.convert(destination, amount)

    def _gamble(self) -> None:
        sites = self.economy.actors_in_category("gambling")
        if not sites:
            return
        site = self.rng.choice(sites)
        amount = max(
            self.params.min_payment, self._random_amount() // 4
        )
        if isinstance(site, DiceGame):
            # Bet from one specific coin so the game can pay back to the
            # spending address (the Satoshi Dice idiom).  Gamblers tend
            # to bet straight from change coins (and to re-bet payouts),
            # which is what gives freshly labeled change addresses later
            # dice-only inputs — the §4.2 false-positive story.
            fee = self.economy.params.fee
            candidates = [
                c for c in self.wallet.coins() if c.value >= amount + fee
            ]
            if not candidates:
                return
            change_set = set(self.wallet.change_addresses)
            n_bets = self.rng.randint(1, 3)
            for _ in range(n_bets):
                candidates = [
                    c for c in self.wallet.coins() if c.value >= amount + fee
                ]
                if not candidates:
                    return
                preferred = [c for c in candidates if c.address in change_set]
                coin = self.rng.choice(preferred or candidates)
                if self._pay(site.bet_address(), amount, pin_coin=coin):
                    site.place_bet(coin.address, amount)
        elif isinstance(site, CasinoSite):
            account = self._service_accounts.get(site.name, 0)
            if account and self.rng.random() < 0.5:
                cashout = self.rng.randint(1, account)
                site.request_withdrawal(self.payment_address(), cashout)
                self._service_accounts[site.name] = account - cashout
            elif self._pay(site.deposit_address(), amount):
                self._service_accounts[site.name] = account + amount

    def _shop(self) -> None:
        vendors = [
            v
            for v in self.economy.actors_in_category("vendors")
            if isinstance(v, Vendor)
        ]
        if not vendors:
            return
        vendor = self.rng.choice(vendors)
        amount = self._random_amount()
        self._pay(vendor.sale_address(amount), amount)

    def _deposit(self) -> None:
        services = [
            s
            for s in (
                self.economy.actors_in_category("wallets")
                + self.economy.actors_in_category("exchanges")
                + self.economy.actors_in_category("investment")
            )
            if isinstance(s, (WalletService, Exchange, InvestmentScheme))
        ]
        if not services:
            return
        service = self.rng.choice(services)
        amount = self._random_amount()
        if self._pay(service.deposit_address(), amount):
            self._service_accounts[service.name] = (
                self._service_accounts.get(service.name, 0) + amount
            )
            if isinstance(service, InvestmentScheme):
                service.record_investment(self.name, amount)

    def _withdraw(self) -> None:
        held = [
            (name, balance)
            for name, balance in self._service_accounts.items()
            if balance > 0
        ]
        if not held:
            return
        name, balance = self.rng.choice(held)
        service = self.economy.actor(name)
        if not isinstance(service, (WalletService, Exchange, InvestmentScheme)):
            return
        amount = self.rng.randint(1, balance)
        service.request_withdrawal(self.payment_address(), amount)
        self._service_accounts[name] = balance - amount

    def _mix(self) -> None:
        mixers = [
            m
            for m in self.economy.actors_in_category("miscellaneous")
            if isinstance(m, Mixer)
        ]
        if not mixers:
            return
        mixer = self.rng.choice(mixers)
        amount = self._random_amount()
        intake = mixer.intake_address()
        fee = self.economy.params.fee
        change_kind = choose_change_kind(self.params.change_policy, self.rng)
        try:
            built = build_payment(
                self.wallet,
                [(intake, amount)],
                fee=fee,
                change_kind=change_kind,
                rng=self.rng,
            )
        except InsufficientFundsError:
            return
        tx = self.economy.submit(built, self.wallet)
        paid_vout = next(
            vout
            for vout, out in enumerate(tx.outputs)
            if out.address == intake
        )
        mixer.request_mix(tx.outpoint(paid_vout), amount, self.payment_address())

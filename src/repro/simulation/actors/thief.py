"""Theft scripts: Table 3's seven thefts as replayable scenarios.

Each theft follows the paper's recorded movement grammar — A
(aggregation), P (peeling chain), S (split), F (folding) — executed in
order, with configurable dormancy between moves (Betcoin's loot famously
sat untouched for a year before moving when the exchange rate soared).
The analysis side must recover the grammar and the exchange arrivals
from the chain alone; this module records the ground truth to score it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ...chain.model import COIN
from ..builder import build_sweep
from ..params import CATEGORY_CRIME
from ..wallet import Coin
from .base import Actor
from .scripts import PeelChainRunner, RecipientChooser, aggregate, fold, split

MOVE_AGGREGATE = "A"
MOVE_PEEL = "P"
MOVE_SPLIT = "S"
MOVE_FOLD = "F"
VALID_MOVES = frozenset({MOVE_AGGREGATE, MOVE_PEEL, MOVE_SPLIT, MOVE_FOLD})


@dataclass(frozen=True)
class TheftSpec:
    """Static description of one theft (a Table 3 row)."""

    name: str
    victim: str
    paper_btc: float
    theft_height: int
    movement: str
    reaches_exchanges: bool
    dormancy_blocks: int = 0
    """Blocks the loot sits before the first move (Betcoin: ~1 year)."""

    op_interval: int = 5
    peel_hops: int = 25
    loot_addresses: int = 3
    """How many thief addresses the theft transactions pay into."""

    leave_fraction_dormant: float = 0.0
    """Fraction of loot that never moves (Trojan: 2857 of 3257 BTC)."""

    def moves(self) -> list[str]:
        parsed = self.movement.split("/")
        bad = set(parsed) - VALID_MOVES
        if bad:
            raise ValueError(f"unknown movement ops {bad} in {self.movement!r}")
        return parsed


@dataclass
class TheftRecord:
    """Ground-truth artifacts the scenario exposes for evaluation."""

    spec: TheftSpec
    theft_txids: list[bytes] = field(default_factory=list)
    loot_addresses: list[str] = field(default_factory=list)
    move_txids: dict[int, list[bytes]] = field(default_factory=dict)
    peel_runners: list[PeelChainRunner] = field(default_factory=list)
    dormant_addresses: list[str] = field(default_factory=list)

    @property
    def executed_moves(self) -> list[str]:
        return self.spec.moves()


class TheftScript(Actor):
    """Actor executing one scripted theft and laundering sequence."""

    def __init__(
        self,
        spec: TheftSpec,
        *,
        amount_scale: float = 0.01,
        recipient_chooser: RecipientChooser | None = None,
        clean_fund: int = 0,
    ) -> None:
        super().__init__(f"Thief:{spec.name}", CATEGORY_CRIME)
        self.spec = spec
        self.amount_scale = amount_scale
        self.recipient_chooser = recipient_chooser
        self.clean_fund = clean_fund
        self.record = TheftRecord(spec=spec)
        self._moves = spec.moves()
        self._move_index = 0
        self._stolen = False
        self._next_action_height: int | None = None
        self._current_coins: list[Coin] = []
        self._clean_coins: list[Coin] = []
        self._active_runner: PeelChainRunner | None = None

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def scaled_amount(self) -> int:
        return int(self.spec.paper_btc * self.amount_scale * COIN)

    def clean_address(self) -> str:
        """Address for pre-funding the thief with clean (non-loot) coins."""
        return self.wallet.fresh_address(kind="clean")

    def note_clean_coins(self) -> None:
        """Snapshot currently-held coins as the clean fund (call after
        pre-funding, before the theft)."""
        self._clean_coins = self.wallet.coins()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def step(self, height: int) -> None:
        if height < self.spec.theft_height:
            return
        if not self._stolen:
            self._steal()
            self._next_action_height = (
                height + max(1, self.spec.dormancy_blocks)
            )
            return
        if self._active_runner is not None:
            self._active_runner.step(self.economy)
            if self._active_runner.done:
                self._finish_peel()
            return
        if self._move_index >= len(self._moves):
            return
        if self._next_action_height is not None and height < self._next_action_height:
            return
        self._execute_move(self._moves[self._move_index], height)

    def _steal(self) -> None:
        """Sweep the victim's coins into thief-controlled addresses."""
        # Whatever the thief held before the theft is, by definition,
        # clean — the fold ('F') moves mix these in with the loot.
        self._clean_coins = self.wallet.coins()
        victim = self.economy.actor(self.spec.victim)
        fee = self.economy.params.fee
        target = self.scaled_amount()
        victim_wallet = victim.wallet
        coins = []
        total = 0
        for coin in victim_wallet.coins():
            coins.append(coin)
            total += coin.value
            if total >= target + fee:
                break
        if not coins:
            raise RuntimeError(
                f"victim {self.spec.victim!r} has no funds to steal at "
                f"height {self.economy.height}"
            )
        # Spread the loot over a few thief addresses, one sweep each.
        n_addresses = min(self.spec.loot_addresses, len(coins))
        chunks = [coins[i::n_addresses] for i in range(n_addresses)]
        loot_total = 0
        for chunk in chunks:
            if not chunk or sum(c.value for c in chunk) <= fee:
                continue
            address = self.wallet.fresh_address(kind="loot")
            built = build_sweep(victim_wallet, address, coins=chunk, fee=fee)
            tx = self.economy.submit(built, victim_wallet)
            self.record.theft_txids.append(tx.txid)
            self.record.loot_addresses.append(address)
            loot_total += sum(c.value for c in chunk) - fee
        self._current_coins = [
            c for c in self.wallet.coins() if c.address in self.record.loot_addresses
        ]
        if self.spec.leave_fraction_dormant > 0:
            # Move the largest coins until the moving share is met (at
            # least one coin always moves); the rest sits forever — the
            # Trojan's 2,857 of 3,257 BTC that never budged.
            move_target = int(loot_total * (1 - self.spec.leave_fraction_dormant))
            moving: list[Coin] = []
            moved_value = 0
            for coin in sorted(
                self._current_coins, key=lambda c: c.value, reverse=True
            ):
                if not moving or moved_value < move_target:
                    moving.append(coin)
                    moved_value += coin.value
                else:
                    self.record.dormant_addresses.append(coin.address)
            self._current_coins = moving
        self._stolen = True

    def _execute_move(self, move: str, height: int) -> None:
        txids: list[bytes] = []
        if not self._current_coins:
            self._move_index = len(self._moves)
            return
        if move == MOVE_AGGREGATE:
            coin = aggregate(self.economy, self.wallet, coins=self._current_coins)
            self._current_coins = [coin]
            txids.append(coin.outpoint.txid)
        elif move == MOVE_FOLD:
            clean = [c for c in self._clean_coins if c.outpoint not in
                     {x.outpoint for x in self._current_coins}]
            clean = [c for c in clean if self.wallet.coin_at(c.address) is not None]
            usable_clean = [c for c in self.wallet.coins() if c in clean]
            if not usable_clean:
                coin = aggregate(self.economy, self.wallet,
                                 coins=self._current_coins)
            else:
                coin = fold(
                    self.economy,
                    self.wallet,
                    tainted=self._current_coins,
                    clean=usable_clean[:3],
                )
            self._current_coins = [coin]
            txids.append(coin.outpoint.txid)
        elif move == MOVE_SPLIT:
            biggest = max(self._current_coins, key=lambda c: c.value)
            rest = [c for c in self._current_coins if c is not biggest]
            pieces = split(
                self.economy, self.wallet, biggest, n_ways=self.rng.randint(2, 3),
                rng=self.rng,
            )
            self._current_coins = rest + pieces
            txids.append(pieces[0].outpoint.txid)
        elif move == MOVE_PEEL:
            if self.recipient_chooser is None:
                raise RuntimeError(f"{self.name}: peel move needs a recipient chooser")
            biggest = max(self._current_coins, key=lambda c: c.value)
            self._current_coins = [c for c in self._current_coins if c is not biggest]
            self._active_runner = PeelChainRunner(
                wallet=self.wallet,
                coin=biggest,
                choose_recipient=self.recipient_chooser,
                n_hops=self.spec.peel_hops,
                rng=self.rng,
                hops_per_block=2,
                peel_fraction_min=0.02,
                peel_fraction_max=0.08,
            )
            self.record.peel_runners.append(self._active_runner)
            # move index advances when the runner finishes
            self.record.move_txids.setdefault(self._move_index, [])
            return
        self.record.move_txids[self._move_index] = txids
        self._move_index += 1
        self._next_action_height = height + self.spec.op_interval

    def _finish_peel(self) -> None:
        runner = self._active_runner
        self._active_runner = None
        self.record.move_txids[self._move_index] = [
            r.txid for r in runner.records
        ]
        # The final peel's change (if any) rejoins the working set.
        if runner.coin is not None:
            self._current_coins.append(runner.coin)
        self._move_index += 1
        self._next_action_height = (
            self.economy.height + self.spec.op_interval
        )

"""Mining pool actors.

Pools earn coinbases and periodically run payout rounds: one transaction
with many member outputs, drawn from several coinbase coins at once.
Those multi-input payouts are the Heuristic 1 signal that links pool
addresses, and the many-output shape is exactly the behaviour that broke
the Androulaki et al. "shadow address" assumption (§4.1: "users rarely
issue transactions to two different users ... no longer holds").
"""

from __future__ import annotations

from ..builder import CHANGE_FRESH, build_payment, build_sweep
from ..economy import MiningStats
from ..params import CATEGORY_MINING, PoolParams
from .base import Actor


class MiningPool(Actor):
    """A pool: mines blocks, pays members, occasionally consolidates."""

    def __init__(self, name: str, params: PoolParams | None = None) -> None:
        super().__init__(name, CATEGORY_MINING)
        self.params = params or PoolParams()
        self.stats = MiningStats()
        self.members: list = []
        self._payout_threshold = 0

    def add_member(self, actor) -> None:
        """Enroll another actor as a pool member (paid in payout rounds)."""
        self.members.append(actor)

    def coinbase_address(self) -> str:
        """Where block rewards land.  Pools reuse a small set of reward
        addresses, so coinbases are attributable."""
        if self.wallet.addresses and self.rng.random() < 0.7:
            return self.rng.choice(self.wallet.addresses[:4])
        return self.wallet.fresh_address(kind="coinbase")

    def step(self, height: int) -> None:
        if height == 0 or height % self.params.payout_interval != 0:
            return
        if not self.members or self.economy is None:
            return
        self._maybe_consolidate()
        self._pay_members()

    def _maybe_consolidate(self) -> None:
        """Sweep several coinbase coins into one pool address first."""
        coins = self.wallet.coins()
        if len(coins) < 4 or self.rng.random() >= self.params.consolidate_prob:
            return
        take = coins[: min(len(coins), 8)]
        destination = self.wallet.fresh_address(kind="hot")
        built = build_sweep(
            self.wallet, destination, coins=take, fee=self.economy.params.fee
        )
        self.economy.submit(built, self.wallet)

    def _pay_members(self) -> None:
        fee = self.economy.params.fee
        balance = self.wallet.balance
        if balance <= fee * 10:
            return
        n = self.rng.randint(
            self.params.min_members_paid,
            min(self.params.max_members_paid, max(self.params.min_members_paid,
                                                  len(self.members))),
        )
        recipients = self.rng.sample(self.members, min(n, len(self.members)))
        # Shares are uneven, like real pool payouts.
        weights = [self.rng.uniform(0.5, 2.0) for _ in recipients]
        budget = int(balance * self.rng.uniform(0.5, 0.9)) - fee
        total_weight = sum(weights)
        payments = []
        for recipient, weight in zip(recipients, weights):
            amount = int(budget * weight / total_weight)
            if amount > 0:
                payments.append((recipient.payment_address(), amount))
        if not payments:
            return
        built = build_payment(
            self.wallet,
            payments,
            fee=fee,
            change_kind=CHANGE_FRESH,
            rng=self.rng,
            prefer_largest=True,
        )
        self.economy.submit(built, self.wallet)

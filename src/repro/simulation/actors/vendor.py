"""Vendors and payment gateways.

Most vendors in the paper did not accept bitcoins themselves: they used
the BitPay gateway (one used WalletBit).  On-chain, a purchase from such
a vendor pays an address controlled by the *gateway*, which later settles
with the vendor — so clustering attributes the sale addresses to BitPay,
exactly what the authors found.  Direct vendors (notably Silk Road)
operate their own deposit addresses.
"""

from __future__ import annotations

from ..builder import CHANGE_FRESH, CHANGE_SELF, build_payment, build_sweep
from ..params import CATEGORY_VENDORS
from .base import Actor


class PaymentGateway(Actor):
    """BitPay-style processor: collects payments, settles to merchants."""

    def __init__(self, name: str, *, settle_interval: int = 40) -> None:
        super().__init__(name, CATEGORY_VENDORS)
        self.settle_interval = settle_interval
        self._owed: dict[str, int] = {}
        self._merchants: dict[str, Actor] = {}

    def invoice_address(self, merchant: "Vendor", amount: int) -> str:
        """Create a payment address for one sale on behalf of a merchant."""
        self._merchants[merchant.name] = merchant
        self._owed[merchant.name] = self._owed.get(merchant.name, 0) + amount
        return self.wallet.fresh_address()

    def step(self, height: int) -> None:
        if height == 0 or height % self.settle_interval != 0 or not self._owed:
            return
        fee = self.economy.params.fee
        payments = []
        for merchant_name, owed in sorted(self._owed.items()):
            settle = min(owed, self.wallet.balance // max(1, len(self._owed)))
            if settle > fee:
                merchant = self._merchants[merchant_name]
                payments.append((merchant.settlement_address(), settle - fee))
        if not payments:
            return
        total = sum(v for _, v in payments) + fee
        if self.wallet.balance < total:
            return
        built = build_payment(
            self.wallet, payments, fee=fee, change_kind=CHANGE_FRESH, rng=self.rng
        )
        self.economy.submit(built, self.wallet)
        self._owed.clear()


class Vendor(Actor):
    """An online merchant selling goods for bitcoin."""

    def __init__(self, name: str, *, gateway: PaymentGateway | None = None) -> None:
        super().__init__(name, CATEGORY_VENDORS)
        self.gateway = gateway
        self._hot_address: str | None = None

    def sale_address(self, amount: int) -> str:
        """Where a customer should send payment for a purchase.

        Routed through the gateway when one is configured (the address is
        then *owned by the gateway*, the detail §3.1 notes for BitPay
        merchants).
        """
        if self.gateway is not None:
            return self.gateway.invoice_address(self, amount)
        return self.wallet.fresh_address()

    def payment_address(self) -> str:
        return self.sale_address(0)

    def settlement_address(self) -> str:
        """Where gateway settlements land (vendor-owned)."""
        return self.wallet.fresh_address(kind="settlement")

    def step(self, height: int) -> None:
        # Vendors periodically sweep takings into one persistent hot
        # address, chaining sweeps into a single co-spend cluster.
        if height % 50 != 0 or self.wallet.coin_count < 5:
            return
        fee = self.economy.params.fee
        if self._hot_address is None:
            self._hot_address = self.wallet.fresh_address(kind="hot")
        all_coins = self.wallet.coins()
        hot_coins = [c for c in all_coins if c.address == self._hot_address]
        pending = [c for c in all_coins if c.address != self._hot_address]
        coins = pending[:64] + hot_coins
        if len(coins) < 2 or sum(c.value for c in coins) <= fee:
            return
        built = build_sweep(self.wallet, self._hot_address, coins=coins, fee=fee)
        self.economy.submit(built, self.wallet)
        self._cash_out()

    def _cash_out(self) -> None:
        """Sell most of the takings at an exchange (vendors run costs in
        fiat; their bitcoin balances do not grow without bound)."""
        fee = self.economy.params.fee
        hot_coin = self.wallet.coin_at(self._hot_address)
        if hot_coin is None:
            return
        amount = int(hot_coin.value * 0.6)
        if amount <= fee * 4:
            return
        exchanges = self.economy.actors_in_category("exchanges")
        if not exchanges:
            return
        exchange = self.rng.choice(exchanges)
        built = build_payment(
            self.wallet,
            [(exchange.deposit_address(), amount)],
            fee=fee,
            change_kind=CHANGE_SELF,
            rng=self.rng,
            coins=[hot_coin],
        )
        self.economy.submit(built, self.wallet)

"""Hosted wallet services (Instawallet, My Wallet, Coinbase, ...).

On-chain they look like small banks: fresh per-deposit addresses,
pooled storage, withdrawals paid out of the pool with fresh change.
The paper tagged them by depositing and withdrawing (§3.1).
"""

from __future__ import annotations

from ..builder import CHANGE_FRESH, build_payment, build_sweep
from ..params import CATEGORY_WALLETS
from ..wallet import InsufficientFundsError
from .base import Actor


class WalletService(Actor):
    """A hosted wallet: deposits pool together, withdrawals peel out."""

    def __init__(self, name: str, *, consolidation_interval: int = 30) -> None:
        super().__init__(name, CATEGORY_WALLETS)
        self.consolidation_interval = consolidation_interval
        self._pending_withdrawals: list[tuple[str, int]] = []
        self._hot_address: str | None = None

    def deposit_address(self) -> str:
        """Fresh address for a customer deposit."""
        return self.wallet.fresh_address()

    def request_withdrawal(self, destination: str, amount: int) -> None:
        """Queue a customer withdrawal."""
        if amount <= 0:
            raise ValueError("withdrawal amount must be positive")
        self._pending_withdrawals.append((destination, amount))

    def step(self, height: int) -> None:
        fee = self.economy.params.fee
        if self._hot_address is None:
            self._hot_address = self.wallet.fresh_address(kind="hot")
        remaining: list[tuple[str, int]] = []
        for destination, amount in self._pending_withdrawals:
            try:
                # Oldest-first selection co-mingles customer deposits,
                # which links the service's addresses; change is a fresh
                # one-time address (withdrawals look like peel hops).
                built = build_payment(
                    self.wallet,
                    [(destination, amount)],
                    fee=fee,
                    change_kind=CHANGE_FRESH,
                    rng=self.rng,
                )
            except InsufficientFundsError:
                remaining.append((destination, amount))
                continue
            self.economy.submit(built, self.wallet)
        self._pending_withdrawals = remaining
        if (
            height
            and height % self.consolidation_interval == 0
            and self.wallet.coin_count >= 6
        ):
            # Sweep into one persistent hot address, co-spending the hot
            # coins already there: successive sweeps chain into a single
            # co-spend cluster, as real hosted wallets' did.
            if self._hot_address is None:
                self._hot_address = self.wallet.fresh_address(kind="hot")
            all_coins = self.wallet.coins()
            hot_coins = [c for c in all_coins if c.address == self._hot_address]
            pending = [c for c in all_coins if c.address != self._hot_address]
            coins = pending[:96] + hot_coins
            if len(coins) >= 3 and sum(c.value for c in coins) > fee:
                built = build_sweep(
                    self.wallet, self._hot_address, coins=coins, fee=fee
                )
                self.economy.submit(built, self.wallet)

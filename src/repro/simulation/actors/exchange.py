"""Exchange and bank actors.

Exchanges are the chokepoints of the paper's §5 argument.  Their on-chain
behaviour, reproduced here:

* **per-customer deposit addresses** — every deposit gets a fresh
  address, which the re-identification attack observes and tags;
* **periodic consolidation** — deposit addresses are swept into a hot
  wallet with multi-input transactions (strong Heuristic 1 linkage);
* **segmented hot wallets** — big services "spread their funds across a
  number of distinct addresses" (§4.1), and segments that never co-spend
  stay as *separate clusters*, reproducing the paper's observation of 20
  distinct Mt. Gox clusters;
* **withdrawal peeling** — withdrawals spend a large hot coin, paying
  the customer and sending the remainder to a fresh change address; a
  run of withdrawals therefore forms a peeling chain (§5).
"""

from __future__ import annotations

from ..builder import CHANGE_FRESH, CHANGE_SELF, build_payment, build_sweep
from ..params import CATEGORY_EXCHANGES, CATEGORY_FIXED, ExchangeParams
from ..wallet import InsufficientFundsError, Wallet
from .base import Actor


class Exchange(Actor):
    """A real-time trading exchange that also functions as a bank."""

    def __init__(
        self,
        name: str,
        params: ExchangeParams | None = None,
        *,
        n_segments: int = 3,
        category: str = CATEGORY_EXCHANGES,
    ) -> None:
        super().__init__(name, category)
        self.params = params or ExchangeParams()
        self.n_segments = max(1, n_segments)
        self._segments: list[Wallet] = []
        self._deposit_wallet: Wallet | None = None
        self._pending_withdrawals: list[tuple[str, int]] = []
        self._hot_address: str | None = None

    def on_attached(self) -> None:
        # Primary wallet doubles as segment 0; extra segments are
        # independent wallets that never co-spend with each other.
        self._segments = [self.wallet]
        for _ in range(self.n_segments - 1):
            self._segments.append(self.economy.create_wallet(self.name, rng=self.rng))
        self._deposit_wallet = self.economy.create_wallet(self.name, rng=self.rng)
        for segment in self._segments:
            for _ in range(self.params.hot_wallet_addresses):
                segment.fresh_address(kind="hot")

    # ------------------------------------------------------------------
    # customer operations
    # ------------------------------------------------------------------

    def deposit_address(self) -> str:
        """A fresh per-deposit address (what the attack tags)."""
        return self._deposit_wallet.fresh_address()

    def payment_address(self) -> str:
        return self.deposit_address()

    def request_withdrawal(self, destination: str, amount: int) -> None:
        """Queue a customer withdrawal; processed on the next step."""
        if amount <= 0:
            raise ValueError("withdrawal amount must be positive")
        self._pending_withdrawals.append((destination, amount))

    def sell_coins(self, destination: str, amount: int) -> None:
        """A customer buys coins for fiat; on-chain it is a withdrawal."""
        self.request_withdrawal(destination, amount)

    @property
    def total_balance(self) -> int:
        """Funds across all segments and the deposit wallet."""
        return (
            sum(w.balance for w in self._segments) + self._deposit_wallet.balance
        )

    # ------------------------------------------------------------------
    # behaviour
    # ------------------------------------------------------------------

    def step(self, height: int) -> None:
        self._process_withdrawals()
        if height and height % self.params.consolidation_interval == 0:
            self._consolidate_deposits()

    def _segment_for_withdrawal(self) -> Wallet:
        return max(self._segments, key=lambda w: w.balance)

    def _process_withdrawals(self) -> None:
        fee = self.economy.params.fee
        batch_size = self.rng.randint(
            self.params.withdrawal_peel_min, self.params.withdrawal_peel_max
        )
        batch, self._pending_withdrawals = (
            self._pending_withdrawals[:batch_size],
            self._pending_withdrawals[batch_size:],
        )
        for destination, amount in batch:
            # Most withdrawals are paid straight out of the co-mingled
            # deposit pool, multi-input oldest-first — the behaviour that
            # welds an exchange's deposit addresses into one giant
            # cluster (what made Mt. Gox nameable at scale in §4.2).
            # The rest draw on a hot segment, peeling off a large coin.
            use_deposits = (
                self.rng.random() < 0.6
                and self._deposit_wallet.balance >= amount + fee
            )
            wallet = self._deposit_wallet if use_deposits else None
            if wallet is None:
                segment = self._segment_for_withdrawal()
                if segment.balance < amount + fee:
                    # Refuse quietly; the customer will retry or give up.
                    continue
                wallet = segment
            # Withdrawals use fresh one-time change (§5: exchange
            # withdrawals are peeling chains); the change coin stays in
            # the pool and is later co-spent, so the cluster still welds.
            built = build_payment(
                wallet,
                [(destination, amount)],
                fee=fee,
                change_kind=CHANGE_FRESH,
                rng=self.rng,
                prefer_largest=not use_deposits,
            )
            self.economy.submit(built, wallet)

    def _consolidate_deposits(self) -> None:
        """Sweep pending deposits into the pool's *persistent* hot
        address.

        Every sweep co-spends the pending deposit coins together with the
        coins already sitting at the hot address, so successive sweeps
        chain into one huge co-spend cluster — the behaviour that welded
        real exchanges' deposit addresses together and made one tag name
        hundreds of thousands of addresses (§4.2).
        """
        fee = self.economy.params.fee
        if self._hot_address is None:
            self._hot_address = self._deposit_wallet.fresh_address(kind="hot")
        coins = self._deposit_wallet.coins()
        hot_coins = [c for c in coins if c.address == self._hot_address]
        pending = [c for c in coins if c.address != self._hot_address]
        take = pending[: self.params.consolidation_batch] + hot_coins
        if len(take) < 3 or sum(c.value for c in take) <= fee:
            return
        built = build_sweep(
            self._deposit_wallet, self._hot_address, coins=take, fee=fee
        )
        self.economy.submit(built, self._deposit_wallet)
        self._fund_segment()

    def _fund_segment(self) -> None:
        """Move part of the pool into a hot segment for withdrawal float.

        The change goes back to the hot address (self-change), keeping
        the pool connected while the segment's holdings stay a *separate*
        cluster — reproducing the paper's observation of multiple
        distinct clusters per exchange (20 for Mt. Gox).
        """
        fee = self.economy.params.fee
        hot_coin = self._deposit_wallet.coin_at(self._hot_address)
        if hot_coin is None:
            return
        amount = hot_coin.value // 3
        if amount <= fee * 4:
            return
        segment = self.rng.choice(self._segments)
        built = build_payment(
            self._deposit_wallet,
            [(segment.fresh_address(kind="hot"), amount)],
            fee=fee,
            change_kind=CHANGE_SELF,
            rng=self.rng,
            coins=[hot_coin],
        )
        self.economy.submit(built, self._deposit_wallet)


class FixedRateExchange(Actor):
    """A non-bank, fixed-rate exchange for one-time conversions (§3.1).

    No customer accounts: it receives a payment and sends converted value
    onward (or, for coin purchases, just pays out once).
    """

    def __init__(self, name: str) -> None:
        super().__init__(name, CATEGORY_FIXED)
        self._pending_payouts: list[tuple[str, int]] = []

    def convert(self, destination: str, amount: int) -> None:
        """Queue a one-time conversion payout."""
        self._pending_payouts.append((destination, amount))

    def step(self, height: int) -> None:
        fee = self.economy.params.fee
        remaining: list[tuple[str, int]] = []
        for destination, amount in self._pending_payouts:
            try:
                built = build_payment(
                    self.wallet,
                    [(destination, amount)],
                    fee=fee,
                    change_kind=CHANGE_FRESH,
                    rng=self.rng,
                )
            except InsufficientFundsError:
                remaining.append((destination, amount))
                continue
            self.economy.submit(built, self.wallet)
        self._pending_payouts = remaining

"""The Silk Road hoard: the 1DkyBEKt lifecycle (§5, Table 2).

Reproduces the three phases the paper documents:

1. **Accumulation** (Jan–Aug 2012): repeated aggregate deposits — the
   funds of up to 128 marketplace addresses combined into the hoard
   address — until it holds a large share of all active coins.
2. **Dissolution** (from Aug 2012): large withdrawals (20k, 19k, 60k,
   100k, 100k, 150k BTC, paper scale) to separate addresses, and finally
   158,336 BTC into a single address.
3. **Peeling** : that final address peels 50,000 + 50,000 BTC to two
   addresses, leaving 58,336 for a third; each of the three starts a
   peeling chain whose peels reach real services (Table 2).

Amounts are multiplied by ``amount_scale`` because the simulated economy
mints far fewer coins than 2012 Bitcoin; the *structure* (aggregate
shapes, withdrawal sequence, three chains, service mix) is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...chain.model import COIN
from ..builder import CHANGE_FRESH, build_payment, build_sweep
from ..params import CATEGORY_CRIME
from ..wallet import Wallet
from .base import Actor
from .scripts import PeelChainRunner, RecipientChooser

PAPER_WITHDRAWALS_BTC = (20_000, 19_000, 60_000, 100_000, 100_000, 150_000)
PAPER_FINAL_BTC = 158_336
PAPER_FIRST_PEELS_BTC = (50_000, 50_000)  # remainder 58,336 goes to chain 3
PAPER_TOTAL_RECEIVED_BTC = 613_326


@dataclass
class HoardConfig:
    """Heights and scale for the hoard lifecycle."""

    accumulate_start: int
    accumulate_interval: int
    dissolve_height: int
    amount_scale: float = 0.01
    max_aggregate_inputs: int = 128
    chain_hops: int = 100
    hops_per_block: int = 4
    recipient_chooser: RecipientChooser | None = None


@dataclass
class HoardState:
    """Observable artifacts for the benches/tests."""

    hoard_address: str | None = None
    deposits: list[bytes] = field(default_factory=list)
    withdrawal_addresses: list[str] = field(default_factory=list)
    final_address: str | None = None
    chain_start_addresses: list[str] = field(default_factory=list)
    chains: list[PeelChainRunner] = field(default_factory=list)
    successor_address: str | None = None


class SilkRoadHoard(Actor):
    """Actor owning the 1DkyBEKt-style address and its dissolution.

    The hoard aggregates coins from a *source wallet* (the marketplace's
    sale income, supplied by the scenario) into one famous address, then
    dissolves it per the paper's timeline.
    """

    def __init__(
        self,
        name: str,
        config: HoardConfig,
        *,
        source_wallet_provider,
    ) -> None:
        super().__init__(name, CATEGORY_CRIME)
        self.config = config
        self.state = HoardState()
        self._source_wallet_provider = source_wallet_provider
        self._dissolving = False
        self._withdrawals_done = 0

    def on_attached(self) -> None:
        self.state.hoard_address = self.wallet.fresh_address(kind="hoard")

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------

    def step(self, height: int) -> None:
        cfg = self.config
        if height < cfg.dissolve_height:
            if (
                height >= cfg.accumulate_start
                and (height - cfg.accumulate_start) % cfg.accumulate_interval == 0
            ):
                self._aggregate_deposit()
            return
        if not self._dissolving:
            self._dissolving = True
            self._dissolve()
            # The marketplace keeps operating: later income aggregates
            # into a *successor* cold address — the "changing storage
            # structure" theory for the 1DkyBEKt dissipation (§5).
            self.state.successor_address = self.wallet.fresh_address(
                kind="successor"
            )
            return
        for chain in self.state.chains:
            chain.step(self.economy)
        if (height - cfg.accumulate_start) % cfg.accumulate_interval == 0:
            self._aggregate_into_successor()

    def _aggregate_deposit(self) -> None:
        """One 'funds of N addresses combined' deposit into the hoard."""
        source: Wallet = self._source_wallet_provider()
        coins = source.coins()[: self.config.max_aggregate_inputs]
        fee = self.economy.params.fee
        if len(coins) < 2 or sum(c.value for c in coins) <= fee:
            return
        built = build_sweep(source, self.state.hoard_address, coins=coins, fee=fee)
        tx = self.economy.submit(built, source)
        self.state.deposits.append(tx.txid)

    def _aggregate_into_successor(self) -> None:
        """Post-dissolution marketplace income flows to the successor."""
        source: Wallet = self._source_wallet_provider()
        coins = source.coins()[: self.config.max_aggregate_inputs]
        fee = self.economy.params.fee
        if len(coins) < 2 or sum(c.value for c in coins) <= fee:
            return
        built = build_sweep(
            source, self.state.successor_address, coins=coins, fee=fee
        )
        self.economy.submit(built, source)

    def _scaled(self, btc_amount: float) -> int:
        return int(btc_amount * self.config.amount_scale * COIN)

    def _dissolve(self) -> None:
        """Run the withdrawal sequence and seed the three peel chains."""
        fee = self.economy.params.fee
        hoard_coins = [
            c for c in self.wallet.coins() if c.address == self.state.hoard_address
        ]
        available = sum(c.value for c in hoard_coins)
        # The six large withdrawals, each to its own fresh address.
        for paper_btc in PAPER_WITHDRAWALS_BTC:
            amount = min(self._scaled(paper_btc), max(0, available - 8 * fee))
            if amount <= fee * 4:
                continue
            destination = self.wallet.fresh_address(kind="withdrawal")
            built = build_payment(
                self.wallet,
                [(destination, amount)],
                fee=fee,
                change_kind=CHANGE_FRESH,
                rng=self.rng,
                coins=self._coins_covering(amount + fee),
            )
            self.economy.submit(built, self.wallet)
            self.state.withdrawal_addresses.append(destination)
            available = self.wallet.balance
        # The final deposit: everything left into a single address.
        final_address = self.wallet.fresh_address(kind="final")
        built = build_sweep(self.wallet, final_address, fee=fee)
        self.economy.submit(built, self.wallet)
        self.state.final_address = final_address
        final_coin = self.wallet.coin_at(final_address)
        # Two 50k peels; the remainder is swept to the third chain head.
        chain_heads = []
        for paper_btc in PAPER_FIRST_PEELS_BTC:
            amount = min(self._scaled(paper_btc), final_coin.value - 4 * fee)
            head = self.wallet.fresh_address(kind="chain-head")
            built = build_payment(
                self.wallet,
                [(head, amount)],
                fee=fee,
                change_kind=CHANGE_FRESH,
                rng=self.rng,
                coins=[final_coin],
            )
            self.economy.submit(built, self.wallet)
            chain_heads.append(head)
            final_coin = self.wallet.coin_at(built.change_address)
        third_head = self.wallet.fresh_address(kind="chain-head")
        built = build_sweep(self.wallet, third_head, coins=[final_coin], fee=fee)
        self.economy.submit(built, self.wallet)
        chain_heads.append(third_head)
        self.state.chain_start_addresses = chain_heads
        chooser = self.config.recipient_chooser
        if chooser is None:
            raise RuntimeError("hoard needs a recipient_chooser to start chains")
        for head in chain_heads:
            coin = self.wallet.coin_at(head)
            self.state.chains.append(
                PeelChainRunner(
                    wallet=self.wallet,
                    coin=coin,
                    choose_recipient=chooser,
                    n_hops=self.config.chain_hops,
                    rng=self.rng,
                    hops_per_block=self.config.hops_per_block,
                )
            )

    def _coins_covering(self, amount: int) -> list:
        """Oldest-first coins covering ``amount`` from the hoard address."""
        selected, total = [], 0
        for coin in self.wallet.coins():
            if coin.address != self.state.hoard_address:
                continue
            selected.append(coin)
            total += coin.value
            if total >= amount:
                break
        if total < amount:
            # Fall back to any coins (the address may have been drained).
            for coin in self.wallet.coins():
                if coin in selected:
                    continue
                selected.append(coin)
                total += coin.value
                if total >= amount:
                    break
        return selected

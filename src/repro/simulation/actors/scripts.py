"""Scripted money-movement primitives: peels, aggregations, splits, folds.

These are the building blocks of §5's flow patterns.  The same grammar
the paper uses for theft movements (A = aggregation, P = peeling chain,
S = split, F = folding) is implemented here as composable operations on
a wallet, so the Silk Road hoard dissolution and every Table 3 theft are
scripted from one vocabulary — and the analysis side
(:mod:`repro.analysis.thefts`) must recover that grammar from the chain
alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..builder import CHANGE_FRESH, build_payment, build_sweep
from ..wallet import Coin, Wallet

RecipientChooser = Callable[[random.Random, int], tuple[str, str]]
"""``(rng, remaining_value) -> (address, entity_label)``: picks the next
peel recipient.  The label is only for scenario bookkeeping."""


@dataclass
class PeelRecord:
    """One hop of an executed peeling chain (simulation-side truth)."""

    hop: int
    txid: bytes
    peel_address: str
    peel_value: int
    recipient_label: str
    change_address: str | None


@dataclass
class PeelChainRunner:
    """Drives one peeling chain a few hops per block.

    Starts from ``coin`` (a large value), and each hop peels off a small
    fraction to a recipient chosen by ``choose_recipient``, sending the
    remainder to a fresh one-time change address — the §5 idiom.
    """

    wallet: Wallet
    coin: Coin
    choose_recipient: RecipientChooser
    n_hops: int
    rng: random.Random
    peel_fraction_min: float = 0.005
    peel_fraction_max: float = 0.03
    hops_per_block: int = 3
    records: list[PeelRecord] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return len(self.records) >= self.n_hops or self.coin is None

    def step(self, economy) -> None:
        """Run up to ``hops_per_block`` hops."""
        for _ in range(self.hops_per_block):
            if self.done:
                return
            self._hop(economy)

    def _hop(self, economy) -> None:
        fee = economy.params.fee
        remaining = self.coin.value
        fraction = self.rng.uniform(self.peel_fraction_min, self.peel_fraction_max)
        peel_value = max(int(remaining * fraction), fee * 4)
        if peel_value + fee * 2 >= remaining:
            # Chain exhausted: send what's left as the final peel.
            peel_value = remaining - fee
            address, label = self.choose_recipient(self.rng, peel_value)
            built = build_sweep(
                self.wallet, address, coins=[self.coin], fee=fee
            )
            tx = economy.submit(built, self.wallet)
            self.records.append(
                PeelRecord(
                    hop=len(self.records) + 1,
                    txid=tx.txid,
                    peel_address=address,
                    peel_value=peel_value,
                    recipient_label=label,
                    change_address=None,
                )
            )
            self.coin = None
            return
        address, label = self.choose_recipient(self.rng, peel_value)
        built = build_payment(
            self.wallet,
            [(address, peel_value)],
            fee=fee,
            change_kind=CHANGE_FRESH,
            rng=self.rng,
            coins=[self.coin],
        )
        tx = economy.submit(built, self.wallet)
        self.records.append(
            PeelRecord(
                hop=len(self.records) + 1,
                txid=tx.txid,
                peel_address=address,
                peel_value=peel_value,
                recipient_label=label,
                change_address=built.change_address,
            )
        )
        # The change output is the next link of the chain.
        change_coin = self.wallet.coin_at(built.change_address)
        if change_coin is None:  # pragma: no cover - defensive
            raise RuntimeError("peel change did not land in the wallet")
        self.coin = change_coin


def aggregate(economy, wallet: Wallet, coins: list[Coin] | None = None) -> Coin:
    """'A' move: sweep coins into one fresh address; returns the new coin."""
    fee = economy.params.fee
    coins = coins if coins is not None else wallet.coins()
    destination = wallet.fresh_address(kind="aggregate")
    built = build_sweep(wallet, destination, coins=coins, fee=fee)
    economy.submit(built, wallet)
    coin = wallet.coin_at(destination)
    if coin is None:  # pragma: no cover - defensive
        raise RuntimeError("aggregate output did not land in the wallet")
    return coin


def split(
    economy, wallet: Wallet, coin: Coin, n_ways: int, rng: random.Random
) -> list[Coin]:
    """'S' move: split one coin into ``n_ways`` fresh addresses."""
    if n_ways < 2:
        raise ValueError("a split needs at least two outputs")
    fee = economy.params.fee
    budget = coin.value - fee
    cuts = sorted(rng.uniform(0.2, 0.8) for _ in range(n_ways - 1))
    shares = []
    prev = 0.0
    for cut in cuts + [1.0]:
        shares.append(cut - prev)
        prev = cut
    addresses = [wallet.fresh_address(kind="split") for _ in range(n_ways)]
    payments = []
    assigned = 0
    for address, share in zip(addresses[:-1], shares[:-1]):
        value = max(1, int(budget * share))
        payments.append((address, value))
        assigned += value
    payments.append((addresses[-1], budget - assigned))
    built = build_payment(
        wallet, payments, fee=fee, change_kind="none", rng=rng, coins=[coin]
    )
    economy.submit(built, wallet)
    out = []
    for address in addresses:
        landed = wallet.coin_at(address)
        if landed is None:  # pragma: no cover - defensive
            raise RuntimeError("split output did not land in the wallet")
        out.append(landed)
    return out


def fold(
    economy,
    wallet: Wallet,
    tainted: list[Coin],
    clean: list[Coin],
) -> Coin:
    """'F' move: aggregate tainted coins together with unrelated clean
    coins, blurring the taint boundary (§5's 'folding')."""
    if not tainted or not clean:
        raise ValueError("folding needs both tainted and clean coins")
    return aggregate(economy, wallet, coins=[*tainted, *clean])

"""Gambling actors: dice games and account-based casinos.

The dice games reproduce the Satoshi Dice idiom central to §4.2: the
payout for a winning bet is sent *back to the address that placed the
bet*.  When a user bets from a one-time change address, the payout gives
that address a second incoming transaction — which is what made the
naive temporal false-positive estimate balloon to 13% before the paper
added the dice exception.

Casino sites (the five poker sites of §3.1) instead run customer
accounts: deposits to fresh addresses, withdrawals from pooled funds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..builder import CHANGE_FRESH, build_payment
from ..params import CATEGORY_GAMBLING, GamblingParams
from ..wallet import InsufficientFundsError
from .base import Actor


@dataclass(frozen=True, slots=True)
class PendingBet:
    """A bet awaiting resolution."""

    bettor_address: str
    amount: int


class DiceGame(Actor):
    """A Satoshi-Dice-style game with send-back-to-bettor payouts."""

    def __init__(self, name: str, params: GamblingParams | None = None) -> None:
        super().__init__(name, CATEGORY_GAMBLING)
        self.params = params or GamblingParams()
        self._pending: list[PendingBet] = []
        self._bet_address: str | None = None
        self.bets_taken = 0
        self.payouts_made = 0

    def on_attached(self) -> None:
        # Dice games famously reused one well-known address per game.
        self._bet_address = self.wallet.fresh_address()

    def bet_address(self) -> str:
        """The game's well-known (heavily reused) betting address."""
        return self._bet_address

    def payment_address(self) -> str:
        return self.bet_address()

    def place_bet(self, bettor_address: str, amount: int) -> None:
        """Register a bet paid to :meth:`bet_address`.

        ``bettor_address`` is the address the bet was sent *from*; a
        winning payout returns there (the send-back idiom).
        """
        if amount <= 0:
            raise ValueError("bet must be positive")
        self._pending.append(PendingBet(bettor_address, amount))
        self.bets_taken += 1

    def step(self, height: int) -> None:
        fee = self.economy.params.fee
        unresolved: list[PendingBet] = []
        for bet in self._pending:
            if self.rng.random() >= self.params.win_prob:
                continue  # house keeps a losing bet
            payout = int(bet.amount * self.params.payout_multiplier)
            destination = bet.bettor_address
            try:
                # Payout change returns to the famous betting address,
                # exactly as Satoshi Dice operated.
                built = build_payment(
                    self.wallet,
                    [(destination, payout)],
                    fee=fee,
                    change_kind=CHANGE_FRESH,
                    rng=self.rng,
                    change_address=self._bet_address,
                )
            except InsufficientFundsError:
                unresolved.append(bet)
                continue
            self.economy.submit(built, self.wallet)
            self.payouts_made += 1
        self._pending = unresolved


class CasinoSite(Actor):
    """An account-based gambling site (poker rooms, lotteries)."""

    def __init__(self, name: str) -> None:
        super().__init__(name, CATEGORY_GAMBLING)
        self._pending_withdrawals: list[tuple[str, int]] = []
        self._hot_address: str | None = None

    def deposit_address(self) -> str:
        """Fresh address for a customer deposit."""
        return self.wallet.fresh_address()

    def request_withdrawal(self, destination: str, amount: int) -> None:
        """Queue a cash-out to a customer address."""
        if amount <= 0:
            raise ValueError("withdrawal amount must be positive")
        self._pending_withdrawals.append((destination, amount))

    def step(self, height: int) -> None:
        fee = self.economy.params.fee
        if self._hot_address is None:
            self._hot_address = self.wallet.fresh_address(kind="hot")
        remaining: list[tuple[str, int]] = []
        for destination, amount in self._pending_withdrawals:
            try:
                built = build_payment(
                    self.wallet,
                    [(destination, amount)],
                    fee=fee,
                    change_kind=CHANGE_FRESH,
                    rng=self.rng,
                )
            except InsufficientFundsError:
                remaining.append((destination, amount))
                continue
            self.economy.submit(built, self.wallet)
        self._pending_withdrawals = remaining

"""Miscellaneous services and investment schemes.

Covers the rest of the Table 1 roster:

* :class:`MiscService` — Bit Visitor (pays users to visit sites), CoinAd
  (gives out free bitcoins), Coinapult, Bitcoin Advertisers;
* :class:`DonationService` — Wikileaks: a public, self-advertised
  donation address (a prime source of §3.2-style public tags) plus
  one-time addresses generated on request;
* :class:`InvestmentScheme` — Bitcoinica and Bitcoin Savings & Trust:
  deposits pool into the scheme, periodic "returns" are paid from the
  pot (BS&T being a Ponzi, the returns are just other investors' money).
"""

from __future__ import annotations

from ..builder import CHANGE_FRESH, build_payment
from ..params import CATEGORY_INVESTMENT, CATEGORY_MISC
from ..wallet import InsufficientFundsError
from .base import Actor


class MiscService(Actor):
    """A small service that occasionally pays users tiny amounts."""

    def __init__(
        self, name: str, *, payout_interval: int = 30, payout_value: int = 2_000_000
    ) -> None:
        super().__init__(name, CATEGORY_MISC)
        self.payout_interval = payout_interval
        self.payout_value = payout_value

    def step(self, height: int) -> None:
        if height == 0 or height % self.payout_interval != 0:
            return
        users = self.economy.actors_in_category("users")
        if not users:
            return
        fee = self.economy.params.fee
        recipient = self.rng.choice(users)
        try:
            built = build_payment(
                self.wallet,
                [(recipient.payment_address(), self.payout_value)],
                fee=fee,
                change_kind=CHANGE_FRESH,
                rng=self.rng,
            )
        except InsufficientFundsError:
            return
        self.economy.submit(built, self.wallet)


class DonationService(Actor):
    """Wikileaks-style charity with one well-known donation address."""

    def __init__(self, name: str) -> None:
        super().__init__(name, CATEGORY_MISC)
        self._public_address: str | None = None

    def on_attached(self) -> None:
        self._public_address = self.wallet.fresh_address()

    @property
    def public_donation_address(self) -> str:
        """The address advertised publicly (self-labeled, §3.2)."""
        return self._public_address

    def payment_address(self) -> str:
        # Donors usually use the public address; one-time addresses are
        # generated on request (the paper got two via IRC).
        if self.rng.random() < 0.7:
            return self._public_address
        return self.wallet.fresh_address()


class InvestmentScheme(Actor):
    """An 'investment firm' paying returns out of the deposit pot."""

    def __init__(
        self, name: str, *, return_rate: float = 0.07, payout_interval: int = 25
    ) -> None:
        super().__init__(name, CATEGORY_INVESTMENT)
        self.return_rate = return_rate
        self.payout_interval = payout_interval
        self._investors: dict[str, int] = {}
        self._pending_withdrawals: list[tuple[str, int]] = []

    def deposit_address(self) -> str:
        """Fresh address for an incoming investment."""
        return self.wallet.fresh_address()

    def record_investment(self, investor_name: str, amount: int) -> None:
        """Track an investor's stake (off-chain ledger)."""
        self._investors[investor_name] = self._investors.get(investor_name, 0) + amount

    def request_withdrawal(self, destination: str, amount: int) -> None:
        """Queue an investor cash-out."""
        if amount <= 0:
            raise ValueError("withdrawal amount must be positive")
        self._pending_withdrawals.append((destination, amount))

    def step(self, height: int) -> None:
        fee = self.economy.params.fee
        remaining: list[tuple[str, int]] = []
        for destination, amount in self._pending_withdrawals:
            try:
                built = build_payment(
                    self.wallet,
                    [(destination, amount)],
                    fee=fee,
                    change_kind=CHANGE_FRESH,
                    rng=self.rng,
                )
            except InsufficientFundsError:
                remaining.append((destination, amount))
                continue
            self.economy.submit(built, self.wallet)
        self._pending_withdrawals = remaining
        if height and height % self.payout_interval == 0 and self._investors:
            # Pay "returns" to a random investor from the pot.
            users = self.economy.actors_in_category("users")
            name = self.rng.choice(sorted(self._investors))
            stake = self._investors[name]
            returns = int(stake * self.return_rate)
            recipient = next((u for u in users if u.name == name), None)
            if recipient is None or returns <= fee:
                return
            try:
                built = build_payment(
                    self.wallet,
                    [(recipient.payment_address(), returns)],
                    fee=fee,
                    change_kind=CHANGE_FRESH,
                    rng=self.rng,
                )
            except InsufficientFundsError:
                return
            self.economy.submit(built, self.wallet)

"""Mix / laundry services (§3.1 "Miscellaneous").

Three observed behaviours, all reproduced:

* ``honest``      — after a delay, pays the customer from *unrelated*
  pooled coins (what a mix is supposed to do);
* ``return_same`` — pays the customer back with the very coins they sent
  (the paper caught Bitcoin Laundry doing this twice, suggesting the
  authors were its only customer);
* ``steal``       — never pays (BitMix "simply stole our money").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..builder import CHANGE_FRESH, build_payment
from ...chain.model import OutPoint
from ..params import CATEGORY_MISC
from ..wallet import InsufficientFundsError
from .base import Actor

BEHAVIOUR_HONEST = "honest"
BEHAVIOUR_RETURN_SAME = "return_same"
BEHAVIOUR_STEAL = "steal"


@dataclass(frozen=True, slots=True)
class MixRequest:
    """One customer mix: paid-in outpoint, payout target, readiness."""

    paid_outpoint: OutPoint
    amount: int
    return_address: str
    ready_at_height: int


class Mixer(Actor):
    """A mix service with configurable honesty."""

    def __init__(
        self,
        name: str,
        *,
        behaviour: str = BEHAVIOUR_HONEST,
        delay_blocks: int = 6,
        cut: float = 0.02,
    ) -> None:
        if behaviour not in (BEHAVIOUR_HONEST, BEHAVIOUR_RETURN_SAME, BEHAVIOUR_STEAL):
            raise ValueError(f"unknown mixer behaviour {behaviour!r}")
        super().__init__(name, CATEGORY_MISC)
        self.behaviour = behaviour
        self.delay_blocks = delay_blocks
        self.cut = cut
        self._requests: list[MixRequest] = []

    def intake_address(self) -> str:
        """Fresh address a customer should send coins to."""
        return self.wallet.fresh_address()

    def request_mix(
        self, paid_outpoint: OutPoint, amount: int, return_address: str
    ) -> None:
        """Register a mix after the customer's payment is submitted."""
        if self.economy is None:
            raise RuntimeError("mixer not attached")
        self._requests.append(
            MixRequest(
                paid_outpoint=paid_outpoint,
                amount=amount,
                return_address=return_address,
                ready_at_height=self.economy.height + self.delay_blocks,
            )
        )

    def step(self, height: int) -> None:
        if self.behaviour == BEHAVIOUR_STEAL:
            return  # keep everything, forever
        fee = self.economy.params.fee
        pending: list[MixRequest] = []
        for request in self._requests:
            if height < request.ready_at_height:
                pending.append(request)
                continue
            payout = int(request.amount * (1.0 - self.cut)) - fee
            if payout <= 0:
                continue
            coins = None
            if self.behaviour == BEHAVIOUR_RETURN_SAME:
                same = [
                    c
                    for c in self.wallet.coins()
                    if c.outpoint == request.paid_outpoint
                ]
                if same:
                    coins = same
            else:
                # Honest: prefer coins other than the one paid in.
                others = [
                    c
                    for c in self.wallet.coins()
                    if c.outpoint != request.paid_outpoint
                ]
                total_other = sum(c.value for c in others)
                if total_other >= payout + fee:
                    selected, acc = [], 0
                    for coin in others:
                        selected.append(coin)
                        acc += coin.value
                        if acc >= payout + fee:
                            break
                    coins = selected
            try:
                built = build_payment(
                    self.wallet,
                    [(request.return_address, payout)],
                    fee=fee,
                    change_kind=CHANGE_FRESH,
                    rng=self.rng,
                    coins=coins,
                )
            except (InsufficientFundsError, ValueError):
                pending.append(request)
                continue
            self.economy.submit(built, self.wallet)
        self._requests = pending

"""Actor framework for the synthetic economy.

An :class:`Actor` is one economic entity — a service, a user, a thief.
Actors own one or more :class:`~repro.simulation.wallet.Wallet` objects
(created through the economy so ownership registration is automatic) and
get a :meth:`step` callback once per block to act.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from ..wallet import Wallet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..economy import Economy


class Actor:
    """Base class for all economic entities."""

    def __init__(self, name: str, category: str) -> None:
        self.name = name
        self.category = category
        self.economy: "Economy | None" = None
        self._wallet: Wallet | None = None
        self.rng: random.Random = random.Random(0)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def attach(self, economy: "Economy") -> None:
        """Called by :meth:`Economy.register`; wires wallet and RNG."""
        self.economy = economy
        self.rng = economy.child_rng(self.name)
        self._wallet = economy.create_wallet(self.name, rng=self.rng)
        self.on_attached()

    def on_attached(self) -> None:
        """Hook for subclasses needing extra wallets or setup."""

    @property
    def wallet(self) -> Wallet:
        """The actor's primary wallet."""
        if self._wallet is None:
            raise RuntimeError(f"actor {self.name!r} is not attached to an economy")
        return self._wallet

    # ------------------------------------------------------------------
    # behaviour
    # ------------------------------------------------------------------

    def step(self, height: int) -> None:
        """Per-block behaviour; default is to do nothing."""

    def payment_address(self) -> str:
        """An address a counterparty should pay.  Fresh by default, as
        services of the era issued per-transaction deposit addresses."""
        return self.wallet.fresh_address()

    @property
    def balance(self) -> int:
        """Spendable satoshis in the primary wallet."""
        return self.wallet.balance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, {self.category!r})"

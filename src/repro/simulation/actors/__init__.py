"""Actor models for the synthetic Bitcoin economy."""

from .base import Actor
from .exchange import Exchange, FixedRateExchange
from .gambling import CasinoSite, DiceGame, PendingBet
from .hoard import HoardConfig, HoardState, SilkRoadHoard
from .mining import MiningPool
from .misc import DonationService, InvestmentScheme, MiscService
from .mixer import (
    BEHAVIOUR_HONEST,
    BEHAVIOUR_RETURN_SAME,
    BEHAVIOUR_STEAL,
    Mixer,
)
from .scripts import PeelChainRunner, PeelRecord, aggregate, fold, split
from .thief import TheftRecord, TheftScript, TheftSpec
from .users import UserActor
from .vendor import PaymentGateway, Vendor
from .wallet_service import WalletService

__all__ = [
    "Actor",
    "BEHAVIOUR_HONEST",
    "BEHAVIOUR_RETURN_SAME",
    "BEHAVIOUR_STEAL",
    "CasinoSite",
    "DiceGame",
    "DonationService",
    "Exchange",
    "FixedRateExchange",
    "HoardConfig",
    "HoardState",
    "InvestmentScheme",
    "MiningPool",
    "MiscService",
    "Mixer",
    "PaymentGateway",
    "PeelChainRunner",
    "PeelRecord",
    "PendingBet",
    "SilkRoadHoard",
    "TheftRecord",
    "TheftScript",
    "TheftSpec",
    "UserActor",
    "Vendor",
    "WalletService",
    "aggregate",
    "fold",
    "split",
]

"""Large-scale synthetic chains: millions of addresses, cheap to mint.

The actor-model :class:`~repro.simulation.economy.Economy` earns its
keep at seed scale (600 blocks / ~12k addresses): every address is
ground-truth registered, every payment runs through wallet policies.
That bookkeeping is exactly what makes it too slow to mint the chains
the paper actually analyzed — tens of thousands of blocks, >500k
addresses — which is what the scale benchmarks need to measure the
fold kernels' asymptotics rather than their constant.

:func:`large_scale_blocks` skips the actors entirely.  It emits raw
:class:`~repro.chain.model.Block` objects with synthetic pay-to-pubkey-
hash scripts built straight from a 20-byte counter — no key generation,
no base58 (``TxOut.address`` resolves lazily, and the index never asks
until a query does), no ground truth.  The shape still exercises every
fold the kernels cover:

* every transaction spends **two** previously unspent outputs drawn
  pseudo-randomly from earlier blocks, so H1 has a co-spend pair per tx
  and the cluster graph keeps merging across the whole run;
* most outputs pay **fresh** addresses (the paper's one-time change
  idiom), a fraction re-pays a recently seen address, so incidence and
  first/last-seen folds see both branches;
* timestamps advance one fixed interval per block, keeping the engine's
  §4.2 wait-rule path (non-decreasing time) valid.

Validation is the index's real validation — double-spend and
missing-input checks pass because the UTXO pool only hands out unspent
outputs from *earlier* blocks.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..chain.model import (
    Block,
    OutPoint,
    Transaction,
    TxIn,
    TxOut,
    COIN,
)

GENESIS_TIME = 1_293_840_000
"""2011-01-01, matching the test-suite convention."""

BLOCK_INTERVAL = 600

_COINBASE_VALUE = 50 * COIN
_DUMMY_SIG = b"\x01\xaa\x01\xbb"


def _script_for(counter: int) -> bytes:
    """A structurally valid P2PKH script for synthetic address ``counter``.

    The 20-byte hash is just the counter — unique, orderly, and free.
    ``extract_address`` base58-encodes it lazily if anything ever asks.
    """
    return b"\x76\xa9\x14" + counter.to_bytes(20, "big") + b"\x88\xac"


def large_scale_blocks(
    n_blocks: int,
    *,
    txs_per_block: int = 8,
    outputs_per_tx: int = 5,
    reuse_probability: float = 0.2,
    seed: int = 0,
) -> Iterator[Block]:
    """Yield ``n_blocks`` valid blocks of a synthetic high-volume chain.

    Each non-coinbase transaction spends two unspent outputs of earlier
    blocks and produces ``outputs_per_tx`` outputs, mostly to fresh
    addresses.  With the defaults a block mints ``2 + 8*4 = 34`` fresh
    addresses, so 20k blocks intern ~680k addresses and carry ~1.4M
    balance events — the scale band the paper's chain analysis ran at.

    Deterministic in ``seed``; streams (never holds more than the UTXO
    pool in memory).
    """
    rng = random.Random(seed)
    fresh_counter = 0
    # The spendable pool: (outpoint, value, script) of outputs minted in
    # *earlier* blocks only — spending within the minting block would
    # need in-block ordering care for no benefit to the fold shape.
    pool: list[tuple[OutPoint, int, bytes]] = []
    prev_hash = b"\x00" * 32
    for height in range(n_blocks):
        minted: list[tuple[OutPoint, int, bytes]] = []
        recent_scripts: list[bytes] = []
        txs: list[Transaction] = []

        coinbase_outs = []
        for _ in range(2):
            script = _script_for(fresh_counter)
            fresh_counter += 1
            coinbase_outs.append(
                TxOut(value=_COINBASE_VALUE // 2, script_pubkey=script)
            )
            recent_scripts.append(script)
        coinbase = Transaction(
            inputs=(
                TxIn(
                    prevout=OutPoint(b"\x00" * 32, 0xFFFFFFFF),
                    script_sig=height.to_bytes(4, "little"),
                ),
            ),
            outputs=tuple(coinbase_outs),
        )
        txs.append(coinbase)
        for vout, out in enumerate(coinbase.outputs):
            minted.append(
                (OutPoint(coinbase.txid, vout), out.value, out.script_pubkey)
            )

        n_txs = min(txs_per_block, len(pool) // 2)
        for _ in range(n_txs):
            sources = []
            for _ in range(2):
                # Swap-pop keeps the draw O(1) and the pool unordered.
                pick = rng.randrange(len(pool))
                pool[pick], pool[-1] = pool[-1], pool[pick]
                sources.append(pool.pop())
            total_in = sources[0][1] + sources[1][1]
            outs: list[TxOut] = []
            share = total_in // outputs_per_tx
            for slot in range(outputs_per_tx):
                if slot == 0 and rng.random() < reuse_probability and (
                    recent_scripts
                ):
                    script = recent_scripts[
                        rng.randrange(len(recent_scripts))
                    ]
                else:
                    script = _script_for(fresh_counter)
                    fresh_counter += 1
                    recent_scripts.append(script)
                value = (
                    share
                    if slot < outputs_per_tx - 1
                    else total_in - share * (outputs_per_tx - 1)
                )
                outs.append(TxOut(value=value, script_pubkey=script))
            tx = Transaction(
                inputs=tuple(
                    TxIn(prevout=point, script_sig=_DUMMY_SIG)
                    for point, _value, _script in sources
                ),
                outputs=tuple(outs),
            )
            txs.append(tx)
            for vout, out in enumerate(tx.outputs):
                minted.append(
                    (OutPoint(tx.txid, vout), out.value, out.script_pubkey)
                )

        block = Block.assemble(
            height=height,
            prev_hash=prev_hash,
            timestamp=GENESIS_TIME + height * BLOCK_INTERVAL,
            transactions=tuple(txs),
        )
        prev_hash = block.hash
        pool.extend(minted)
        yield block

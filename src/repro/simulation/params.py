"""Parameters and service rosters for the synthetic economy.

The rosters transcribe Table 1 of the paper verbatim: the 70-odd
services (mining pools, wallets, bank and non-bank exchanges, vendors,
gambling sites, and miscellaneous services) the authors transacted with
during the re-identification attack.  The default economy instantiates an
actor for each, so the Table 1 bench reports against the real roster.

All knobs that the heuristics are sensitive to — change-address policy
mix, gambling send-back behaviour, payout fan-out — are explicit here so
the ablation benches can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain.model import COIN

# ----------------------------------------------------------------------
# Table 1 service rosters (verbatim from the paper)
# ----------------------------------------------------------------------

MINING_POOLS = (
    "50 BTC",
    "ABC Pool",
    "Bitclockers",
    "Bitminter",
    "BTC Guild",
    "Deepbit",
    "EclipseMC",
    "Eligius",
    "Itzod",
    "Ozcoin",
    "Slush",
)

WALLET_SERVICES = (
    "Bitcoin Faucet",
    "My Wallet",
    "Coinbase",
    "Easycoin",
    "Easywallet",
    "Flexcoin",
    "Instawallet",
    "Paytunia",
    "Strongcoin",
    "WalletBit",
)

BANK_EXCHANGES = (
    "Bitcoin 24",
    "Bitcoin Central",
    "Bitcoin.de",
    "Bitcurex",
    "Bitfloor",
    "Bitmarket",
    "Bitme",
    "Bitstamp",
    "BTC China",
    "BTC-e",
    "CampBX",
    "CA VirtEx",
    "ICBit",
    "Mercado Bitcoin",
    "Mt Gox",
    "The Rock",
    "Vircurex",
    "Virwox",
)

FIXED_EXCHANGES = (
    "Aurum Xchange",
    "BitInstant",
    "Bitcoin Nordic",
    "BTC Quick",
    "FastCash4Bitcoins",
    "Lilion Transfer",
    "Nanaimo Gold",
    "OKPay",
)

VENDORS = (
    "ABU Games",
    "Bitbrew",
    "Bitdomain",
    "Bitmit",
    "Bitpay",
    "Bit Usenet",
    "BTC Buy",
    "BTC Gadgets",
    "Casascius",
    "Coinabul",
    "CoinDL",
    "Etsy",
    "HealthRX",
    "JJ Games",
    "Medsforbitcoin",
    "NZBs R Us",
    "Silk Road",
    "Yoku",
)

GAMBLING_SITES = (
    "Bit Elfin",
    "Bitcoin 24/7",
    "Bitcoin Darts",
    "Bitcoin Kamikaze",
    "Bitcoin Minefield",
    "BitZino",
    "BTC Griffin",
    "BTC Lucky",
    "BTC on Tilt",
    "Clone Dice",
    "Gold Game Land",
    "Satoshi Dice",
    "Seals with Clubs",
)

MISC_SERVICES = (
    "Bit Visitor",
    "Bitcoin Advertisers",
    "Bitcoin Laundry",
    "Bitfog",
    "Bitlaundry",
    "BitMix",
    "CoinAd",
    "Coinapult",
    "Wikileaks",
)

INVESTMENT_SCHEMES = (
    "Bitcoinica",
    "Bitcoin Savings & Trust",
)

MIX_SERVICES = ("Bitcoin Laundry", "Bitfog", "Bitlaundry", "BitMix")
"""The four mix/laundry services among the miscellaneous roster (§3.1)."""

# Dice-style games pay winnings straight back to the betting address —
# the idiom behind the §4.2 Satoshi Dice false-positive exception.
DICE_GAMES = (
    "Satoshi Dice",
    "Clone Dice",
    "Bitcoin Kamikaze",
    "Bitcoin Minefield",
)

# Categories as used by Figure 2 (investment appears there too).
CATEGORY_MINING = "mining"
CATEGORY_WALLETS = "wallets"
CATEGORY_EXCHANGES = "exchanges"
CATEGORY_FIXED = "fixed"
CATEGORY_VENDORS = "vendors"
CATEGORY_GAMBLING = "gambling"
CATEGORY_MISC = "miscellaneous"
CATEGORY_INVESTMENT = "investment"
CATEGORY_USERS = "users"
CATEGORY_CRIME = "crime"

FIGURE2_CATEGORIES = (
    CATEGORY_EXCHANGES,
    CATEGORY_MINING,
    CATEGORY_WALLETS,
    CATEGORY_GAMBLING,
    CATEGORY_VENDORS,
    CATEGORY_FIXED,
    CATEGORY_INVESTMENT,
)

GENESIS_TIMESTAMP = 1_293_840_000
"""2011-01-01 00:00 UTC — the start of the window Figure 2 plots."""

BLOCK_INTERVAL = 600
"""Seconds between blocks (Bitcoin's 10-minute target)."""

BLOCKS_PER_DAY = 144
BLOCKS_PER_WEEK = 7 * BLOCKS_PER_DAY


@dataclass(frozen=True)
class ChangePolicy:
    """How a wallet handles transaction change.

    Probabilities must sum to at most 1; the remainder is "exact spend"
    (no change output).  The defaults reflect the idioms the paper
    measures: ~23% of transactions use self-change (§4.1), most of the
    rest use a fresh one-time change address, and small minorities reuse
    an existing receive address (``reuse``) or send change to the same
    change address as the previous transaction (``recent`` — the "same
    change address used twice" pattern behind the §4.2 super-cluster).
    """

    fresh: float = 0.70
    self_change: float = 0.23
    reuse: float = 0.015
    recent: float = 0.025

    def __post_init__(self) -> None:
        total = self.fresh + self.self_change + self.reuse + self.recent
        if not 0.0 <= total <= 1.0 + 1e-9:
            raise ValueError(f"change policy probabilities sum to {total}")
        if min(self.fresh, self.self_change, self.reuse, self.recent) < 0:
            raise ValueError("change policy probabilities must be non-negative")


@dataclass(frozen=True)
class UserParams:
    """Behaviour of an ordinary user actor."""

    activity_rate: float = 0.08
    """Per-block probability of doing something."""

    gamble_weight: float = 0.25
    shop_weight: float = 0.25
    deposit_weight: float = 0.20
    withdraw_weight: float = 0.20
    mix_weight: float = 0.10

    min_payment: int = int(0.05 * COIN)
    max_payment: int = 5 * COIN
    change_policy: ChangePolicy = field(default_factory=ChangePolicy)
    give_out_change_address_prob: float = 0.008
    """How often a user hands a previous change address to a payer —
    the behaviour behind real Heuristic 2 false positives."""

    reuse_receive_prob: float = 0.55
    """How often a user hands out an *existing* receiving address
    instead of a fresh one.  Era-accurate: 2012 clients displayed one
    stable receiving address, and it is this reuse that makes H2's
    'all other outputs previously seen' condition bite."""


@dataclass(frozen=True)
class PoolParams:
    """Behaviour of a mining pool actor."""

    payout_interval: int = 12
    """Blocks between payout rounds."""

    min_members_paid: int = 4
    max_members_paid: int = 20
    consolidate_prob: float = 0.2
    """Probability a payout round first consolidates coinbases
    (multi-input transaction — Heuristic 1 signal)."""


@dataclass(frozen=True)
class ExchangeParams:
    """Behaviour of an exchange/bank actor."""

    hot_wallet_addresses: int = 8
    withdrawal_peel_min: int = 2
    withdrawal_peel_max: int = 6
    """Exchange withdrawals run short peeling chains (§5: 'seen in the
    withdrawals for many banks and exchanges')."""

    consolidation_interval: int = 25
    """Blocks between sweeping deposit addresses into the hot wallet."""

    consolidation_batch: int = 128
    """Maximum deposit outputs swept per consolidation."""


@dataclass(frozen=True)
class GamblingParams:
    """Behaviour of a gambling service actor."""

    win_prob: float = 0.47
    payout_multiplier: float = 2.0
    send_back_to_bettor: bool = True
    """Dice idiom: payout returns to the betting address itself."""


@dataclass(frozen=True)
class EconomyParams:
    """Top-level knobs for a simulated world."""

    seed: int = 0
    n_blocks: int = 600
    n_users: int = 60
    block_interval: int = BLOCK_INTERVAL
    genesis_timestamp: int = GENESIS_TIMESTAMP
    halving_interval: int = 210_000
    fee: int = 50_000
    """Flat fee per transaction in satoshis (0.0005 BTC, the 2012 default)."""

    user: UserParams = field(default_factory=UserParams)
    pool: PoolParams = field(default_factory=PoolParams)
    exchange: ExchangeParams = field(default_factory=ExchangeParams)
    gambling: GamblingParams = field(default_factory=GamblingParams)

    mining_pools: tuple[str, ...] = MINING_POOLS
    wallet_services: tuple[str, ...] = WALLET_SERVICES
    bank_exchanges: tuple[str, ...] = BANK_EXCHANGES
    fixed_exchanges: tuple[str, ...] = FIXED_EXCHANGES
    vendors: tuple[str, ...] = VENDORS
    gambling_sites: tuple[str, ...] = GAMBLING_SITES
    misc_services: tuple[str, ...] = MISC_SERVICES
    investment_schemes: tuple[str, ...] = INVESTMENT_SCHEMES

    def __post_init__(self) -> None:
        if self.n_blocks < 1:
            raise ValueError("n_blocks must be positive")
        if self.n_users < 0:
            raise ValueError("n_users must be non-negative")
        if self.fee < 0:
            raise ValueError("fee must be non-negative")

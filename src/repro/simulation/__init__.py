"""Synthetic Bitcoin economy: the ground-truth-bearing chain generator.

The simulation substitutes for the real 2009–2013 block chain (see
DESIGN.md §2): actor models reproduce the idioms of use the paper's
heuristics exploit, and every minted address is registered in a
:class:`~repro.simulation.ground_truth.GroundTruth` so clustering
accuracy is measurable, not just estimable.
"""

from . import scenarios
from .builder import (
    CHANGE_FRESH,
    CHANGE_NONE,
    CHANGE_REUSE,
    CHANGE_SELF,
    BuiltTransaction,
    build_payment,
    build_sweep,
    choose_change_kind,
)
from .economy import ChangeRecord, Economy, World, finish
from .ground_truth import EntityInfo, GroundTruth
from .largescale import large_scale_blocks
from .params import (
    BANK_EXCHANGES,
    DICE_GAMES,
    FIGURE2_CATEGORIES,
    FIXED_EXCHANGES,
    GAMBLING_SITES,
    MINING_POOLS,
    MISC_SERVICES,
    VENDORS,
    WALLET_SERVICES,
    ChangePolicy,
    EconomyParams,
    ExchangeParams,
    GamblingParams,
    PoolParams,
    UserParams,
)
from .wallet import Coin, InsufficientFundsError, Wallet

__all__ = [
    "BANK_EXCHANGES",
    "BuiltTransaction",
    "CHANGE_FRESH",
    "CHANGE_NONE",
    "CHANGE_REUSE",
    "CHANGE_SELF",
    "ChangePolicy",
    "ChangeRecord",
    "Coin",
    "DICE_GAMES",
    "Economy",
    "EconomyParams",
    "EntityInfo",
    "ExchangeParams",
    "FIGURE2_CATEGORIES",
    "FIXED_EXCHANGES",
    "GAMBLING_SITES",
    "GamblingParams",
    "GroundTruth",
    "InsufficientFundsError",
    "MINING_POOLS",
    "MISC_SERVICES",
    "PoolParams",
    "UserParams",
    "VENDORS",
    "WALLET_SERVICES",
    "Wallet",
    "World",
    "build_payment",
    "build_sweep",
    "large_scale_blocks",
    "choose_change_kind",
    "finish",
    "scenarios",
]

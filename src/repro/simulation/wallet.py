"""Simulated wallets: key management, coin tracking, coin selection.

A :class:`Wallet` is the client-side state of one economic entity.  It
mints deterministic keypairs, tracks the UTXOs it controls, and selects
coins for spending.  Change handling — the behaviour Heuristic 2 keys
on — is decided per-transaction by the :class:`~repro.simulation.params.
ChangePolicy` and implemented in :mod:`repro.simulation.builder`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..chain.crypto import KeyPair
from ..chain.model import OutPoint


class InsufficientFundsError(Exception):
    """Raised when a wallet cannot cover a requested amount."""

    def __init__(self, wanted: int, available: int) -> None:
        super().__init__(f"wanted {wanted} satoshis, have {available}")
        self.wanted = wanted
        self.available = available


@dataclass(frozen=True, slots=True)
class Coin:
    """One spendable output held by a wallet."""

    outpoint: OutPoint
    value: int
    address: str


class Wallet:
    """Keys and coins for one entity.

    Address creation is deterministic: the ``owner`` name and a counter
    seed each keypair, so re-running a scenario reproduces the same
    chain byte-for-byte.
    """

    def __init__(
        self,
        owner: str,
        *,
        rng: random.Random | None = None,
        on_new_address=None,
    ) -> None:
        self.owner = owner
        self._rng = rng or random.Random(0)
        self._on_new_address = on_new_address
        self._keys: dict[str, KeyPair] = {}
        self._coins: dict[OutPoint, Coin] = {}
        self._counter = 0
        self._receive_addresses: list[str] = []
        self._change_addresses: list[str] = []

    # ------------------------------------------------------------------
    # addresses
    # ------------------------------------------------------------------

    def fresh_address(self, *, kind: str = "receive") -> str:
        """Mint a brand-new address (and notify the ownership registry).

        ``kind`` is a label for debugging ("receive", "change", "hot",
        ...); it does not affect key derivation beyond uniqueness.
        """
        self._counter += 1
        keypair = KeyPair.from_seed(f"{self.owner}/{kind}/{self._counter}")
        address = keypair.address
        self._keys[address] = keypair
        if kind == "receive":
            self._receive_addresses.append(address)
        elif kind == "change":
            self._change_addresses.append(address)
        if self._on_new_address is not None:
            self._on_new_address(address, self.owner)
        return address

    @property
    def change_addresses(self) -> list[str]:
        """Addresses minted as change (clients normally hide these)."""
        return list(self._change_addresses)

    def last_change_address(self) -> str | None:
        """The most recently minted change address (sloppy clients send
        change there twice — the §4.2 'same change address used twice'
        pattern)."""
        if not self._change_addresses:
            return None
        return self._change_addresses[-1]

    def reused_receive_address(self) -> str:
        """An existing receive address (minting one if none exist yet)."""
        if not self._receive_addresses:
            return self.fresh_address()
        return self._rng.choice(self._receive_addresses)

    def key_for(self, address: str) -> KeyPair:
        """The keypair controlling ``address`` (KeyError if foreign)."""
        return self._keys[address]

    def owns(self, address: str) -> bool:
        """True when this wallet holds the key for ``address``."""
        return address in self._keys

    @property
    def addresses(self) -> list[str]:
        """Every address this wallet ever minted."""
        return list(self._keys)

    # ------------------------------------------------------------------
    # coins
    # ------------------------------------------------------------------

    def credit(self, outpoint: OutPoint, value: int, address: str) -> None:
        """Record receipt of an output paying one of our addresses."""
        if address not in self._keys:
            raise KeyError(f"{self.owner} does not control {address}")
        if outpoint in self._coins:
            raise ValueError(f"coin {outpoint} credited twice")
        self._coins[outpoint] = Coin(outpoint, value, address)

    def debit(self, outpoint: OutPoint) -> Coin:
        """Remove (spend) a coin."""
        try:
            return self._coins.pop(outpoint)
        except KeyError:
            raise KeyError(f"{self.owner} holds no coin {outpoint}") from None

    @property
    def balance(self) -> int:
        """Spendable satoshis."""
        return sum(coin.value for coin in self._coins.values())

    @property
    def coin_count(self) -> int:
        return len(self._coins)

    def coins(self) -> list[Coin]:
        """All coins, oldest-credited first (dict preserves order)."""
        return list(self._coins.values())

    def coin_at(self, address: str) -> Coin | None:
        """Any one coin currently sitting at ``address``."""
        for coin in self._coins.values():
            if coin.address == address:
                return coin
        return None

    def select_coins(self, amount: int, *, prefer_largest: bool = False) -> list[Coin]:
        """Pick coins covering ``amount`` satoshis.

        Default selection is oldest-first (greedy FIFO), the behaviour of
        the era's Satoshi client; ``prefer_largest`` picks big coins
        first, which services used for large withdrawals.  Raises
        :class:`InsufficientFundsError` when the wallet cannot cover the
        amount.
        """
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        pool = self.coins()
        if prefer_largest:
            pool.sort(key=lambda c: c.value, reverse=True)
        selected: list[Coin] = []
        total = 0
        for coin in pool:
            selected.append(coin)
            total += coin.value
            if total >= amount:
                return selected
        raise InsufficientFundsError(amount, total)

"""The economy coordinator: actors, mempool, mining, ground truth.

:class:`Economy` drives the simulation block by block.  Each block, every
actor gets a :meth:`~repro.simulation.actors.base.Actor.step` callback
and may submit transactions; a mining pool then assembles the mempool
into a block (coinbase = subsidy + fees) and the chain grows.  All
address ownership is registered in a :class:`~repro.simulation.
ground_truth.GroundTruth` as addresses are minted, and the true change
output of every built transaction is recorded in ``change_truth`` so the
false-positive analysis can be scored against reality.

Determinism: one master ``random.Random(seed)`` plus per-actor child RNGs
derived from actor names, so scenario output is byte-for-byte stable
across runs and across actor-registration refactorings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from ..chain import script as script_mod
from ..chain.index import ChainIndex
from ..chain.model import (
    Block,
    COINBASE_TXID,
    COINBASE_VOUT,
    GENESIS_PREV_HASH,
    OutPoint,
    Transaction,
    TxIn,
    TxOut,
    block_subsidy,
)
from .builder import BuiltTransaction
from .ground_truth import GroundTruth
from .params import EconomyParams
from .wallet import Wallet

MAX_BLOCK_TXS = 4_000
"""Cap on transactions per block (well above normal simulation load)."""


@dataclass(frozen=True, slots=True)
class ChangeRecord:
    """Ground truth about one transaction's change output."""

    change_address: str | None
    change_kind: str
    change_vout: int | None


@dataclass
class MiningStats:
    """Per-pool mining counters."""

    blocks_mined: int = 0
    subsidy_earned: int = 0


class Economy:
    """Simulation coordinator.  See module docstring."""

    def __init__(self, params: EconomyParams | None = None) -> None:
        self.params = params or EconomyParams()
        self.master_rng = random.Random(self.params.seed)
        self.ground_truth = GroundTruth()
        self.blocks: list[Block] = []
        self.mempool: list[Transaction] = []
        self.change_truth: dict[bytes, ChangeRecord] = {}
        self._actors: dict[str, object] = {}
        self._miners: list[tuple[object, float]] = []  # (actor, hashrate weight)
        self._wallet_of_address: dict[str, Wallet] = {}
        self._pending_fees: dict[bytes, int] = {}
        self._tip_hash: bytes = GENESIS_PREV_HASH
        self._step_hooks: list = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def child_rng(self, label: str) -> random.Random:
        """A deterministic child RNG keyed by ``label`` and the seed."""
        return random.Random(f"{self.params.seed}/{label}")

    def create_wallet(self, owner: str, *, rng: random.Random | None = None) -> Wallet:
        """Create a wallet whose addresses auto-register to ``owner``."""
        if self.ground_truth.category_of(owner) is None:
            raise KeyError(f"unknown entity {owner!r}; register the actor first")
        wallet = Wallet(owner, rng=rng or self.child_rng(f"wallet/{owner}"))

        def on_new_address(address: str, owner_name: str) -> None:
            self.ground_truth.register_address(address, owner_name)
            self._wallet_of_address[address] = wallet

        wallet._on_new_address = on_new_address
        return wallet

    def register(self, actor, *, hashrate: float = 0.0) -> None:
        """Add an actor to the economy; ``hashrate > 0`` makes it a miner."""
        if actor.name in self._actors:
            raise ValueError(f"duplicate actor name {actor.name!r}")
        self.ground_truth.register_entity(actor.name, actor.category)
        self._actors[actor.name] = actor
        actor.attach(self)
        if hashrate > 0:
            self._miners.append((actor, hashrate))

    def add_step_hook(self, hook) -> None:
        """Register ``hook(economy, height)`` to run before actors step.

        Used by scripted drivers (the re-identification attack, theft
        scripts) that are not actors themselves.
        """
        self._step_hooks.append(hook)

    # ------------------------------------------------------------------
    # actor lookup
    # ------------------------------------------------------------------

    def actor(self, name: str):
        """Look up an actor by entity name."""
        return self._actors[name]

    def actors(self) -> list:
        """All actors in registration order."""
        return list(self._actors.values())

    def actors_in_category(self, category: str) -> list:
        """Actors in a category, in registration order."""
        return [a for a in self._actors.values() if a.category == category]

    def wallet_of_address(self, address: str) -> Wallet | None:
        """The wallet controlling ``address`` (None for unregistered)."""
        return self._wallet_of_address.get(address)

    # ------------------------------------------------------------------
    # chain state
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        """Height the *next* block will have."""
        return len(self.blocks)

    @property
    def current_time(self) -> int:
        """Timestamp the next block will carry."""
        return self.params.genesis_timestamp + self.height * self.params.block_interval

    # ------------------------------------------------------------------
    # transaction submission
    # ------------------------------------------------------------------

    def submit(self, built: BuiltTransaction, wallet: Wallet) -> Transaction:
        """Accept a built transaction into the mempool.

        Debits the spent coins from the sender's wallet, credits each
        output to the wallet controlling its address (if any — payments
        to unregistered addresses simply burn visibility, not value),
        and records the change ground truth.
        """
        tx = built.tx
        if len(self.mempool) >= MAX_BLOCK_TXS:
            raise RuntimeError("mempool full; mine a block first")
        for coin in built.spent_coins:
            wallet.debit(coin.outpoint)
        self._credit_outputs(tx)
        self.mempool.append(tx)
        self._pending_fees[tx.txid] = built.fee
        self.change_truth[tx.txid] = ChangeRecord(
            change_address=built.change_address,
            change_kind=built.change_kind,
            change_vout=built.change_vout,
        )
        return tx

    def _credit_outputs(self, tx: Transaction) -> None:
        for vout, out in enumerate(tx.outputs):
            address = out.address
            if address is None:
                continue
            target = self._wallet_of_address.get(address)
            if target is not None:
                target.credit(OutPoint(tx.txid, vout), out.value, address)

    # ------------------------------------------------------------------
    # mining
    # ------------------------------------------------------------------

    def _choose_miner(self):
        if not self._miners:
            raise RuntimeError("no miners registered; add a mining pool")
        total = sum(weight for _, weight in self._miners)
        roll = self.master_rng.random() * total
        acc = 0.0
        for actor, weight in self._miners:
            acc += weight
            if roll <= acc:
                return actor
        return self._miners[-1][0]

    def mine_block(self, miner=None) -> Block:
        """Assemble the mempool into the next block."""
        miner = miner or self._choose_miner()
        included = self.mempool[:MAX_BLOCK_TXS]
        self.mempool = self.mempool[MAX_BLOCK_TXS:]
        height = self.height
        fees = sum(self._pending_fees.pop(tx.txid, 0) for tx in included)
        subsidy = block_subsidy(height, halving_interval=self.params.halving_interval)
        reward_address = miner.coinbase_address()
        coinbase = Transaction(
            inputs=(
                TxIn(
                    prevout=OutPoint(COINBASE_TXID, COINBASE_VOUT),
                    script_sig=script_mod.coinbase_script(
                        height, extra=miner.name.encode("utf-8")[:16]
                    ),
                ),
            ),
            outputs=(
                TxOut(
                    value=subsidy + fees,
                    script_pubkey=script_mod.p2pkh_script_for_address(reward_address),
                ),
            ),
        )
        self._credit_outputs(coinbase)
        block = Block.assemble(
            height=height,
            prev_hash=self._tip_hash,
            timestamp=self.current_time,
            transactions=[coinbase, *included],
        )
        self.blocks.append(block)
        self._tip_hash = block.hash
        if hasattr(miner, "stats"):
            miner.stats.blocks_mined += 1
            miner.stats.subsidy_earned += subsidy + fees
        return block

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, n_blocks: int | None = None) -> None:
        """Run the simulation for ``n_blocks`` (default: params.n_blocks)."""
        target = n_blocks if n_blocks is not None else self.params.n_blocks
        for _ in range(target):
            height = self.height
            for hook in self._step_hooks:
                hook(self, height)
            for actor in self._actors.values():
                actor.step(height)
            self.mine_block()

    def build_index(self) -> ChainIndex:
        """Index the chain produced so far."""
        index = ChainIndex()
        index.add_chain(self.blocks)
        return index


@dataclass
class World:
    """A finished scenario: the economy plus its indexed chain."""

    economy: Economy
    index: ChainIndex
    extras: dict = field(default_factory=dict)
    """Scenario-specific artifacts (theft scripts, hoard addresses...)."""

    @property
    def ground_truth(self) -> GroundTruth:
        return self.economy.ground_truth

    @property
    def params(self) -> EconomyParams:
        return self.economy.params

    @property
    def blocks(self) -> list[Block]:
        return self.economy.blocks


def finish(economy: Economy, **extras) -> World:
    """Wrap a run economy into a :class:`World`."""
    return World(economy=economy, index=economy.build_index(), extras=dict(extras))
